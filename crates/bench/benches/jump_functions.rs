//! Table 2's cost axis (§3.1.5): construction + propagation time for each
//! of the four forward jump-function implementations, over the full
//! benchmark suite and per selected programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp::{Analysis, Config, JumpFnKind};
use ipcp_suite::{paper_programs, program};

fn bench_suite_by_kind(c: &mut Criterion) {
    let modules: Vec<_> = paper_programs().map(|p| (p.name, p.module_cfg())).collect();
    let mut group = c.benchmark_group("table2/whole-suite");
    group.sample_size(20);
    for kind in JumpFnKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let config = Config::default().with_jump_fn(kind);
            b.iter(|| {
                let mut total = 0usize;
                for (_, mcfg) in &modules {
                    let analysis = Analysis::run(mcfg, &config);
                    total += analysis.substitute(mcfg).total;
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_return_jfs(c: &mut Criterion) {
    let mcfg = program("ocean").unwrap().module_cfg();
    let mut group = c.benchmark_group("table2/ocean-return-jfs");
    group.sample_size(30);
    group.bench_function("with", |b| {
        b.iter(|| Analysis::run(&mcfg, &Config::default()).substitute(&mcfg).total)
    });
    group.bench_function("without", |b| {
        let config = Config::default().with_return_jfs(false);
        b.iter(|| Analysis::run(&mcfg, &config).substitute(&mcfg).total)
    });
    group.finish();
}

criterion_group!(benches, bench_suite_by_kind, bench_return_jfs);
criterion_main!(benches);
