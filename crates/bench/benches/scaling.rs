//! Scaling: full-pipeline time as generated programs grow, per jump
//! function kind. Backs the §3.1.5 claim that the pass-through solution
//! time approaches the simpler kinds in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp::{Analysis, Config, JumpFnKind};
use ipcp_ir::{lower_module, parse_and_resolve};
use ipcp_suite::{generate, GenConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/pipeline");
    group.sample_size(12);
    for n_procs in [8usize, 16, 32, 64] {
        let config = GenConfig {
            n_procs,
            n_globals: 4,
            stmts_per_proc: 10,
            max_depth: 2,
        };
        let src = generate(&config, 12345);
        let mcfg = lower_module(&parse_and_resolve(&src).unwrap());
        for kind in [JumpFnKind::Literal, JumpFnKind::PassThrough, JumpFnKind::Polynomial] {
            group.bench_function(
                BenchmarkId::new(kind.label(), n_procs),
                |b| {
                    let cfg = Config::default().with_jump_fn(kind);
                    b.iter(|| Analysis::run(&mcfg, &cfg).vals.n_constants())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
