//! Substrate costs: SSA construction, SCCP, the polynomial symbolic
//! evaluator, dominators, and MOD/REF on a mid-sized generated program —
//! the intraprocedural work that §4.1 reports dominating the total.

use criterion::{criterion_group, criterion_main, Criterion};
use ipcp_analysis::{build_call_graph, compute_modref};
use ipcp_ir::program::SlotLayout;
use ipcp_ir::{lower_module, parse_and_resolve};
use ipcp_ssa::dominators::{dominance_frontiers, DomTree};
use ipcp_ssa::sccp::{self, OpaqueCallsLattice, Seeds};
use ipcp_ssa::ssa::{build_ssa, ModKills};
use ipcp_ssa::symbolic::{evaluate, OpaqueCalls};
use ipcp_suite::{generate, GenConfig};

fn bench_substrate(c: &mut Criterion) {
    let src = generate(
        &GenConfig {
            n_procs: 24,
            n_globals: 4,
            stmts_per_proc: 14,
            max_depth: 3,
        },
        777,
    );
    let mcfg = lower_module(&parse_and_resolve(&src).unwrap());
    let cg = build_call_graph(&mcfg);
    let mr = compute_modref(&mcfg, &cg);
    let layout = SlotLayout::new(&mcfg.module);
    let entry = mcfg.module.entry;
    let ssa = build_ssa(&mcfg, entry, &ModKills(&mr));
    let n_vars = mcfg.module.proc(entry).vars.len();

    let mut group = c.benchmark_group("substrate");
    group.sample_size(40);
    group.bench_function("call-graph", |b| b.iter(|| build_call_graph(&mcfg).n_edges()));
    group.bench_function("mod-ref", |b| {
        b.iter(|| compute_modref(&mcfg, &cg).mod_of(entry).len())
    });
    group.bench_function("dominators", |b| {
        b.iter(|| DomTree::build(mcfg.cfg(entry)).rpo().len())
    });
    group.bench_function("dominance-frontiers", |b| {
        let dom = DomTree::build(mcfg.cfg(entry));
        b.iter(|| dominance_frontiers(mcfg.cfg(entry), &dom).len())
    });
    group.bench_function("ssa-build", |b| {
        b.iter(|| build_ssa(&mcfg, entry, &ModKills(&mr)).len())
    });
    group.bench_function("gvn", |b| b.iter(|| ipcp_ssa::gvn::number(&ssa).n_classes()));
    group.bench_function("symbolic-eval", |b| {
        b.iter(|| evaluate(&mcfg, &ssa, &layout, &OpaqueCalls).values.len())
    });
    group.bench_function("sccp", |b| {
        b.iter(|| {
            sccp::run(&mcfg, &ssa, &Seeds::none(n_vars), &OpaqueCallsLattice)
                .values
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
