//! Solver comparison: the procedure-level worklist of §4.1 vs the
//! binding-multigraph formulation §2 mentions (and §3.1.5 bounds). Both
//! compute the same fixpoint; the binding graph touches only the slots
//! whose jump functions could actually change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp::{solve_binding_graph, Analysis, Config, Governor};
use ipcp_ir::{lower_module, parse_and_resolve};
use ipcp_ssa::Lattice;
use ipcp_suite::{generate, GenConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(20);
    for n_procs in [16usize, 48] {
        let src = generate(
            &GenConfig {
                n_procs,
                n_globals: 4,
                stmts_per_proc: 10,
                max_depth: 2,
            },
            2024,
        );
        let mcfg = lower_module(&parse_and_resolve(&src).unwrap());
        // Jump functions are built once; only the propagation differs.
        let analysis = Analysis::run(&mcfg, &Config::default());
        group.bench_function(BenchmarkId::new("wavefront", n_procs), |b| {
            b.iter(|| {
                let mut quarantined = vec![false; mcfg.module.procs.len()];
                ipcp::solve(
                    &mcfg,
                    &analysis.cg,
                    &analysis.layout,
                    &analysis.jump_fns,
                    Lattice::Bottom,
                    &Config::default(),
                    &mut Governor::unlimited(),
                    &mut quarantined,
                    1,
                )
                .0
                .n_constants()
            })
        });
        group.bench_function(BenchmarkId::new("binding-graph", n_procs), |b| {
            b.iter(|| {
                solve_binding_graph(
                    &mcfg,
                    &analysis.cg,
                    &analysis.layout,
                    &analysis.jump_fns,
                    Lattice::Bottom,
                    &mut Governor::unlimited(),
                )
                .n_constants()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
