//! Ablation costs for the extensions beyond the paper: return-jump-
//! function composition (§3.2 limitation lifted), gated generation
//! (§4.2), procedure cloning (§5), and procedure integration (§5,
//! Wegman–Zadeck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp::{clone_by_constants, inline_leaf_calls, Analysis, Config};
use ipcp_suite::paper_programs;

fn bench_extensions(c: &mut Criterion) {
    let modules: Vec<_> = paper_programs().map(|p| (p.name, p.module_cfg())).collect();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(12);

    let sum_counts = |config: &Config, modules: &[(&str, ipcp_ir::ModuleCfg)]| {
        modules
            .iter()
            .map(|(_, m)| Analysis::run(m, config).substitute(m).total)
            .sum::<usize>()
    };

    group.bench_function(BenchmarkId::from_parameter("baseline-poly"), |b| {
        b.iter(|| sum_counts(&Config::polynomial(), &modules))
    });
    group.bench_function(BenchmarkId::from_parameter("compose-return-jfs"), |b| {
        let config = Config::polynomial()
            .rebuild()
            .compose_return_jfs(true)
            .build()
            .expect("compose over polynomial is valid");
        b.iter(|| sum_counts(&config, &modules))
    });
    group.bench_function(BenchmarkId::from_parameter("gated-generation"), |b| {
        let config = Config::polynomial()
            .rebuild()
            .gated(true)
            .build()
            .expect("gated over polynomial is valid");
        b.iter(|| sum_counts(&config, &modules))
    });
    group.bench_function(BenchmarkId::from_parameter("cloning"), |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| clone_by_constants(m, &Config::default(), 8).n_clones)
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("integration"), |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| inline_leaf_calls(m, &Config::default(), 3_000).inlined_calls)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
