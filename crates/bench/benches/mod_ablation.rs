//! Table 3's cost axis: the polynomial configuration with and without MOD
//! information, complete propagation (which re-runs the pipeline after
//! each DCE round), and the purely intraprocedural baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcp::{complete_propagation, Analysis, Config};
use ipcp_suite::paper_programs;

fn bench_table3_configs(c: &mut Criterion) {
    let modules: Vec<_> = paper_programs().map(|p| (p.name, p.module_cfg())).collect();
    let mut group = c.benchmark_group("table3");
    group.sample_size(15);
    group.bench_function(BenchmarkId::from_parameter("poly-with-mod"), |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| Analysis::run(m, &Config::polynomial()).substitute(m).total)
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("poly-without-mod"), |b| {
        let config = Config::polynomial().with_mod(false);
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| Analysis::run(m, &config).substitute(m).total)
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("complete-propagation"), |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| complete_propagation(m, &Config::polynomial()).substitution.total)
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("intraprocedural-only"), |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|(_, m)| {
                    let a = Analysis::run(m, &Config::polynomial());
                    ipcp::substitute_intraprocedural(m, &a).total
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3_configs);
criterion_main!(benches);
