//! Computation of the study's result tables over the synthetic suite.

use ipcp::{complete_propagation, Analysis, Config, JumpFnKind};
use ipcp_suite::{paper_programs, program_stats, ProgramStats, SuiteProgram};

/// One row of Table 2: constants found through use of jump functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Program name.
    pub name: &'static str,
    /// Polynomial, with return jump functions.
    pub poly: usize,
    /// Pass-through, with return jump functions.
    pub pass: usize,
    /// Intraprocedural constant, with return jump functions.
    pub intra: usize,
    /// Literal, with return jump functions.
    pub literal: usize,
    /// Polynomial, without return jump functions.
    pub poly_noret: usize,
    /// Pass-through, without return jump functions.
    pub pass_noret: usize,
}

/// One row of Table 3: the most precise jump function vs other techniques.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table3Row {
    /// Program name.
    pub name: &'static str,
    /// Polynomial forward + return jump functions, **no** MOD information.
    pub poly_nomod: usize,
    /// Polynomial forward + return jump functions, with MOD information.
    pub poly_mod: usize,
    /// Complete propagation (iterated with dead-code elimination).
    pub complete: usize,
    /// Purely intraprocedural propagation (MOD information used).
    pub intra_only: usize,
}

/// Substituted-constants count for one program under one configuration.
pub fn count(p: &SuiteProgram, config: &Config) -> usize {
    let mcfg = p.module_cfg();
    Analysis::run(&mcfg, config).substitute(&mcfg).total
}

/// Computes Table 1 for the paper's twelve programs.
pub fn table1_rows() -> Vec<ProgramStats> {
    paper_programs()
        .map(|p| program_stats(p.name, p.source))
        .collect()
}

/// Computes Table 2 for the paper's twelve programs.
pub fn table2_rows() -> Vec<Table2Row> {
    paper_programs()
        .map(|p| {
            let with = |k: JumpFnKind| count(p, &Config::default().with_jump_fn(k));
            let without =
                |k: JumpFnKind| count(p, &Config::default().with_jump_fn(k).with_return_jfs(false));
            Table2Row {
                name: p.name,
                poly: with(JumpFnKind::Polynomial),
                pass: with(JumpFnKind::PassThrough),
                intra: with(JumpFnKind::IntraproceduralConstant),
                literal: with(JumpFnKind::Literal),
                poly_noret: without(JumpFnKind::Polynomial),
                pass_noret: without(JumpFnKind::PassThrough),
            }
        })
        .collect()
}

/// Computes Table 3 for the paper's twelve programs.
pub fn table3_rows() -> Vec<Table3Row> {
    paper_programs()
        .map(|p| {
            let mcfg = p.module_cfg();
            let poly_mod_analysis = Analysis::run(&mcfg, &Config::polynomial());
            let poly_mod = poly_mod_analysis.substitute(&mcfg).total;
            let intra_only = ipcp::substitute_intraprocedural(&mcfg, &poly_mod_analysis).total;
            Table3Row {
                name: p.name,
                poly_nomod: count(p, &Config::polynomial().with_mod(false)),
                poly_mod,
                complete: complete_propagation(&mcfg, &Config::polynomial())
                    .substitution
                    .total,
                intra_only,
            }
        })
        .collect()
}

/// Renders rows as an aligned text table.
pub fn render<R>(header: &[&str], rows: &[R], cells: impl Fn(&R) -> Vec<String>) -> String {
    let mut grid: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    grid.extend(rows.iter().map(&cells));
    let widths: Vec<usize> = (0..header.len())
        .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            if c == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[c]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}
