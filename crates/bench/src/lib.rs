//! # ipcp-bench — regenerating the paper's tables and figures
//!
//! One binary per exhibit:
//!
//! * `figure1` — the constant-propagation lattice and meet rules;
//! * `table1` — suite characteristics (lines, procedures, mean/median);
//! * `table2` — constants substituted per forward jump function, with and
//!   without return jump functions;
//! * `table3` — polynomial without MOD / with MOD / complete propagation /
//!   purely intraprocedural propagation.
//!
//! Run e.g. `cargo run -p ipcp-bench --bin table2`. The Criterion benches
//! in `benches/` measure the corresponding compile-time costs (§3.1.5).

pub mod tables;
pub mod trend;

pub use tables::{table1_rows, table2_rows, table3_rows, Table2Row, Table3Row};
pub use trend::{compare_dirs, compare_report, TrendReport, BENCH_FILES};
