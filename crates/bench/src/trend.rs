//! Cross-run bench-trend comparison: the library behind `bench_trend`
//! and the `ci.sh bench-trend` stage.
//!
//! The bench binaries (`bench_par`, `bench_solver`, `bench_scale`) each
//! write a JSON report with a `workloads` array of rows. This module
//! compares a fresh set of those reports against the previous run's
//! (downloaded as a CI artifact) and classifies what it finds:
//!
//! * **failure** — a fresh row carries `"identical": false` (the
//!   determinism gate broke: job counts reached different fixpoints),
//!   or a report is unparseable;
//! * **warning** — a wall-time/RSS metric regressed beyond the
//!   threshold percentage (`IPCP_BENCH_TREND_PCT`, default 15). Timing
//!   on shared CI runners is noisy, so regressions warn rather than
//!   fail — the summary table makes a persistent trend visible;
//! * **note** — context that gates nothing: a missing baseline (first
//!   run, expired artifact), rows whose identity has no counterpart
//!   (workload renamed or re-tuned), or a metric that *improved* beyond
//!   the threshold.
//!
//! Rows are matched structurally, not by schema: a row's identity is
//! every string-valued field plus `jobs` / `n_procs`, and its metrics
//! are every field ending in `_us` / `_ms` plus the RSS fields. All
//! four current report shapes (and future ones that follow the same
//! convention) compare without per-file code.

use ipcp::serve::json::{self, Json};
use std::fmt;
use std::path::Path;

/// The reports every run is expected to produce, in gate order.
pub const BENCH_FILES: &[&str] = &[
    "BENCH_par.json",
    "BENCH_solver.json",
    "BENCH_scale.json",
    "BENCH_serve.json",
];

/// Outcome of a trend comparison. Failures gate; warnings and notes
/// inform.
#[derive(Debug, Default)]
pub struct TrendReport {
    /// Determinism breaches and unreadable reports — these fail CI.
    pub failures: Vec<String>,
    /// Threshold-crossing regressions — visible, not gating.
    pub warnings: Vec<String>,
    /// Non-gating context (missing baselines, improvements).
    pub notes: Vec<String>,
}

impl TrendReport {
    /// True when nothing gate-worthy was found.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn merge(&mut self, other: TrendReport) {
        self.failures.extend(other.failures);
        self.warnings.extend(other.warnings);
        self.notes.extend(other.notes);
    }
}

impl fmt::Display for TrendReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.failures {
            writeln!(f, "FAIL: {line}")?;
        }
        for line in &self.warnings {
            writeln!(f, "WARN: {line}")?;
        }
        for line in &self.notes {
            writeln!(f, "note: {line}")?;
        }
        Ok(())
    }
}

/// A row's identity within its report: every string field plus the two
/// integer fields that distinguish configurations of one workload.
fn row_key(row: &json::Object) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in row.iter() {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Int(i) if k == "jobs" || k == "n_procs" => parts.push(format!("{k}={i}")),
            _ => {}
        }
    }
    parts.join(",")
}

/// Is `key` a trend-tracked metric (time or memory)?
fn is_metric(key: &str) -> bool {
    key.ends_with("_us") || key.ends_with("_ms") || key == "rss_mb" || key == "rss_bytes"
}

fn rows(parsed: &Json) -> Vec<&json::Object> {
    let mut out = Vec::new();
    if let Some(obj) = parsed.as_object() {
        if let Some(workloads) = obj.get("workloads").and_then(Json::as_array) {
            for w in workloads {
                if let Some(row) = w.as_object() {
                    out.push(row);
                }
            }
        }
    }
    out
}

/// Compares one fresh report (`new`) against its previous-run
/// counterpart (`old`, `None` when no baseline exists).
pub fn compare_report(file: &str, old: Option<&str>, new: &str, pct: f64) -> TrendReport {
    let mut report = TrendReport::default();
    let new_parsed = match json::parse(new) {
        Ok(p) => p,
        Err(e) => {
            report
                .failures
                .push(format!("{file}: unparseable fresh report: {e}"));
            return report;
        }
    };
    let new_rows = rows(&new_parsed);
    if new_rows.is_empty() {
        report
            .failures
            .push(format!("{file}: fresh report has no workload rows"));
        return report;
    }

    // Gate 1: the determinism contract. `identical` is written by the
    // bench binary after comparing fixpoints across job counts; false
    // anywhere means the parallel schedule became observable.
    for row in &new_rows {
        if row.get("identical").and_then(Json::as_bool) == Some(false) {
            report.failures.push(format!(
                "{file}: \"identical\": false on row [{}]",
                row_key(row)
            ));
        }
    }

    // Gate 2: metric trend against the baseline, when one exists.
    let Some(old_text) = old else {
        report
            .notes
            .push(format!("{file}: no baseline — skipping trend comparison"));
        return report;
    };
    let old_parsed = match json::parse(old_text) {
        Ok(p) => p,
        Err(e) => {
            // A corrupt baseline shouldn't gate a fresh run.
            report.notes.push(format!(
                "{file}: unparseable baseline ({e}) — skipping trend"
            ));
            return report;
        }
    };
    let old_rows = rows(&old_parsed);

    for row in &new_rows {
        let key = row_key(row);
        let Some(old_row) = old_rows.iter().find(|r| row_key(r) == key) else {
            report
                .notes
                .push(format!("{file}: no baseline row for [{key}]"));
            continue;
        };
        for (k, v) in row.iter() {
            if !is_metric(k) {
                continue;
            }
            let (Some(new_v), Some(old_v)) = (v.as_i64(), old_row.get(k).and_then(Json::as_i64))
            else {
                continue;
            };
            if old_v <= 0 {
                continue;
            }
            let change = 100.0 * (new_v as f64 - old_v as f64) / old_v as f64;
            if change > pct {
                report.warnings.push(format!(
                    "{file}: {k} regressed {change:+.1}% ({old_v} -> {new_v}) on [{key}]"
                ));
            } else if change < -pct {
                report.notes.push(format!(
                    "{file}: {k} improved {change:+.1}% ({old_v} -> {new_v}) on [{key}]"
                ));
            }
        }
    }
    report
}

/// Compares every report in [`BENCH_FILES`]: fresh copies from
/// `new_dir`, baselines from `old_dir`. Missing fresh reports are notes
/// (a lane may not produce all three); if *none* exist the comparison
/// fails — the stage was wired up wrong.
pub fn compare_dirs(old_dir: &Path, new_dir: &Path, pct: f64) -> TrendReport {
    let mut report = TrendReport::default();
    let mut seen = 0usize;
    for file in BENCH_FILES {
        let new_text = match std::fs::read_to_string(new_dir.join(file)) {
            Ok(t) => t,
            Err(_) => {
                report
                    .notes
                    .push(format!("{file}: not produced by this run — skipped"));
                continue;
            }
        };
        seen += 1;
        let old_text = std::fs::read_to_string(old_dir.join(file)).ok();
        report.merge(compare_report(file, old_text.as_deref(), &new_text, pct));
    }
    if seen == 0 {
        report.failures.push(format!(
            "no bench reports found in {} (expected at least one of: {})",
            new_dir.display(),
            BENCH_FILES.join(", ")
        ));
    }
    report
}

/// The regression threshold: `IPCP_BENCH_TREND_PCT`, default 15.
pub fn threshold_pct() -> f64 {
    std::env::var("IPCP_BENCH_TREND_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|p: &f64| *p > 0.0)
        .unwrap_or(15.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[&str]) -> String {
        format!(
            "{{\n  \"jobs\": [1, 4],\n  \"workloads\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        )
    }

    const ROW_OK: &str =
        r#"{"program": "scale-1k", "jobs": 1, "wall_ms": 100, "rss_mb": 40, "identical": true}"#;

    #[test]
    fn identical_false_fails_even_without_a_baseline() {
        let bad = report(&[
            ROW_OK,
            r#"{"program": "scale-1k", "jobs": 4, "wall_ms": 90, "rss_mb": 40, "identical": false}"#,
        ]);
        let r = compare_report("BENCH_scale.json", None, &bad, 15.0);
        assert!(!r.ok());
        assert_eq!(r.failures.len(), 1, "{r}");
        assert!(r.failures[0].contains("identical"), "{r}");
        assert!(r.failures[0].contains("jobs=4"), "{r}");
    }

    #[test]
    fn regression_beyond_threshold_warns_but_does_not_fail() {
        let old = report(&[ROW_OK]);
        let new = report(&[
            r#"{"program": "scale-1k", "jobs": 1, "wall_ms": 130, "rss_mb": 40, "identical": true}"#,
        ]);
        let r = compare_report("BENCH_scale.json", Some(&old), &new, 15.0);
        assert!(r.ok(), "{r}");
        assert_eq!(r.warnings.len(), 1, "{r}");
        assert!(r.warnings[0].contains("wall_ms"), "{r}");
        assert!(r.warnings[0].contains("+30.0%"), "{r}");

        // The same delta under a looser threshold is clean.
        let r = compare_report("BENCH_scale.json", Some(&old), &new, 50.0);
        assert!(r.ok() && r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn improvement_beyond_threshold_is_a_note() {
        let old = report(&[ROW_OK]);
        let new = report(&[
            r#"{"program": "scale-1k", "jobs": 1, "wall_ms": 50, "rss_mb": 40, "identical": true}"#,
        ]);
        let r = compare_report("BENCH_scale.json", Some(&old), &new, 15.0);
        assert!(r.ok() && r.warnings.is_empty(), "{r}");
        assert!(r.notes.iter().any(|n| n.contains("improved")), "{r}");
    }

    #[test]
    fn missing_baseline_and_unmatched_rows_are_notes() {
        let new = report(&[ROW_OK]);
        let r = compare_report("BENCH_scale.json", None, &new, 15.0);
        assert!(r.ok() && r.warnings.is_empty(), "{r}");
        assert!(r.notes[0].contains("no baseline"), "{r}");

        let old =
            report(&[r#"{"program": "scale-2k", "jobs": 1, "wall_ms": 100, "identical": true}"#]);
        let r = compare_report("BENCH_scale.json", Some(&old), &new, 15.0);
        assert!(r.ok() && r.warnings.is_empty(), "{r}");
        assert!(r.notes[0].contains("no baseline row"), "{r}");
    }

    #[test]
    fn rows_match_on_identity_not_position() {
        let old = report(&[
            r#"{"program": "wide", "jobs": 4, "seq_us": 500, "identical": true}"#,
            r#"{"program": "wide", "jobs": 2, "seq_us": 100, "identical": true}"#,
        ]);
        let new = report(&[r#"{"program": "wide", "jobs": 2, "seq_us": 130, "identical": true}"#]);
        let r = compare_report("BENCH_par.json", Some(&old), &new, 15.0);
        // Matched jobs=2 (100 -> 130, +30%), not positionally jobs=4.
        assert_eq!(r.warnings.len(), 1, "{r}");
        assert!(r.warnings[0].contains("+30.0%"), "{r}");
    }

    #[test]
    fn unparseable_fresh_report_fails_but_corrupt_baseline_does_not() {
        let r = compare_report("BENCH_par.json", None, "not json", 15.0);
        assert!(!r.ok());
        let new = report(&[ROW_OK]);
        let r = compare_report("BENCH_par.json", Some("not json"), &new, 15.0);
        assert!(r.ok(), "{r}");
        assert!(r.notes[0].contains("unparseable baseline"), "{r}");
    }

    #[test]
    fn compare_dirs_handles_missing_files() {
        let base = std::env::temp_dir().join(format!("ipcp-trend-test-{}", std::process::id()));
        let old_dir = base.join("old");
        let new_dir = base.join("new");
        std::fs::create_dir_all(&old_dir).unwrap();
        std::fs::create_dir_all(&new_dir).unwrap();

        // Empty new dir: nothing to gate on — that is a failure.
        let r = compare_dirs(&old_dir, &new_dir, 15.0);
        assert!(!r.ok(), "{r}");

        // One fresh report, no baselines: ok with notes.
        std::fs::write(new_dir.join("BENCH_par.json"), report(&[ROW_OK])).unwrap();
        let r = compare_dirs(&old_dir, &new_dir, 15.0);
        assert!(r.ok(), "{r}");
        assert!(r.notes.iter().any(|n| n.contains("no baseline")), "{r}");

        // Injected identical:false in the fresh report: failure.
        std::fs::write(
            new_dir.join("BENCH_scale.json"),
            report(&[r#"{"program": "scale-1k", "jobs": 4, "wall_ms": 90, "identical": false}"#]),
        )
        .unwrap();
        let r = compare_dirs(&old_dir, &new_dir, 15.0);
        assert!(!r.ok(), "{r}");

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn threshold_default_is_fifteen() {
        // Can't set env safely in parallel tests; just check the default
        // path when the variable is absent or garbage.
        if std::env::var("IPCP_BENCH_TREND_PCT").is_err() {
            assert_eq!(threshold_pct(), 15.0);
        }
    }
}
