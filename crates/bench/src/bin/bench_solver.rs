//! Measures the wavefront `VAL` solver against the classic §4.1 FIFO
//! worklist it replaced, and verifies the determinism contract along the
//! way: the wavefront at `jobs = 1` and `jobs >= 2` must agree
//! bit-for-bit on `vals`/`meets`/`iterations`, and both must reach the
//! same `VAL` fixpoint as the worklist reference.
//!
//! Three timings per workload (jump functions are built once; only the
//! propagation is timed):
//!
//! * `seq_us` — wavefront, `jobs = 1`;
//! * `par_us` — wavefront, `jobs >= 2`;
//! * `worklist_us` — [`solve_worklist_reference`], the retained §4.1
//!   solver.
//!
//! `speedup` is `worklist_us / par_us` — the headline number. It is an
//! *algorithmic* win as much as a concurrency one: the worklist
//! re-evaluates a procedure every time a meet lowers one of its slots,
//! while the dependency-levelled wavefront evaluates each activated SCC
//! once with all caller meets already applied, so it survives single-core
//! containers. `jobs_speedup` (`seq_us / par_us`) isolates the threading
//! contribution for transparency.
//!
//! Writes `BENCH_solver.json` into the current directory.

use ipcp::{solve, solve_worklist_reference, Analysis, Config, Governor, Lattice, ValSets};
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::SlotLayout;
use ipcp_suite::{generate, GenConfig};
use std::time::{Duration, Instant};

/// The `wide` workload: `w` procedures per layer, `l` layers, each
/// procedure fanning out to `f` procedures of the next layer, plus `t`
/// call chains of staggered lengths that each re-lower one global after
/// layer 2 has already propagated its first value downward. This is the
/// FIFO worst case: every late-arriving wave re-evaluates the whole
/// subtree below layer 2, once per wave, while the dependency-levelled
/// wavefront schedules layer 2 *after* all the chains and evaluates each
/// procedure exactly once. (It is also genuinely wide: every layer is one
/// level of `w` independent units.)
fn gen_wide(w: usize, l: usize, f: usize, t: usize) -> String {
    let mut s = String::new();
    // One "wave" global per chain (re-assigned at the chain tail) plus
    // pass-through globals that stay constant but fatten every VAL vector.
    for k in 0..t {
        s.push_str(&format!("global gw{k}; "));
    }
    for k in 0..4 {
        s.push_str(&format!("global gp{k}; "));
    }
    s.push_str("proc main() { ");
    for k in 0..t {
        s.push_str(&format!("gw{k} = 1; "));
    }
    for k in 0..4 {
        s.push_str(&format!("gp{k} = {}; ", 10 + k));
    }
    // The layer calls come first: the chain tails re-assign the wave
    // globals, and the analysis's return jump functions are precise
    // enough that calling the chains first would correctly update main's
    // own globals instead of creating a cross-path conflict.
    for j in 0..w {
        s.push_str(&format!("call l1_{j}({j}); "));
    }
    for k in 0..t {
        s.push_str(&format!("call c{k}_0(); "));
    }
    s.push_str("} ");
    // Chain k has length l + 2 + k * (l + 1): each wave fully cascades
    // through the layers before the next one lands.
    for k in 0..t {
        let len = l + 2 + k * (l + 1);
        for st in 0..len {
            if st + 1 < len {
                s.push_str(&format!("proc c{k}_{st}() {{ call c{k}_{}(); }} ", st + 1));
            } else {
                s.push_str(&format!("proc c{k}_{st}() {{ gw{k} = 2; "));
                for j in 0..w {
                    s.push_str(&format!("call l2_{j}({j}); "));
                }
                s.push_str("} ");
            }
        }
    }
    for layer in 1..=l {
        for j in 0..w {
            s.push_str(&format!("proc l{layer}_{j}(x) {{ print x + gw0; "));
            if layer < l {
                for e in 0..f {
                    s.push_str(&format!("call l{}_{}(x); ", layer + 1, (j + e * 7) % w));
                }
            }
            s.push_str("} ");
        }
    }
    s
}

/// One workload: a name plus the source it expands to.
struct Workload {
    name: &'static str,
    source: fn() -> String,
    n_procs_hint: usize,
}

fn wide_source() -> String {
    gen_wide(96, 5, 8, 8)
}

fn deep_source() -> String {
    generate(
        &GenConfig {
            n_procs: 120,
            n_globals: 8,
            stmts_per_proc: 64,
            max_depth: 4,
        },
        23,
    )
}

fn mixed_source() -> String {
    generate(
        &GenConfig {
            n_procs: 240,
            n_globals: 10,
            stmts_per_proc: 40,
            max_depth: 3,
        },
        37,
    )
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "wide",
        source: wide_source,
        n_procs_hint: 0,
    },
    Workload {
        name: "deep",
        source: deep_source,
        n_procs_hint: 120,
    },
    Workload {
        name: "mixed",
        source: mixed_source,
        n_procs_hint: 240,
    },
];

/// Repetitions per configuration: best-of-5 by default, overridable via
/// `IPCP_BENCH_REPS` (the CI identity gate runs with a low count — it
/// cares about `identical`, not stable timings).
fn reps() -> u32 {
    std::env::var("IPCP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Best-of-[`reps`] wall time for one wavefront configuration, returning
/// the last result so the caller can compare across configurations.
fn time_wavefront(
    mcfg: &ModuleCfg,
    a: &Analysis,
    layout: &SlotLayout,
    config: &Config,
    jobs: usize,
) -> (Duration, ValSets, Vec<bool>) {
    let n = mcfg.module.procs.len();
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps() {
        let mut gov = Governor::new(config);
        let mut quarantined = vec![false; n];
        let t0 = Instant::now();
        let (v, _) = solve(
            mcfg,
            &a.cg,
            layout,
            &a.jump_fns,
            Lattice::Bottom,
            config,
            &mut gov,
            &mut quarantined,
            jobs,
        );
        best = best.min(t0.elapsed());
        last = Some((v, quarantined));
    }
    let (v, q) = last.unwrap_or_else(|| {
        (
            ValSets {
                vals: Vec::new(),
                meets: 0,
                iterations: 0,
            },
            Vec::new(),
        )
    });
    (best, v, q)
}

/// Best-of-[`reps`] wall time for the worklist reference.
fn time_worklist(mcfg: &ModuleCfg, a: &Analysis, layout: &SlotLayout) -> (Duration, ValSets) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps() {
        let mut gov = Governor::unlimited();
        let t0 = Instant::now();
        let v =
            solve_worklist_reference(mcfg, &a.cg, layout, &a.jump_fns, Lattice::Bottom, &mut gov);
        best = best.min(t0.elapsed());
        last = Some(v);
    }
    let v = last.unwrap_or(ValSets {
        vals: Vec::new(),
        meets: 0,
        iterations: 0,
    });
    (best, v)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let par_jobs = Config::default().effective_jobs().max(2);
    let config = Config::polynomial();
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "program",
        "procs",
        "seq_us",
        "par_us",
        "worklist_us",
        "speedup",
        "jobs_spd",
        "wf_iter",
        "wl_iter"
    );
    for w in WORKLOADS {
        let src = (w.source)();
        let module = ipcp_ir::parse_and_resolve(&src)
            .map_err(|d| format!("generated program failed to parse: {d:?}"))?;
        let mcfg = ipcp_ir::lower_module(&module);
        let n_procs = if w.n_procs_hint > 0 {
            w.n_procs_hint
        } else {
            mcfg.module.procs.len()
        };
        // Jump functions are built once; only the propagation is timed.
        let analysis = Analysis::run(&mcfg, &config);
        let layout = SlotLayout::new(&mcfg.module);

        let (seq_t, seq_v, seq_q) = time_wavefront(&mcfg, &analysis, &layout, &config, 1);
        let (par_t, par_v, par_q) = time_wavefront(&mcfg, &analysis, &layout, &config, par_jobs);
        let (wl_t, wl_v) = time_worklist(&mcfg, &analysis, &layout);

        // The determinism contract: the parallel schedule must not be
        // observable (vals, meets, iterations, quarantine flags), and the
        // wavefront must reach the worklist's VAL fixpoint.
        if par_v != seq_v || par_q != seq_q {
            return Err(format!(
                "jobs={par_jobs} diverged from jobs=1 on workload `{}`",
                w.name
            )
            .into());
        }
        if seq_v.vals != wl_v.vals {
            return Err(format!(
                "wavefront fixpoint diverged from the worklist reference on `{}`",
                w.name
            )
            .into());
        }

        let speedup = wl_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
        let jobs_speedup = seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>6} {:>10} {:>10} {:>12} {:>7.2}x {:>7.2}x {:>8} {:>8}",
            w.name,
            n_procs,
            seq_t.as_micros(),
            par_t.as_micros(),
            wl_t.as_micros(),
            speedup,
            jobs_speedup,
            seq_v.iterations,
            wl_v.iterations,
        );
        rows.push(format!(
            concat!(
                "    {{\"program\": \"{}\", \"n_procs\": {}, \"seq_us\": {}, ",
                "\"par_us\": {}, \"worklist_us\": {}, \"speedup\": {:.3}, ",
                "\"jobs_speedup\": {:.3}, \"wavefront_iterations\": {}, ",
                "\"worklist_iterations\": {}, \"identical\": true}}"
            ),
            w.name,
            n_procs,
            seq_t.as_micros(),
            par_t.as_micros(),
            wl_t.as_micros(),
            speedup,
            jobs_speedup,
            seq_v.iterations,
            wl_v.iterations,
        ));
    }

    let reps = reps();
    // Physical parallelism actually available: on a single-core container
    // `jobs_speedup > 1` is unattainable and only `identical` matters.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"jobs\": {par_jobs},\n  \"cores\": {cores},\n  \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_solver.json", &json)?;
    println!("wrote BENCH_solver.json (jobs={par_jobs}, cores={cores}, best of {reps})");
    Ok(())
}
