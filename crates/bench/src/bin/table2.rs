//! Regenerates Table 2: constants found through use of jump functions.

use ipcp_bench::{table2_rows, tables::render};

fn main() {
    let rows = table2_rows();
    println!("Table 2: Constants found through use of jump functions.");
    println!("(columns 1-4 use return jump functions; 5-6 do not)\n");
    let text = render(
        &[
            "Program",
            "Polynomial",
            "Pass-through",
            "Intraproc",
            "Literal",
            "Poly/NoRet",
            "Pass/NoRet",
        ],
        &rows,
        |r| {
            vec![
                r.name.to_string(),
                r.poly.to_string(),
                r.pass.to_string(),
                r.intra.to_string(),
                r.literal.to_string(),
                r.poly_noret.to_string(),
                r.pass_noret.to_string(),
            ]
        },
    );
    print!("{text}");
}
