//! Compares this run's BENCH_*.json reports against the previous run's
//! (see `ipcp_bench::trend` for the classification rules).
//!
//! Usage: `bench_trend --new <dir> [--old <dir>] [--pct <percent>]`
//!
//! `--new` points at the directory holding the fresh reports (usually
//! the repo root); `--old` at the previous run's downloaded artifacts —
//! omit it on a first run and every comparison becomes a note. The
//! warning threshold defaults to `IPCP_BENCH_TREND_PCT` (15 when
//! unset). Exit status is nonzero only for failures: a fresh report
//! carrying `"identical": false`, an unparseable fresh report, or no
//! fresh reports at all.

use ipcp_bench::trend;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: bench_trend --new <dir> [--old <dir>] [--pct <percent>]");
    std::process::exit(2);
}

fn main() {
    let mut new_dir: Option<PathBuf> = None;
    let mut old_dir: Option<PathBuf> = None;
    let mut pct = trend::threshold_pct();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("bench_trend: {flag} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--new" => new_dir = Some(PathBuf::from(value("--new"))),
            "--old" => old_dir = Some(PathBuf::from(value("--old"))),
            "--pct" => match value("--pct").parse::<f64>() {
                Ok(p) if p > 0.0 => pct = p,
                _ => {
                    eprintln!("bench_trend: --pct needs a positive number");
                    usage();
                }
            },
            _ => {
                eprintln!("bench_trend: unknown argument {arg:?}");
                usage();
            }
        }
    }
    let Some(new_dir) = new_dir else { usage() };
    // With no baseline directory, point the old side at a path that has
    // no reports: every file falls into the "no baseline" note path.
    let old_dir = old_dir.unwrap_or_else(|| new_dir.join("no-baseline"));

    let report = trend::compare_dirs(&old_dir, &new_dir, pct);
    print!("{report}");
    if report.ok() {
        println!(
            "bench-trend: ok ({} warning(s), {} note(s), threshold {pct}%)",
            report.warnings.len(),
            report.notes.len()
        );
    } else {
        eprintln!("bench-trend: {} failure(s)", report.failures.len());
        std::process::exit(1);
    }
}
