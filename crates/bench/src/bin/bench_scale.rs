//! The whole-program scale tiers: 1k / 10k / 100k procedures, analyzed
//! at jobs = {1, N} with the same cross-jobs determinism gate as
//! `bench_par`, plus the two numbers the other benches cannot see —
//! wall time at scale and **peak RSS**.
//!
//! `ru_maxrss` is a per-process high-water mark, so measuring three
//! tiers in one process would report the largest tier's footprint for
//! all of them. Each (tier, jobs) cell therefore runs in a child
//! process (`bench_scale --child <spec> <jobs>`): the child builds the
//! module through the *streaming* front end (`resolve_streaming` over a
//! `ScaleSource`), runs the analysis, and prints one JSON row; the
//! parent collects the rows, checks that every job count reached the
//! identical fixpoint, enforces the optional ceilings, and writes
//! `BENCH_scale.json` into the current directory.
//!
//! Knobs (all environment variables):
//!
//! * `IPCP_SCALE_TIERS` — comma list of tiers to run (`1k,10k,100k`;
//!   default all three; `ci.sh scale-smoke` runs `1k,10k`);
//! * `IPCP_BENCH_JOBS` — parallel job counts swept against jobs=1
//!   (default `4`);
//! * `IPCP_BENCH_REPS` — analysis repetitions per cell, best-of
//!   (default 1 — tiers are big; identity matters more than variance);
//! * `IPCP_SCALE_MAX_WALL_MS` / `IPCP_SCALE_MAX_RSS_MB` — hard ceilings
//!   per cell; any breach fails the run after the JSON is written.

use ipcp::serve::json::{self, Json};
use ipcp::{peak_rss_bytes, Analysis, Config};
use ipcp_ir::resolve_streaming;
use ipcp_suite::{ScaleSource, ScaleSpec};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The named tiers. Seeds differ per tier so no tier is a prefix of
/// another (a 10k program is *not* the first tenth of the 100k one).
const TIERS: &[(&str, &str)] = &[
    ("1k", "procs=1k,shape=mixed,recursion=8,seed=101"),
    ("10k", "procs=10k,shape=mixed,recursion=8,seed=102"),
    ("100k", "procs=100k,shape=mixed,recursion=8,seed=103"),
];

fn env_usize(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn reps() -> u32 {
    env_usize("IPCP_BENCH_REPS")
        .map(|r| r as u32)
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

fn job_sweep() -> Vec<usize> {
    let par: Vec<usize> = std::env::var("IPCP_BENCH_JOBS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&j| j >= 2)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4]);
    let mut sweep = vec![1];
    sweep.extend(par);
    sweep
}

fn tiers() -> Vec<(&'static str, &'static str)> {
    let Ok(wanted) = std::env::var("IPCP_SCALE_TIERS") else {
        return TIERS.to_vec();
    };
    let names: Vec<&str> = wanted
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    TIERS
        .iter()
        .filter(|(name, _)| names.contains(name))
        .copied()
        .collect()
}

/// Streams `Debug` formatting straight into the FNV-128 hasher — the
/// analysis-result digest never materializes as a string (at 100k
/// procedures it would be tens of megabytes, polluting the RSS reading).
struct HashWriter(ipcp_ir::hash::Fnv128);

impl std::fmt::Write for HashWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// Child mode: one (spec, jobs) cell, one JSON row on stdout.
fn child(spec_str: &str, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScaleSpec::parse(spec_str)?;
    let t0 = Instant::now();
    let source = ScaleSource::new(spec);
    let streamed =
        resolve_streaming(&source).map_err(|d| format!("scale program failed to resolve: {d}"))?;
    let resolve = t0.elapsed();
    let t1 = Instant::now();
    let mcfg = ipcp_ir::lower_module(&streamed.module);
    let lower = t1.elapsed();
    let build = resolve + lower;

    let config = Config::default().with_jobs(jobs);
    let mut best = Duration::MAX;
    let mut last: Option<Analysis> = None;
    for _ in 0..reps() {
        let t = Instant::now();
        let a = Analysis::run(&mcfg, &config);
        best = best.min(t.elapsed());
        last = Some(a);
    }
    let a = last.ok_or("reps must be >= 1")?;

    let mut hw = HashWriter(ipcp_ir::hash::Fnv128::new());
    write!(hw, "{:?}{:?}{:?}", a.vals.vals, a.health, a.quarantined)?;
    let digest = hw.0.finish();

    let rss = peak_rss_bytes().unwrap_or(0);
    let mut stages = String::new();
    for (name, pt) in a.timings.stages() {
        let _ = write!(stages, "\"{name}_us\": {}, ", pt.wall.as_micros());
    }
    println!(
        concat!(
            "{{\"n_procs\": {}, \"resolve_ms\": {}, \"lower_ms\": {}, ",
            "\"build_ms\": {}, \"analyze_ms\": {}, ",
            "\"rss_bytes\": {}, \"total_bytes\": {}, \"peak_chunk_bytes\": {}, ",
            "{}\"solver_iterations\": {}, \"digest\": \"{:032x}\"}}"
        ),
        mcfg.module.procs.len(),
        resolve.as_millis(),
        lower.as_millis(),
        build.as_millis(),
        best.as_millis(),
        rss,
        streamed.total_bytes,
        streamed.peak_chunk_bytes,
        stages,
        a.vals.iterations,
        digest,
    );
    Ok(())
}

/// One collected cell.
struct Cell {
    tier: &'static str,
    jobs: usize,
    row: json::Object,
    digest: String,
}

fn get_i64(obj: &json::Object, key: &str) -> i64 {
    obj.get(key).and_then(Json::as_i64).unwrap_or(0)
}

fn run_cell(tier: &'static str, spec: &str, jobs: usize) -> Result<Cell, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .args(["--child", spec, &jobs.to_string()])
        .output()
        .map_err(|e| format!("spawning child for tier {tier}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "tier {tier} jobs={jobs} child failed: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed = json::parse(text.trim())
        .map_err(|e| format!("tier {tier} jobs={jobs}: bad child row: {e}"))?;
    let Json::Object(row) = parsed else {
        return Err(format!(
            "tier {tier} jobs={jobs}: child row is not an object"
        ));
    };
    let digest = row
        .get("digest")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("tier {tier} jobs={jobs}: child row has no digest"))?
        .to_owned();
    Ok(Cell {
        tier,
        jobs,
        row,
        digest,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--child" {
        return child(&args[2], args[3].parse()?);
    }

    let sweep = job_sweep();
    let tiers = tiers();
    if tiers.is_empty() {
        return Err("IPCP_SCALE_TIERS selected no known tier (have: 1k, 10k, 100k)".into());
    }
    let max_wall_ms = env_usize("IPCP_SCALE_MAX_WALL_MS");
    let max_rss_mb = env_usize("IPCP_SCALE_MAX_RSS_MB");

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:<6} {:>5} {:>10} {:>12} {:>8} {:>10} {:>9}",
        "tier", "jobs", "build_ms", "analyze_ms", "rss_mb", "solve_us", "iters"
    );
    let mut failures: Vec<String> = Vec::new();
    for &(tier, spec) in &tiers {
        for &jobs in &sweep {
            let cell = run_cell(tier, spec, jobs)?;
            let wall_ms = get_i64(&cell.row, "build_ms") + get_i64(&cell.row, "analyze_ms");
            let rss_mb = get_i64(&cell.row, "rss_bytes") / (1024 * 1024);
            println!(
                "{:<6} {:>5} {:>10} {:>12} {:>8} {:>10} {:>9}",
                tier,
                jobs,
                get_i64(&cell.row, "build_ms"),
                get_i64(&cell.row, "analyze_ms"),
                rss_mb,
                get_i64(&cell.row, "solve_us"),
                get_i64(&cell.row, "solver_iterations"),
            );
            if let Some(limit) = max_wall_ms {
                if wall_ms as u64 > limit {
                    failures.push(format!(
                        "tier {tier} jobs={jobs}: wall {wall_ms} ms exceeds ceiling {limit} ms"
                    ));
                }
            }
            if let Some(limit) = max_rss_mb {
                if rss_mb as u64 > limit {
                    failures.push(format!(
                        "tier {tier} jobs={jobs}: peak RSS {rss_mb} MB exceeds ceiling {limit} MB"
                    ));
                }
            }
            cells.push(cell);
        }
    }

    // The determinism contract, across processes: every job count must
    // reach the bit-identical fixpoint (vals, health, quarantine flags).
    let mut rows = Vec::new();
    for &(tier, spec) in &tiers {
        let tier_cells: Vec<&Cell> = cells.iter().filter(|c| c.tier == tier).collect();
        let identical = tier_cells.windows(2).all(|w| w[0].digest == w[1].digest);
        if !identical {
            failures.push(format!("tier {tier}: job counts diverged (see digests)"));
        }
        for c in &tier_cells {
            let mut row = format!(
                "    {{\"program\": \"scale-{tier}\", \"tier\": \"{tier}\", \"spec\": \"{spec}\", \"jobs\": {}, ",
                c.jobs
            );
            let wall_ms = get_i64(&c.row, "build_ms") + get_i64(&c.row, "analyze_ms");
            let rss_mb = get_i64(&c.row, "rss_bytes") / (1024 * 1024);
            let _ = write!(row, "\"wall_ms\": {wall_ms}, \"rss_mb\": {rss_mb}, ");
            for key in [
                "n_procs",
                "resolve_ms",
                "lower_ms",
                "build_ms",
                "analyze_ms",
                "total_bytes",
                "peak_chunk_bytes",
                "modref_us",
                "retjump_us",
                "jump_us",
                "solve_us",
                "solver_iterations",
            ] {
                let _ = write!(row, "\"{key}\": {}, ", get_i64(&c.row, key));
            }
            let _ = write!(row, "\"identical\": {identical}}}");
            rows.push(row);
        }
    }

    let reps = reps();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs_list = sweep
        .iter()
        .map(|j| j.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json_text = format!(
        "{{\n  \"jobs\": [{jobs_list}],\n  \"cores\": {cores},\n  \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_scale.json", &json_text)?;
    println!("wrote BENCH_scale.json (jobs=[{jobs_list}], cores={cores}, best of {reps})");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        return Err(format!("{} scale gate failure(s)", failures.len()).into());
    }
    Ok(())
}
