//! Regenerates Figure 1: the constant propagation lattice and its meet.

use ipcp::Lattice;

fn main() {
    println!("Figure 1: The constant propagation lattice.\n");
    println!("            ⊤");
    println!("   ... -2 -1 0 1 2 ...   (all integer constants, incomparable)");
    println!("            ⊥\n");
    println!("Meet rules (∧):");
    let samples = [
        Lattice::Top,
        Lattice::Const(1),
        Lattice::Const(2),
        Lattice::Bottom,
    ];
    println!("{:>4} {:>4} {:>4} {:>4} {:>4}", "∧", "⊤", "1", "2", "⊥");
    for a in samples {
        print!("{:>4}", a.to_string());
        for b in samples {
            print!(" {:>4}", a.meet(b).to_string());
        }
        println!();
    }
    println!();
    println!("The lattice is infinite but of bounded depth: any value can be");
    println!("lowered at most twice (⊤ → c → ⊥), which bounds the iterative");
    println!("interprocedural propagation.");
}
