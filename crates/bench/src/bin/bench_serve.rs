//! `bench_serve` — the serve-tier benchmark: boots the real `ipcc`
//! daemon over generated [`ScaleSpec`] programs and measures the
//! service-level numbers the CI gates care about:
//!
//! * **cold boot** — spawn → first `ok` health reply over the socket;
//! * **warm edits** — an `update` + re-`constants` round trip per edit
//!   (the incremental path, never a cold re-analysis);
//! * **read throughput** — N unbatched `constants` reads (one round
//!   trip each) vs. the same reads packed into `batch` frames;
//! * **identity** — per-request replies must be byte-identical between
//!   the batched and unbatched passes, and the full read transcript
//!   (plus a final whole-program `constants`) must digest-match across
//!   every `--serve-workers` count.
//!
//! One row per (tier, workers) cell lands in `BENCH_serve.json`, shaped
//! like the other bench reports so `bench_trend` tracks it across runs.
//!
//! Knobs (all environment variables):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `IPCP_SERVE_TIERS` | `1k` | comma list of `1k`, `10k`, `100k` |
//! | `IPCP_SERVE_WORKERS` | `1,4` | comma list of `--serve-workers` values |
//! | `IPCP_SERVE_READS` | `400` | reads per throughput pass |
//! | `IPCP_SERVE_BATCH` | `50` | requests per `batch` frame |
//! | `IPCP_SERVE_EDITS` | `5` | warm `update` rounds |
//! | `IPCP_SERVE_MAX_EDIT_MS` | off | fail if any edit round exceeds this |
//! | `IPCP_SERVE_MIN_BATCH_SPEEDUP` | `2.0` | floor, enforced at the 1k tier |
//! | `IPCP_SERVE_BOOT_TIMEOUT_MS` | `900000` | give up waiting for boot |

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ipcp::serve::json::{self, Json};
use ipcp_ir::hash::Fnv128;
use ipcp_ir::ProgramSource;
use ipcp_suite::{generate_scale, ScaleSource, ScaleSpec};

/// Same tier specs as `bench_scale` — the serve numbers and the batch
/// analysis numbers must describe the same programs.
const TIERS: &[(&str, &str)] = &[
    ("1k", "procs=1k,shape=mixed,recursion=8,seed=101"),
    ("10k", "procs=10k,shape=mixed,recursion=8,seed=102"),
    ("100k", "procs=100k,shape=mixed,recursion=8,seed=103"),
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn tiers() -> Vec<(&'static str, &'static str)> {
    let sel = std::env::var("IPCP_SERVE_TIERS").unwrap_or_else(|_| "1k".to_owned());
    let names: Vec<&str> = sel
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    TIERS
        .iter()
        .filter(|(name, _)| names.contains(name))
        .copied()
        .collect()
}

fn worker_sweep() -> Vec<usize> {
    let sel = std::env::var("IPCP_SERVE_WORKERS").unwrap_or_else(|_| "1,4".to_owned());
    let mut out: Vec<usize> = sel
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&w| w >= 1)
        .collect();
    if out.is_empty() {
        out.push(1);
    }
    out
}

/// A running daemon plus the line-oriented socket client driving it.
struct Daemon {
    child: Child,
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Daemon {
    /// Spawns `ipcc serve` over `program` and waits for the first `ok`
    /// health reply. Returns the daemon and the measured boot time.
    fn boot(
        program: &std::path::Path,
        sock: &std::path::Path,
        workers: usize,
    ) -> Result<(Daemon, Duration), String> {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        let dir = exe.parent().ok_or("bench binary has no parent dir")?;
        let ipcc = dir.join("ipcc");
        if !ipcc.exists() {
            return Err(format!(
                "{} not found (build ipcp-cli first)",
                ipcc.display()
            ));
        }
        let t0 = Instant::now();
        let child = Command::new(&ipcc)
            .arg("serve")
            .arg(program)
            .args(["--socket"])
            .arg(sock)
            .args(["--serve-workers", &workers.to_string()])
            .args(["--max-inflight", "4096", "--queue-ms", "600000"])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning ipcc serve: {e}"))?;
        let timeout =
            Duration::from_millis(env_usize("IPCP_SERVE_BOOT_TIMEOUT_MS", 900_000) as u64);
        let stream = loop {
            match UnixStream::connect(sock) {
                Ok(s) => break s,
                Err(_) if t0.elapsed() < timeout => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(format!("daemon never bound {}: {e}", sock.display())),
            }
        };
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut d = Daemon {
            child,
            reader,
            writer: stream,
        };
        let health = d.request(r#"{"id": 0, "op": "health"}"#)?;
        if !health.contains("\"ok\":true") {
            return Err(format!("boot health reply not ok: {health}"));
        }
        Ok((d, t0.elapsed()))
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("socket write: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("socket read: {e}"))?;
        if n == 0 {
            return Err("daemon closed the socket".to_owned());
        }
        Ok(line.trim_end().to_owned())
    }

    /// One request, one reply (the caller guarantees no other requests
    /// are in flight on this connection).
    fn request(&mut self, line: &str) -> Result<String, String> {
        self.send(line)?;
        self.recv()
    }

    /// Graceful shutdown: `shutdown` op, then reap the child and
    /// require exit status 0.
    fn shutdown(mut self) -> Result<(), String> {
        let _ = self.request(r#"{"id": "bye", "op": "shutdown"}"#)?;
        drop(self.writer);
        drop(self.reader);
        let status = self
            .child
            .wait()
            .map_err(|e| format!("waiting for daemon: {e}"))?;
        if !status.success() {
            return Err(format!("daemon exited nonzero: {status}"));
        }
        Ok(())
    }
}

/// Extracts the string id of a reply object (ids here are all strings).
fn reply_id(reply: &str) -> Result<String, String> {
    let parsed = json::parse(reply).map_err(|e| format!("bad reply {reply}: {e}"))?;
    let Json::Object(obj) = parsed else {
        return Err(format!("reply is not an object: {reply}"));
    };
    match obj.get("id") {
        Some(Json::Str(s)) => Ok(s.clone()),
        other => Err(format!("reply id is not a string ({other:?}): {reply}")),
    }
}

/// The deterministic edit stream: round `e` rewrites procedure
/// `p{1 + e % (procs-1)}`, bumping the literal in its `v0 = <lit>;`
/// prologue line by `e + 1`. Same spec + same round ⇒ same body text,
/// so every workers cell replays an identical session.
fn edited_body(source: &ScaleSource, round: usize) -> Result<(String, String), String> {
    let procs = source.spec().procs;
    if procs < 2 {
        return Err("edit stream needs at least 2 procedures".to_owned());
    }
    let idx = 1 + round % (procs - 1);
    let mut body = String::new();
    source.chunk(idx + 1, &mut body);
    let at = body
        .find("v0 = ")
        .ok_or_else(|| format!("p{idx} has no v0 prologue"))?;
    let lit_start = at + "v0 = ".len();
    let semi = body[lit_start..]
        .find(';')
        .ok_or_else(|| format!("p{idx} prologue line is unterminated"))?;
    let lit: i64 = body[lit_start..lit_start + semi]
        .trim()
        .parse()
        .map_err(|e| format!("p{idx} prologue literal: {e}"))?;
    let bumped = lit.wrapping_add(round as i64 + 1);
    body.replace_range(lit_start..lit_start + semi, &bumped.to_string());
    Ok((format!("p{idx}"), body))
}

/// One (tier, workers) measurement row.
struct CellRow {
    cold_boot_ms: u128,
    edit_ms: u128,
    edit_max_ms: u128,
    unbatched_read_us: u128,
    batched_read_us: u128,
    batch_speedup: f64,
    identical_in_cell: bool,
    digest: String,
}

#[allow(clippy::too_many_lines)]
fn run_cell(
    tier: &str,
    spec_str: &str,
    workers: usize,
    program: &std::path::Path,
    failures: &mut Vec<String>,
) -> Result<CellRow, String> {
    let spec = ScaleSpec::parse(spec_str)?;
    let source = ScaleSource::new(spec);
    let reads = env_usize("IPCP_SERVE_READS", 400).max(1);
    let batch = env_usize("IPCP_SERVE_BATCH", 50).clamp(1, 1024);
    let edits = env_usize("IPCP_SERVE_EDITS", 5);
    let procs = source.spec().procs;

    let sock = program.with_extension(format!("w{workers}.sock"));
    let _ = std::fs::remove_file(&sock);
    let (mut d, boot) = Daemon::boot(program, &sock, workers)?;

    // Warm edits: update + re-read the edited procedure, per round.
    let mut edit_total = Duration::ZERO;
    let mut edit_max = Duration::ZERO;
    for e in 0..edits {
        let (proc_name, body) = edited_body(&source, e)?;
        let mut req = json::Object::new();
        req.set("id", Json::Str(format!("e{e}")));
        req.set("op", Json::Str("update".to_owned()));
        req.set("proc", Json::Str(proc_name.clone()));
        req.set("body", Json::Str(body));
        let t = Instant::now();
        let reply = d.request(&Json::Object(req).to_string())?;
        if !reply.contains("\"ok\":true") {
            return Err(format!("edit round {e} rejected: {reply}"));
        }
        let reread = d.request(&format!(
            r#"{{"id": "e{e}r", "op": "constants", "proc": "{proc_name}"}}"#
        ))?;
        if !reread.contains("\"ok\":true") {
            return Err(format!("post-edit read {e} failed: {reread}"));
        }
        let dt = t.elapsed();
        edit_total += dt;
        edit_max = edit_max.max(dt);
    }

    // The read set: `constants` over a rotating window of procedures.
    let read_reqs: Vec<(String, String)> = (0..reads)
        .map(|i| {
            let p = 1 + i % (procs - 1);
            (
                format!("r{i}"),
                format!(r#"{{"id": "r{i}", "op": "constants", "proc": "p{p}"}}"#),
            )
        })
        .collect();

    // Warm-up, untimed: one read settles the snapshot's lazy
    // per-publish state (the substitution total and the name index) so
    // neither timed pass pays it.
    let warm = d.request(&read_reqs[0].1)?;
    if !warm.contains("\"ok\":true") {
        return Err(format!("warm-up read failed: {warm}"));
    }

    // Unbatched pass: one request per frame, reply awaited before the
    // next send — the way an unbatched client actually drives the
    // daemon. Best of `reps` passes; parsing happens off the clock.
    let reps = env_usize("IPCP_BENCH_REPS", 3).max(1);
    let mut raw_unbatched: Vec<String> = Vec::new();
    let mut unbatched_wall = Duration::MAX;
    for _ in 0..reps {
        let mut raw: Vec<String> = Vec::with_capacity(reads);
        let t0 = Instant::now();
        for (_, line) in &read_reqs {
            raw.push(d.request(line)?);
        }
        unbatched_wall = unbatched_wall.min(t0.elapsed());
        raw_unbatched = raw;
    }
    let mut unbatched: Vec<(String, String)> = Vec::with_capacity(reads);
    for reply in raw_unbatched {
        unbatched.push((reply_id(&reply)?, reply));
    }

    // Batched pass: the same reads packed into `batch` frames, one
    // round trip per frame. Best of `reps`; the reply frames are
    // exploded into per-item payloads off the clock.
    let frames: Vec<String> = read_reqs
        .chunks(batch)
        .enumerate()
        .map(|(f, chunk)| {
            let items: Vec<String> = chunk.iter().map(|(_, l)| l.clone()).collect();
            format!(
                r#"{{"id": "B{f}", "op": "batch", "requests": [{}]}}"#,
                items.join(", ")
            )
        })
        .collect();
    let mut raw_batched: Vec<String> = Vec::new();
    let mut batched_wall = Duration::MAX;
    for _ in 0..reps {
        let mut raw: Vec<String> = Vec::with_capacity(frames.len());
        let t1 = Instant::now();
        for frame in &frames {
            raw.push(d.request(frame)?);
        }
        batched_wall = batched_wall.min(t1.elapsed());
        raw_batched = raw;
    }
    let mut batched: Vec<(String, String)> = Vec::with_capacity(reads);
    for reply in &raw_batched {
        let parsed = json::parse(reply).map_err(|e| format!("bad batch reply: {e}"))?;
        let results = parsed
            .as_object()
            .and_then(|o| o.get("results"))
            .and_then(Json::as_array)
            .ok_or_else(|| format!("batch reply has no results: {reply}"))?;
        for item in results {
            let text = item.to_string();
            batched.push((reply_id(&text)?, text));
        }
    }

    // In-cell identity: the batched and unbatched passes answered the
    // same requests against the same warm state — every per-id payload
    // must be byte-identical.
    let mut by_id: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
    for (id, text) in &unbatched {
        by_id.insert(id, text);
    }
    let mut identical_in_cell = batched.len() == unbatched.len();
    for (id, text) in &batched {
        if by_id.get(id.as_str()) != Some(&text.as_str()) {
            identical_in_cell = false;
            failures.push(format!(
                "tier {tier} workers={workers}: batched reply for {id} diverges from unbatched"
            ));
            break;
        }
    }

    // Cross-cell digest: the ordered read transcript plus a final
    // whole-program constants report. Every workers count must match.
    let mut hasher = Fnv128::new();
    let mut sorted: Vec<&(String, String)> = unbatched.iter().collect();
    sorted.sort();
    for (id, text) in sorted {
        hasher.write(id.as_bytes());
        hasher.write(text.as_bytes());
    }
    let full = d.request(r#"{"id": "full", "op": "constants"}"#)?;
    if !full.contains("\"ok\":true") {
        return Err(format!("final whole-program constants failed: {full}"));
    }
    hasher.write(full.as_bytes());
    let digest = format!("{:032x}", hasher.finish());

    d.shutdown()?;
    let _ = std::fs::remove_file(&sock);

    let per_read = |wall: Duration| wall.as_micros() / reads as u128;
    let unbatched_read_us = per_read(unbatched_wall).max(1);
    let batched_read_us = per_read(batched_wall).max(1);
    Ok(CellRow {
        cold_boot_ms: boot.as_millis(),
        edit_ms: if edits == 0 {
            0
        } else {
            edit_total.as_millis() / edits as u128
        },
        edit_max_ms: edit_max.as_millis(),
        unbatched_read_us,
        batched_read_us,
        batch_speedup: unbatched_read_us as f64 / batched_read_us as f64,
        identical_in_cell,
        digest,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tiers = tiers();
    if tiers.is_empty() {
        return Err("IPCP_SERVE_TIERS selected no known tier (have: 1k, 10k, 100k)".into());
    }
    let sweep = worker_sweep();
    let max_edit_ms = std::env::var("IPCP_SERVE_MAX_EDIT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u128>().ok());
    let min_speedup = env_f64("IPCP_SERVE_MIN_BATCH_SPEEDUP", 2.0);

    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:<6} {:>7} {:>9} {:>8} {:>10} {:>12} {:>10} {:>8}",
        "tier", "workers", "boot_ms", "edit_ms", "edit_max", "unbatch_us", "batch_us", "speedup"
    );
    for &(tier, spec_str) in &tiers {
        let spec = ScaleSpec::parse(spec_str)?;
        let dir = std::env::temp_dir();
        let program = dir.join(format!("ipcp_serve_bench_{tier}.ft"));
        std::fs::write(&program, generate_scale(&spec))?;
        let n_procs = spec.procs;

        let mut digests: Vec<(usize, String)> = Vec::new();
        let mut cell_rows: Vec<(usize, CellRow)> = Vec::new();
        for &workers in &sweep {
            let cell = run_cell(tier, spec_str, workers, &program, &mut failures)
                .map_err(|e| format!("tier {tier} workers={workers}: {e}"))?;
            println!(
                "{:<6} {:>7} {:>9} {:>8} {:>10} {:>12} {:>10} {:>8.2}",
                tier,
                workers,
                cell.cold_boot_ms,
                cell.edit_ms,
                cell.edit_max_ms,
                cell.unbatched_read_us,
                cell.batched_read_us,
                cell.batch_speedup,
            );
            if let Some(limit) = max_edit_ms {
                if cell.edit_max_ms > limit {
                    failures.push(format!(
                        "tier {tier} workers={workers}: edit round took {} ms, ceiling {limit} ms",
                        cell.edit_max_ms
                    ));
                }
            }
            if tier == "1k" && cell.batch_speedup < min_speedup {
                failures.push(format!(
                    "tier {tier} workers={workers}: batch speedup {:.2}x below floor {min_speedup}x",
                    cell.batch_speedup
                ));
            }
            digests.push((workers, cell.digest.clone()));
            cell_rows.push((workers, cell));
        }
        let _ = std::fs::remove_file(&program);

        // The identity contract across worker counts: every cell
        // replayed the same session and must have produced the same
        // transcript digest.
        let cross_identical = digests.windows(2).all(|w| w[0].1 == w[1].1);
        if !cross_identical {
            failures.push(format!("tier {tier}: worker counts diverged: {digests:?}"));
        }
        for (workers, cell) in &cell_rows {
            let identical = cross_identical && cell.identical_in_cell;
            rows.push(format!(
                concat!(
                    "    {{\"program\": \"serve-{t}\", \"tier\": \"{t}\", \"spec\": \"{s}\", ",
                    "\"jobs\": {w}, \"n_procs\": {n}, \"cold_boot_ms\": {boot}, ",
                    "\"edit_ms\": {edit}, \"edit_max_ms\": {emax}, ",
                    "\"unbatched_read_us\": {ub}, \"batched_read_us\": {b}, ",
                    "\"batch_speedup\": {sp:.2}, \"identical\": {id}}}"
                ),
                t = tier,
                s = spec_str,
                w = workers,
                n = n_procs,
                boot = cell.cold_boot_ms,
                edit = cell.edit_ms,
                emax = cell.edit_max_ms,
                ub = cell.unbatched_read_us,
                b = cell.batched_read_us,
                sp = cell.batch_speedup,
                id = identical,
            ));
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs_list = sweep
        .iter()
        .map(|j| j.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json_text = format!(
        "{{\n  \"jobs\": [{jobs_list}],\n  \"cores\": {cores},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json_text)?;
    println!("wrote BENCH_serve.json (workers=[{jobs_list}], cores={cores})");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        return Err(format!("{} serve gate failure(s)", failures.len()).into());
    }
    Ok(())
}
