//! Regenerates Table 3: the most precise jump function vs other
//! propagation techniques.

use ipcp_bench::{table3_rows, tables::render};

fn main() {
    let rows = table3_rows();
    println!("Table 3: Comparison of the polynomial jump function with other techniques.\n");
    let text = render(
        &[
            "Program",
            "Poly w/o MOD",
            "Poly w/ MOD",
            "Complete",
            "Intraproc only",
        ],
        &rows,
        |r| {
            vec![
                r.name.to_string(),
                r.poly_nomod.to_string(),
                r.poly_mod.to_string(),
                r.complete.to_string(),
                r.intra_only.to_string(),
            ]
        },
    );
    print!("{text}");
}
