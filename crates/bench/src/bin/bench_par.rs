//! Measures the `--jobs` speedup of the per-procedure phases on
//! generated workloads and verifies the determinism contract along the
//! way: every run is compared bit-for-bit against the sequential result
//! before its time is reported.
//!
//! Writes `BENCH_par.json` into the current directory.

use ipcp::{Analysis, Config};
use ipcp_suite::{generate, GenConfig};
use std::time::{Duration, Instant};

/// One generated workload.
struct Workload {
    name: &'static str,
    gen: GenConfig,
    seed: u64,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "wide",
        gen: GenConfig {
            n_procs: 160,
            n_globals: 6,
            stmts_per_proc: 24,
            max_depth: 2,
        },
        seed: 11,
    },
    Workload {
        name: "deep",
        gen: GenConfig {
            n_procs: 48,
            n_globals: 8,
            stmts_per_proc: 64,
            max_depth: 4,
        },
        seed: 23,
    },
    Workload {
        name: "mixed",
        gen: GenConfig {
            n_procs: 96,
            n_globals: 10,
            stmts_per_proc: 40,
            max_depth: 3,
        },
        seed: 37,
    },
];

/// Repetitions per configuration: best-of-5 by default, overridable via
/// `IPCP_BENCH_REPS` (the CI identity gate runs with a low count — it
/// cares about `identical`, not stable timings).
fn reps() -> u32 {
    std::env::var("IPCP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Best-of-[`reps`] wall time for one configuration, returning the last
/// analysis so the caller can compare results across configurations.
fn time_analysis(mcfg: &ipcp_ir::cfg::ModuleCfg, config: &Config) -> (Duration, Analysis) {
    let mut best = Duration::MAX;
    let mut last = Analysis::run(mcfg, config);
    for _ in 0..reps() {
        let t0 = Instant::now();
        last = Analysis::run(mcfg, config);
        best = best.min(t0.elapsed());
    }
    (best, last)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let par_jobs = Config::default().effective_jobs().max(2);
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>8} {:>6}",
        "program", "procs", "seq_us", "par_us", "speedup", "util"
    );
    for w in WORKLOADS {
        let src = generate(&w.gen, w.seed);
        let module = ipcp_ir::parse_and_resolve(&src)
            .map_err(|d| format!("generated program failed to parse: {d:?}"))?;
        let mcfg = ipcp_ir::lower_module(&module);

        let seq_cfg = Config::default().with_jobs(1);
        let par_cfg = Config::default().with_jobs(par_jobs);
        let (seq_t, seq_a) = time_analysis(&mcfg, &seq_cfg);
        let (par_t, par_a) = time_analysis(&mcfg, &par_cfg);

        // The determinism contract: the parallel schedule must not be
        // observable in any output the analysis reports.
        if par_a.vals != seq_a.vals
            || par_a.health != seq_a.health
            || par_a.quarantined != seq_a.quarantined
        {
            return Err(format!(
                "jobs={par_jobs} diverged from jobs=1 on workload `{}`",
                w.name
            )
            .into());
        }

        let speedup = seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
        let util = par_a.timings.utilization();
        println!(
            "{:<8} {:>6} {:>10} {:>10} {:>7.2}x {:>5.0}%",
            w.name,
            w.gen.n_procs,
            seq_t.as_micros(),
            par_t.as_micros(),
            speedup,
            100.0 * util,
        );
        rows.push(format!(
            concat!(
                "    {{\"program\": \"{}\", \"n_procs\": {}, \"seq_us\": {}, ",
                "\"par_us\": {}, \"speedup\": {:.3}, \"utilization\": {:.3}, ",
                "\"identical\": true}}"
            ),
            w.name,
            w.gen.n_procs,
            seq_t.as_micros(),
            par_t.as_micros(),
            speedup,
            util,
        ));
    }

    let reps = reps();
    let json = format!(
        "{{\n  \"jobs\": {par_jobs},\n  \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_par.json", &json)?;
    println!("wrote BENCH_par.json (jobs={par_jobs}, best of {reps})");
    Ok(())
}
