//! Measures the `--jobs` speedup of the per-procedure phases on
//! generated workloads and verifies the determinism contract along the
//! way: every run is compared bit-for-bit against the sequential result
//! before its time is reported.
//!
//! Writes `BENCH_par.json` into the current directory.

use ipcp::{Analysis, Config};
use ipcp_suite::{generate, GenConfig};
use std::time::{Duration, Instant};

/// One generated workload.
struct Workload {
    name: &'static str,
    gen: GenConfig,
    seed: u64,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "wide",
        gen: GenConfig {
            n_procs: 160,
            n_globals: 6,
            stmts_per_proc: 24,
            max_depth: 2,
        },
        seed: 11,
    },
    Workload {
        name: "deep",
        gen: GenConfig {
            n_procs: 48,
            n_globals: 8,
            stmts_per_proc: 64,
            max_depth: 4,
        },
        seed: 23,
    },
    Workload {
        name: "mixed",
        gen: GenConfig {
            n_procs: 96,
            n_globals: 10,
            stmts_per_proc: 40,
            max_depth: 3,
        },
        seed: 37,
    },
];

/// Repetitions per configuration: best-of-5 by default, overridable via
/// `IPCP_BENCH_REPS` (the CI identity gate runs with a low count — it
/// cares about `identical`, not stable timings).
fn reps() -> u32 {
    std::env::var("IPCP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// The parallel job counts to sweep (each against the jobs=1 baseline):
/// `{2, 4}` by default, overridable via `IPCP_BENCH_JOBS` (comma list).
fn job_sweep() -> Vec<usize> {
    std::env::var("IPCP_BENCH_JOBS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&j| j >= 2)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4])
}

/// Physical parallelism actually available — recorded in the JSON so a
/// reader can tell a real speedup apart from a single-core container
/// (where jobs > 1 cannot beat jobs = 1 and only identity is meaningful).
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Best-of-[`reps`] wall time for one configuration, returning the last
/// analysis so the caller can compare results across configurations.
fn time_analysis(mcfg: &ipcp_ir::cfg::ModuleCfg, config: &Config) -> (Duration, Analysis) {
    let mut best = Duration::MAX;
    let mut last = Analysis::run(mcfg, config);
    for _ in 0..reps() {
        let t0 = Instant::now();
        last = Analysis::run(mcfg, config);
        best = best.min(t0.elapsed());
    }
    (best, last)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep = job_sweep();
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>6} {:>5} {:>10} {:>10} {:>8} {:>6}",
        "program", "procs", "jobs", "seq_us", "par_us", "speedup", "util"
    );
    for w in WORKLOADS {
        let src = generate(&w.gen, w.seed);
        let module = ipcp_ir::parse_and_resolve(&src)
            .map_err(|d| format!("generated program failed to parse: {d:?}"))?;
        let mcfg = ipcp_ir::lower_module(&module);

        let seq_cfg = Config::default().with_jobs(1);
        let (seq_t, seq_a) = time_analysis(&mcfg, &seq_cfg);
        for &jobs in &sweep {
            let par_cfg = Config::default().with_jobs(jobs);
            let (par_t, par_a) = time_analysis(&mcfg, &par_cfg);

            // The determinism contract: the parallel schedule must not be
            // observable in any output the analysis reports.
            if par_a.vals != seq_a.vals
                || par_a.health != seq_a.health
                || par_a.quarantined != seq_a.quarantined
            {
                return Err(
                    format!("jobs={jobs} diverged from jobs=1 on workload `{}`", w.name).into(),
                );
            }

            let speedup = seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
            let util = par_a.timings.utilization();
            println!(
                "{:<8} {:>6} {:>5} {:>10} {:>10} {:>7.2}x {:>5.0}%",
                w.name,
                w.gen.n_procs,
                jobs,
                seq_t.as_micros(),
                par_t.as_micros(),
                speedup,
                100.0 * util,
            );
            rows.push(format!(
                concat!(
                    "    {{\"program\": \"{}\", \"n_procs\": {}, \"jobs\": {}, ",
                    "\"seq_us\": {}, \"par_us\": {}, \"speedup\": {:.3}, ",
                    "\"utilization\": {:.3}, \"identical\": true}}"
                ),
                w.name,
                w.gen.n_procs,
                jobs,
                seq_t.as_micros(),
                par_t.as_micros(),
                speedup,
                util,
            ));
        }
    }

    let reps = reps();
    let cores = cores();
    let jobs_list = sweep
        .iter()
        .map(|j| j.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"jobs\": [{jobs_list}],\n  \"cores\": {cores},\n  \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_par.json", &json)?;
    println!("wrote BENCH_par.json (jobs=[{jobs_list}], cores={cores}, best of {reps})");
    Ok(())
}
