//! Regenerates Table 1: characteristics of the program test suite.

use ipcp_bench::{table1_rows, tables::render};

fn main() {
    let rows = table1_rows();
    println!("Table 1: Characteristics of the program test suite.\n");
    let text = render(
        &[
            "Program",
            "Lines",
            "Procs",
            "Mean lines/proc",
            "Median lines/proc",
        ],
        &rows,
        |r| {
            vec![
                r.name.clone(),
                r.lines.to_string(),
                r.procs.to_string(),
                r.mean_lines.to_string(),
                r.median_lines.to_string(),
            ]
        },
    );
    print!("{text}");
}
