//! Prints the §3.1.5 cost census for every suite program under the
//! default configuration — the quantities behind the paper's cost
//! arguments (jump-function shapes, support sizes, solver work).

use ipcp::serve::store::{decode, encode};
use ipcp::serve::{ProgramModel, ServeEngine, SummaryCache};
use ipcp::{Analysis, Config, CostReport, PhaseReport};
use ipcp_suite::PROGRAMS;

/// Cold misses, warm-rerun hits, hit/miss split after a one-procedure
/// edit, degraded request count — plus the persistence leg: records
/// recovered from a snapshot, a restarted daemon's persisted startup
/// hits, and the discard label a corrupted snapshot reports.
#[allow(clippy::type_complexity)]
fn serve_cache_row(src: &str) -> Result<(u64, u64, u64, u64, u64, u64, u64, &'static str), String> {
    let mut engine = ServeEngine::new(src, &Config::default()).map_err(|e| e.to_string())?;
    let cold = engine.last_outcome().misses;
    let warm = engine.analyze(None).map_err(|e| e.to_string())?.hits;
    let model = ProgramModel::from_source(&engine.source()).map_err(|e| e.to_string())?;
    let name = model
        .proc_names()
        .last()
        .ok_or_else(|| "program has no procedures".to_string())?
        .to_string();
    let text = model
        .proc_text(&name)
        .ok_or_else(|| format!("no text for `{name}`"))?;
    let brace = text
        .rfind('}')
        .ok_or_else(|| format!("`{name}` has no body"))?;
    let fragment = format!("{}    print 0;\n{}", &text[..brace], &text[brace..]);
    let edited = engine.update(&name, &fragment).map_err(|e| e.to_string())?;
    let (cfp, sfp) = engine.fingerprints();
    let bytes = encode(engine.cache(), cfp, sfp);
    let entries = decode(&bytes, cfp, sfp).map_err(|r| r.to_string())?;
    let recovered = entries.len() as u64;
    let cache = SummaryCache::restore(entries, SummaryCache::DEFAULT_CAPACITY);
    let restarted = ServeEngine::new_with_cache(&engine.source(), &Config::default(), cache)
        .map_err(|e| e.to_string())?;
    let persisted = restarted.last_outcome().persisted_hits;
    let mut bad = bytes;
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    let discarded = match decode(&bad, cfp, sfp) {
        Err(reason) => reason.label(),
        Ok(_) => "accepted?!",
    };
    Ok((
        cold,
        warm,
        edited.hits,
        edited.misses,
        engine.stats().degraded_requests,
        recovered,
        persisted,
        discarded,
    ))
}

fn main() {
    println!(
        "{:<10} {:>5} {:>6} {:>6} {:>6} {:>5} {:>8} {:>7} {:>6} {:>4} {:>4}",
        "program", "sites", "jf", "const", "pass", "⊥", "support", "meets", "ssa", "deg", "quar"
    );
    let mut totals = CostReport::default();
    for p in PROGRAMS {
        let mcfg = p.module_cfg();
        let analysis = Analysis::run(&mcfg, &Config::default());
        let r = CostReport::collect(&mcfg, &analysis);
        println!(
            "{:<10} {:>5} {:>6} {:>6} {:>6} {:>5} {:>8.2} {:>7} {:>6} {:>4} {:>4}",
            p.name,
            r.call_sites,
            r.jf_total(),
            r.jf_const,
            r.jf_pass_through,
            r.jf_bottom,
            r.mean_support(),
            r.solver_meets,
            r.ssa_values,
            r.degradations,
            r.quarantined,
        );
        totals.call_sites += r.call_sites;
        totals.jf_const += r.jf_const;
        totals.jf_pass_through += r.jf_pass_through;
        totals.jf_polynomial += r.jf_polynomial;
        totals.jf_bottom += r.jf_bottom;
        totals.total_support += r.total_support;
        totals.solver_meets += r.solver_meets;
        totals.ssa_values += r.ssa_values;
        totals.degradations += r.degradations;
        totals.quarantined += r.quarantined;
    }
    println!(
        "{:<10} {:>5} {:>6} {:>6} {:>6} {:>5} {:>8.2} {:>7} {:>6} {:>4} {:>4}",
        "TOTAL",
        totals.call_sites,
        totals.jf_total(),
        totals.jf_const,
        totals.jf_pass_through,
        totals.jf_bottom,
        totals.mean_support(),
        totals.solver_meets,
        totals.ssa_values,
        totals.degradations,
        totals.quarantined,
    );
    println!();
    println!("§3.1.5's observation holds: mean support ≤ 1 — lowering one value");
    println!("re-evaluates at most one jump function per use, so propagation cost");
    println!("is dominated by the intraprocedural (SSA/symbolic) work.");

    println!();
    println!("Serve cache: summary reuse across a warm daemon (ipcc serve)");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>9} {:>7} {:>7} {:>5} {:>8} {:>12}",
        "program",
        "cold_miss",
        "warm_hit",
        "edit_hit",
        "edit_miss",
        "reuse%",
        "deg_req",
        "recov",
        "pers_hit",
        "discard"
    );
    for p in PROGRAMS {
        match serve_cache_row(p.source) {
            Ok((cold, warm, ehit, emiss, deg, recov, pers, discard)) => {
                let reuse = if ehit + emiss > 0 {
                    100.0 * ehit as f64 / (ehit + emiss) as f64
                } else {
                    0.0
                };
                println!(
                    "{:<10} {:>9} {:>8} {:>8} {:>9} {:>6.0}% {:>7} {:>5} {:>8} {:>12}",
                    p.name, cold, warm, ehit, emiss, reuse, deg, recov, pers, discard
                );
            }
            Err(e) => println!("{:<10} serve row unavailable: {e}", p.name),
        }
    }

    let auto_jobs = Config::default().effective_jobs();
    println!();
    println!("Per-stage wall time, sequential vs --jobs {auto_jobs} (machine-dependent)");
    println!("{}", PhaseReport::header());
    for p in PROGRAMS {
        let mcfg = p.module_cfg();
        for jobs in [1, auto_jobs] {
            let t = Analysis::run(&mcfg, &Config::default().with_jobs(jobs)).timings;
            println!("{}", PhaseReport::collect(&t).render_row(p.name));
            if auto_jobs == 1 {
                break;
            }
        }
    }
}
