//! Per-procedure fault quarantine.
//!
//! The 1986 framework is compositional: jump functions, MOD/REF
//! summaries, and entry lattices are computed *per procedure* and only
//! meet at call edges. That structure makes faults containable — if one
//! procedure's slice of one phase panics (a bug) or exhausts its budget
//! slice, only that procedure needs to degrade: its forward and return
//! jump functions drop to ⊥, its MOD/REF summary widens to "touches
//! everything visible", and every other procedure keeps full precision.
//!
//! [`run_unit`] is the containment boundary: it runs one procedure's unit
//! of work under `catch_unwind` (when `config.quarantine` is on), fires
//! the deterministic [`PanicInjection`](crate::config::PanicInjection)
//! test hook, and suppresses the default panic-hook backtrace for caught
//! panics so quarantined units don't spray stderr.

use crate::config::{Config, Stage};
use crate::pipeline::UnitError;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent while a
/// quarantined unit is running on the current thread and delegates to the
/// previous hook otherwise.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fires the configured panic injection if it names this (stage,
/// procedure) unit. Crate-visible so the solver can fire it per
/// procedure *re-evaluation* (its quarantine boundary is the SCC unit,
/// not the procedure, but the injection hook still addresses procedures).
pub(crate) fn maybe_inject(config: &Config, stage: Stage, proc_index: usize) {
    if let Some(pi) = config.panic_injection {
        if pi.stage == stage && pi.proc == proc_index {
            panic!(
                "injected panic ({} stage, procedure #{proc_index})",
                stage.label()
            );
        }
    }
}

/// Runs one procedure's unit of work for `stage` under quarantine.
///
/// With `config.quarantine` on (the default) a panic inside `f` is caught
/// and returned as a typed [`UnitError`] naming the stage, the unit
/// index, and the panic message — the caller then degrades *only* this
/// procedure. With quarantine off, panics propagate (useful for
/// debugging with a backtrace). The injected-panic test hook fires inside
/// the protected region either way, so turning quarantine off converts an
/// injected fault into a real crash, as documented.
pub fn run_unit<T>(
    config: &Config,
    stage: Stage,
    proc_index: usize,
    f: impl FnOnce() -> T,
) -> Result<T, UnitError> {
    if !config.quarantine {
        maybe_inject(config, stage, proc_index);
        return Ok(f());
    }
    quiet_catch(|| {
        maybe_inject(config, stage, proc_index);
        f()
    })
    .map_err(|msg| UnitError::new(stage, proc_index, msg))
}

/// Runs `f` under `catch_unwind` with the backtrace-suppressing hook —
/// the raw containment primitive, also used by the `ipcc reduce` panic
/// oracle to probe candidate programs without spamming stderr.
pub fn quiet_catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    SUPPRESS.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS.with(|s| s.set(false));
    result.map_err(panic_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_units_pass_through() {
        let config = Config::default();
        assert_eq!(run_unit(&config, Stage::Jump, 0, || 41 + 1), Ok(42));
    }

    #[test]
    fn panics_are_contained_with_a_typed_error() {
        let config = Config::default();
        let r = run_unit(&config, Stage::Jump, 0, || -> i64 { panic!("boom") });
        assert_eq!(r, Err(UnitError::new(Stage::Jump, 0, "boom")));
        // The thread is still healthy: later units run normally.
        assert_eq!(run_unit(&config, Stage::Jump, 1, || 7), Ok(7));
    }

    #[test]
    fn injection_fires_only_on_the_named_unit() {
        let config = Config::default().with_panic(Stage::RetJump, 2);
        assert!(run_unit(&config, Stage::RetJump, 1, || ()).is_ok());
        assert!(run_unit(&config, Stage::Jump, 2, || ()).is_ok());
        let r = run_unit(&config, Stage::RetJump, 2, || ());
        let e = r.expect_err("injection must fire");
        assert_eq!(e.stage, Stage::RetJump);
        assert_eq!(e.unit, 2);
        assert!(e.message.contains("injected panic"), "{e}");
        let shown = e.to_string();
        assert!(shown.contains("retjump"), "{shown}");
        assert!(shown.contains("#2"), "{shown}");
    }

    #[test]
    fn formatted_panic_messages_survive() {
        let r = quiet_catch(|| -> () { panic!("value was {}", 13) });
        assert_eq!(r, Err("value was 13".to_string()));
    }
}
