//! Analysis configuration: which jump function to use and which auxiliary
//! information to consult — the experimental axes of the study — plus the
//! resource-governance knobs ([`AnalysisLimits`], [`FaultInjection`]) that
//! bound every analysis stage. See `docs/ROBUSTNESS.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// The four forward jump-function implementations compared by the paper
/// (§3.1), in increasing order of power. The set of constants each
/// propagates is a subset of what the next one propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JumpFnKind {
    /// §3.1.1 — the actual is a syntactic integer literal at the call
    /// site; everything else (including constant globals, which are passed
    /// implicitly) is ⊥. Propagates constants along single call-graph
    /// edges only.
    Literal,
    /// §3.1.2 — the actual's value is discovered by intraprocedural
    /// constant propagation / value numbering (`gcp(y, s)`), ignoring
    /// incoming formal values. Still single-edge, but sees computed
    /// constants and constant globals.
    IntraproceduralConstant,
    /// §3.1.3 — additionally, a formal parameter passed unmodified through
    /// the procedure body is transmitted symbolically, so constants flow
    /// along arbitrary-length call paths. The paper's recommendation.
    PassThrough,
    /// §3.1.4 — the actual is any polynomial function of the caller's
    /// entry values. The most powerful (and most expensive) model.
    Polynomial,
}

impl JumpFnKind {
    /// All four kinds, weakest first.
    pub const ALL: [JumpFnKind; 4] = [
        JumpFnKind::Literal,
        JumpFnKind::IntraproceduralConstant,
        JumpFnKind::PassThrough,
        JumpFnKind::Polynomial,
    ];

    /// Short column label used by the table harnesses.
    pub fn label(self) -> &'static str {
        match self {
            JumpFnKind::Literal => "literal",
            JumpFnKind::IntraproceduralConstant => "intraprocedural",
            JumpFnKind::PassThrough => "pass-through",
            JumpFnKind::Polynomial => "polynomial",
        }
    }
}

impl fmt::Display for JumpFnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysis stages a resource budget (or injected fault) can affect.
///
/// Each stage has its own degradation response — see `docs/ROBUSTNESS.md`
/// for the ladder. The same enum labels [`FaultInjection`] trip points and
/// recorded degradation events, so a fault at stage `s` always surfaces as
/// an event at stage `s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-procedure MOD/REF direct-effects collection.
    ModRef,
    /// Forward jump-function construction (including the per-procedure
    /// symbolic evaluation that feeds it).
    Jump,
    /// Return jump-function construction.
    RetJump,
    /// The interprocedural VAL worklist solver.
    Solver,
    /// The binding-multigraph solver.
    Binding,
    /// Constant-driven procedure cloning.
    Cloning,
    /// Leaf-call integration (inlining).
    Inline,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::ModRef,
        Stage::Jump,
        Stage::RetJump,
        Stage::Solver,
        Stage::Binding,
        Stage::Cloning,
        Stage::Inline,
    ];

    /// Stable lowercase label (used in event details and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Stage::ModRef => "modref",
            Stage::Jump => "jump",
            Stage::RetJump => "retjump",
            Stage::Solver => "solver",
            Stage::Binding => "binding",
            Stage::Cloning => "cloning",
            Stage::Inline => "inline",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-stage resource budgets.
///
/// The defaults are deliberately generous: on the builtin suite (and any
/// program of comparable size) no budget is ever reached, so results are
/// bit-identical to an unbounded analysis. When a budget *is* exhausted
/// the affected stage degrades to a sound approximation instead of
/// diverging — see `docs/ROBUSTNESS.md` for the per-stage ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisLimits {
    /// Worklist iterations (procedure re-evaluations) the VAL solver may
    /// perform before forcing the remaining lattice values to ⊥.
    pub max_solver_iterations: u64,
    /// Symbolic-evaluation transfer steps allowed per procedure while
    /// building the inputs to jump functions.
    pub max_symbolic_steps: u64,
    /// Largest polynomial (in terms) a jump function may carry before it
    /// degrades down the jump-function ladder.
    pub max_poly_terms: usize,
    /// Largest total degree a jump-function polynomial may carry.
    pub max_poly_degree: u32,
    /// Largest support set (number of distinct entry slots) a single jump
    /// function may depend on.
    pub max_support: usize,
    /// Clones `clone_by_constants` may create in one round.
    pub max_clones: usize,
    /// Statement-count ceiling for leaf inlining.
    pub max_inline_statements: usize,
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits {
            max_solver_iterations: 1_000_000,
            max_symbolic_steps: 10_000_000,
            // The ssa polynomial ring already refuses to build anything
            // larger than this, so the default cannot bite.
            max_poly_terms: ipcp_ssa::poly::Poly::MAX_TERMS,
            max_poly_degree: ipcp_ssa::poly::Poly::MAX_DEGREE,
            max_support: 64,
            max_clones: 64,
            max_inline_statements: 100_000,
        }
    }
}

impl AnalysisLimits {
    /// Adversarially small budgets, for robustness tests: every stage is
    /// likely to degrade on any non-trivial program, and the pipeline must
    /// still terminate with sound (if weak) results.
    pub fn tiny() -> AnalysisLimits {
        AnalysisLimits {
            max_solver_iterations: 4,
            max_symbolic_steps: 16,
            max_poly_terms: 1,
            max_poly_degree: 1,
            max_support: 1,
            max_clones: 1,
            max_inline_statements: 1,
        }
    }
}

/// Deterministic fault injection: artificially exhausts the budget of one
/// stage at its `at`-th budget-counted operation (1-based).
///
/// This exists purely to test the degradation machinery: a trip behaves
/// exactly like the corresponding [`AnalysisLimits`] budget running out,
/// so tests can force each ladder rung deterministically without building
/// pathological inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInjection {
    /// Which stage to trip.
    pub stage: Stage,
    /// Trip on the `at`-th operation charged to that stage (1-based;
    /// `at = 1` trips immediately).
    pub at: u64,
}

/// A wall-clock deadline for the whole analysis.
///
/// Checked *cooperatively*: the solver loops test it once per iteration,
/// the symbolic evaluator every [`Deadline::CHECK_INTERVAL`] transfer
/// steps, and the cloning/inlining drivers once per operation. Expiry
/// therefore overshoots by at most one cooperative-check interval. On
/// expiry every in-flight stage degrades exactly as if its budget had run
/// out (a sound, possibly weaker result) and a `Deadline`-kind
/// degradation event is recorded — the pipeline never hangs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// How many symbolic-evaluation transfer steps may pass between two
    /// deadline checks (the finest-grained cooperative loop).
    pub const CHECK_INTERVAL: u64 = 1024;

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline { at: Instant::now() + d }
    }

    /// A deadline `ms` milliseconds from now (the `--deadline-ms` flag).
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// The raw instant, for callers that thread it into inner loops.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// Deterministic panic injection: panics inside the named per-procedure
/// unit of work, exercising the quarantine machinery end to end.
///
/// Unlike [`FaultInjection`] (which mimics a budget running out), this
/// mimics a *bug* — an unexpected panic in one procedure's slice of one
/// phase — and the contract is that only that procedure degrades.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanicInjection {
    /// Which per-procedure phase to panic in ([`Stage::ModRef`],
    /// [`Stage::Jump`], or [`Stage::RetJump`]).
    pub stage: Stage,
    /// Index of the procedure whose unit of work panics.
    pub proc: usize,
}

/// Full analysis configuration.
///
/// The default is the paper's recommended production setting: pass-through
/// jump functions, MOD information, return jump functions with the §3.2
/// evaluation limitation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Which forward jump function to construct.
    pub jump_fn: JumpFnKind,
    /// Use interprocedural MOD information at call sites (Table 3 compares
    /// `true` vs `false`; `false` makes every call kill every global and
    /// by-reference actual).
    pub use_mod: bool,
    /// Generate and use return jump functions (Table 2's "Using" vs "No
    /// Return Jump Functions").
    pub use_return_jfs: bool,
    /// Extension (off in the paper): compose return jump functions
    /// symbolically with the actual-argument polynomials instead of the
    /// §3.2 limitation ("return jump functions that depend on parameters
    /// to the calling procedure can never be evaluated as constant").
    pub compose_return_jfs: bool,
    /// Extension (off by default): treat globals as holding their
    /// FT-defined initial value `0` on entry to `main`, instead of the
    /// FORTRAN "uninitialized COMMON" assumption (⊥).
    pub assume_zero_globals: bool,
    /// Extension (off in the paper, anticipated by its §4.2 remark on
    /// gated single-assignment form): gate jump-function generation with
    /// a per-procedure SCCP pass, so phi inputs on provably dead paths
    /// and call sites in provably dead blocks are ignored. Subsumes most
    /// of what "complete propagation" buys, without iterating DCE.
    pub gated_jump_fns: bool,
    /// Build *pruned* SSA (liveness-filtered phi placement) instead of
    /// minimal SSA. Pure engineering knob: results are identical (the
    /// pruned phis were unobservable), construction does less work on
    /// phi-heavy programs.
    pub pruned_ssa: bool,
    /// Resource budgets for every analysis stage. The defaults never bind
    /// on realistic inputs; tighten them to trade precision for bounded
    /// work.
    pub limits: AnalysisLimits,
    /// Test hook: deterministically exhaust one stage's budget. `None`
    /// (the default) means budgets only trip when genuinely exhausted.
    pub fault_injection: Option<FaultInjection>,
    /// Per-procedure fault quarantine. When on (the default), each
    /// per-procedure unit of work runs under `catch_unwind`; a panic
    /// degrades only that procedure to a sound worst case instead of
    /// crashing the pipeline. Turn off to let panics propagate (useful
    /// when debugging with a backtrace).
    pub quarantine: bool,
    /// Optional wall-clock deadline for the whole analysis. `None` (the
    /// default) means no time bound.
    pub deadline: Option<Deadline>,
    /// Test hook: panic inside one procedure's unit of work in one phase.
    /// `None` (the default) means no injected panics.
    pub panic_injection: Option<PanicInjection>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            jump_fn: JumpFnKind::PassThrough,
            use_mod: true,
            use_return_jfs: true,
            compose_return_jfs: false,
            assume_zero_globals: false,
            gated_jump_fns: false,
            pruned_ssa: false,
            limits: AnalysisLimits::default(),
            fault_injection: None,
            quarantine: true,
            deadline: None,
            panic_injection: None,
        }
    }
}

impl Config {
    /// The paper's strongest standard configuration (polynomial + MOD +
    /// return jump functions).
    pub fn polynomial() -> Config {
        Config {
            jump_fn: JumpFnKind::Polynomial,
            ..Config::default()
        }
    }

    /// Builder-style: set the jump-function kind.
    #[must_use]
    pub fn with_jump_fn(mut self, kind: JumpFnKind) -> Config {
        self.jump_fn = kind;
        self
    }

    /// Builder-style: toggle MOD information.
    #[must_use]
    pub fn with_mod(mut self, on: bool) -> Config {
        self.use_mod = on;
        self
    }

    /// Builder-style: toggle return jump functions.
    #[must_use]
    pub fn with_return_jfs(mut self, on: bool) -> Config {
        self.use_return_jfs = on;
        self
    }

    /// Builder-style: set the resource budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: AnalysisLimits) -> Config {
        self.limits = limits;
        self
    }

    /// Builder-style: arm a fault-injection trip point.
    #[must_use]
    pub fn with_fault(mut self, stage: Stage, at: u64) -> Config {
        self.fault_injection = Some(FaultInjection { stage, at });
        self
    }

    /// Builder-style: toggle per-procedure fault quarantine.
    #[must_use]
    pub fn with_quarantine(mut self, on: bool) -> Config {
        self.quarantine = on;
        self
    }

    /// Builder-style: set a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Config {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style: arm a panic-injection point.
    #[must_use]
    pub fn with_panic(mut self, stage: Stage, proc: usize) -> Config {
        self.panic_injection = Some(PanicInjection { stage, proc });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_ordered_weakest_first() {
        assert!(JumpFnKind::Literal < JumpFnKind::IntraproceduralConstant);
        assert!(JumpFnKind::IntraproceduralConstant < JumpFnKind::PassThrough);
        assert!(JumpFnKind::PassThrough < JumpFnKind::Polynomial);
        assert_eq!(JumpFnKind::ALL.len(), 4);
    }

    #[test]
    fn default_is_the_recommended_setting() {
        let c = Config::default();
        assert_eq!(c.jump_fn, JumpFnKind::PassThrough);
        assert!(c.use_mod);
        assert!(c.use_return_jfs);
        assert!(!c.compose_return_jfs);
    }

    #[test]
    fn builders_compose() {
        let c = Config::polynomial().with_mod(false).with_return_jfs(false);
        assert_eq!(c.jump_fn, JumpFnKind::Polynomial);
        assert!(!c.use_mod);
        assert!(!c.use_return_jfs);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            JumpFnKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn stage_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::ALL.len());
    }

    #[test]
    fn default_limits_are_generous_and_tiny_limits_are_not() {
        let d = AnalysisLimits::default();
        let t = AnalysisLimits::tiny();
        assert!(d.max_solver_iterations > 100_000);
        assert!(d.max_poly_terms >= ipcp_ssa::poly::Poly::MAX_TERMS);
        assert!(t.max_solver_iterations < d.max_solver_iterations);
        assert!(t.max_poly_terms < d.max_poly_terms);
    }

    #[test]
    fn fault_builder_arms_the_hook() {
        let c = Config::default().with_fault(Stage::Solver, 3);
        assert_eq!(
            c.fault_injection,
            Some(FaultInjection { stage: Stage::Solver, at: 3 })
        );
        assert_eq!(Config::default().fault_injection, None);
    }

    #[test]
    fn quarantine_is_on_by_default_and_toggles() {
        assert!(Config::default().quarantine);
        assert!(!Config::default().with_quarantine(false).quarantine);
    }

    #[test]
    fn panic_builder_arms_the_hook() {
        let c = Config::default().with_panic(Stage::Jump, 2);
        assert_eq!(
            c.panic_injection,
            Some(PanicInjection { stage: Stage::Jump, proc: 2 })
        );
        assert_eq!(Config::default().panic_injection, None);
    }

    #[test]
    fn deadlines_expire_and_far_deadlines_do_not() {
        let past = Deadline::after(Duration::from_secs(0));
        assert!(past.expired());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        // Deadline is Copy + Eq so Config stays Copy + Eq.
        let c = Config::default().with_deadline(far);
        assert_eq!(c.deadline, Some(far));
    }
}
