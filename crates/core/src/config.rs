//! Analysis configuration: which jump function to use and which auxiliary
//! information to consult — the experimental axes of the study.

use std::fmt;

/// The four forward jump-function implementations compared by the paper
/// (§3.1), in increasing order of power. The set of constants each
/// propagates is a subset of what the next one propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JumpFnKind {
    /// §3.1.1 — the actual is a syntactic integer literal at the call
    /// site; everything else (including constant globals, which are passed
    /// implicitly) is ⊥. Propagates constants along single call-graph
    /// edges only.
    Literal,
    /// §3.1.2 — the actual's value is discovered by intraprocedural
    /// constant propagation / value numbering (`gcp(y, s)`), ignoring
    /// incoming formal values. Still single-edge, but sees computed
    /// constants and constant globals.
    IntraproceduralConstant,
    /// §3.1.3 — additionally, a formal parameter passed unmodified through
    /// the procedure body is transmitted symbolically, so constants flow
    /// along arbitrary-length call paths. The paper's recommendation.
    PassThrough,
    /// §3.1.4 — the actual is any polynomial function of the caller's
    /// entry values. The most powerful (and most expensive) model.
    Polynomial,
}

impl JumpFnKind {
    /// All four kinds, weakest first.
    pub const ALL: [JumpFnKind; 4] = [
        JumpFnKind::Literal,
        JumpFnKind::IntraproceduralConstant,
        JumpFnKind::PassThrough,
        JumpFnKind::Polynomial,
    ];

    /// Short column label used by the table harnesses.
    pub fn label(self) -> &'static str {
        match self {
            JumpFnKind::Literal => "literal",
            JumpFnKind::IntraproceduralConstant => "intraprocedural",
            JumpFnKind::PassThrough => "pass-through",
            JumpFnKind::Polynomial => "polynomial",
        }
    }
}

impl fmt::Display for JumpFnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full analysis configuration.
///
/// The default is the paper's recommended production setting: pass-through
/// jump functions, MOD information, return jump functions with the §3.2
/// evaluation limitation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Which forward jump function to construct.
    pub jump_fn: JumpFnKind,
    /// Use interprocedural MOD information at call sites (Table 3 compares
    /// `true` vs `false`; `false` makes every call kill every global and
    /// by-reference actual).
    pub use_mod: bool,
    /// Generate and use return jump functions (Table 2's "Using" vs "No
    /// Return Jump Functions").
    pub use_return_jfs: bool,
    /// Extension (off in the paper): compose return jump functions
    /// symbolically with the actual-argument polynomials instead of the
    /// §3.2 limitation ("return jump functions that depend on parameters
    /// to the calling procedure can never be evaluated as constant").
    pub compose_return_jfs: bool,
    /// Extension (off by default): treat globals as holding their
    /// FT-defined initial value `0` on entry to `main`, instead of the
    /// FORTRAN "uninitialized COMMON" assumption (⊥).
    pub assume_zero_globals: bool,
    /// Extension (off in the paper, anticipated by its §4.2 remark on
    /// gated single-assignment form): gate jump-function generation with
    /// a per-procedure SCCP pass, so phi inputs on provably dead paths
    /// and call sites in provably dead blocks are ignored. Subsumes most
    /// of what "complete propagation" buys, without iterating DCE.
    pub gated_jump_fns: bool,
    /// Build *pruned* SSA (liveness-filtered phi placement) instead of
    /// minimal SSA. Pure engineering knob: results are identical (the
    /// pruned phis were unobservable), construction does less work on
    /// phi-heavy programs.
    pub pruned_ssa: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            jump_fn: JumpFnKind::PassThrough,
            use_mod: true,
            use_return_jfs: true,
            compose_return_jfs: false,
            assume_zero_globals: false,
            gated_jump_fns: false,
            pruned_ssa: false,
        }
    }
}

impl Config {
    /// The paper's strongest standard configuration (polynomial + MOD +
    /// return jump functions).
    pub fn polynomial() -> Config {
        Config {
            jump_fn: JumpFnKind::Polynomial,
            ..Config::default()
        }
    }

    /// Builder-style: set the jump-function kind.
    #[must_use]
    pub fn with_jump_fn(mut self, kind: JumpFnKind) -> Config {
        self.jump_fn = kind;
        self
    }

    /// Builder-style: toggle MOD information.
    #[must_use]
    pub fn with_mod(mut self, on: bool) -> Config {
        self.use_mod = on;
        self
    }

    /// Builder-style: toggle return jump functions.
    #[must_use]
    pub fn with_return_jfs(mut self, on: bool) -> Config {
        self.use_return_jfs = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_ordered_weakest_first() {
        assert!(JumpFnKind::Literal < JumpFnKind::IntraproceduralConstant);
        assert!(JumpFnKind::IntraproceduralConstant < JumpFnKind::PassThrough);
        assert!(JumpFnKind::PassThrough < JumpFnKind::Polynomial);
        assert_eq!(JumpFnKind::ALL.len(), 4);
    }

    #[test]
    fn default_is_the_recommended_setting() {
        let c = Config::default();
        assert_eq!(c.jump_fn, JumpFnKind::PassThrough);
        assert!(c.use_mod);
        assert!(c.use_return_jfs);
        assert!(!c.compose_return_jfs);
    }

    #[test]
    fn builders_compose() {
        let c = Config::polynomial().with_mod(false).with_return_jfs(false);
        assert_eq!(c.jump_fn, JumpFnKind::Polynomial);
        assert!(!c.use_mod);
        assert!(!c.use_return_jfs);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            JumpFnKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
