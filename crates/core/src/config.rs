//! Analysis configuration: which jump function to use and which auxiliary
//! information to consult — the experimental axes of the study — plus the
//! resource-governance knobs ([`AnalysisLimits`], [`FaultInjection`]) that
//! bound every analysis stage. See `docs/ROBUSTNESS.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// The four forward jump-function implementations compared by the paper
/// (§3.1), in increasing order of power. The set of constants each
/// propagates is a subset of what the next one propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JumpFnKind {
    /// §3.1.1 — the actual is a syntactic integer literal at the call
    /// site; everything else (including constant globals, which are passed
    /// implicitly) is ⊥. Propagates constants along single call-graph
    /// edges only.
    Literal,
    /// §3.1.2 — the actual's value is discovered by intraprocedural
    /// constant propagation / value numbering (`gcp(y, s)`), ignoring
    /// incoming formal values. Still single-edge, but sees computed
    /// constants and constant globals.
    IntraproceduralConstant,
    /// §3.1.3 — additionally, a formal parameter passed unmodified through
    /// the procedure body is transmitted symbolically, so constants flow
    /// along arbitrary-length call paths. The paper's recommendation.
    PassThrough,
    /// §3.1.4 — the actual is any polynomial function of the caller's
    /// entry values. The most powerful (and most expensive) model.
    Polynomial,
}

impl JumpFnKind {
    /// All four kinds, weakest first.
    pub const ALL: [JumpFnKind; 4] = [
        JumpFnKind::Literal,
        JumpFnKind::IntraproceduralConstant,
        JumpFnKind::PassThrough,
        JumpFnKind::Polynomial,
    ];

    /// Short column label used by the table harnesses.
    pub fn label(self) -> &'static str {
        match self {
            JumpFnKind::Literal => "literal",
            JumpFnKind::IntraproceduralConstant => "intraprocedural",
            JumpFnKind::PassThrough => "pass-through",
            JumpFnKind::Polynomial => "polynomial",
        }
    }
}

impl fmt::Display for JumpFnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The analysis stages a resource budget (or injected fault) can affect.
///
/// Each stage has its own degradation response — see `docs/ROBUSTNESS.md`
/// for the ladder. The same enum labels [`FaultInjection`] trip points and
/// recorded degradation events, so a fault at stage `s` always surfaces as
/// an event at stage `s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-procedure MOD/REF direct-effects collection.
    ModRef,
    /// Forward jump-function construction (including the per-procedure
    /// symbolic evaluation that feeds it).
    Jump,
    /// Return jump-function construction.
    RetJump,
    /// The interprocedural VAL worklist solver.
    Solver,
    /// The binding-multigraph solver.
    Binding,
    /// Constant-driven procedure cloning.
    Cloning,
    /// Leaf-call integration (inlining).
    Inline,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::ModRef,
        Stage::Jump,
        Stage::RetJump,
        Stage::Solver,
        Stage::Binding,
        Stage::Cloning,
        Stage::Inline,
    ];

    /// Stable lowercase label (used in event details and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Stage::ModRef => "modref",
            Stage::Jump => "jump",
            Stage::RetJump => "retjump",
            Stage::Solver => "solver",
            Stage::Binding => "binding",
            Stage::Cloning => "cloning",
            Stage::Inline => "inline",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-stage resource budgets.
///
/// The defaults are deliberately generous: on the builtin suite (and any
/// program of comparable size) no budget is ever reached, so results are
/// bit-identical to an unbounded analysis. When a budget *is* exhausted
/// the affected stage degrades to a sound approximation instead of
/// diverging — see `docs/ROBUSTNESS.md` for the per-stage ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisLimits {
    /// Worklist iterations (procedure re-evaluations) the VAL solver may
    /// perform before forcing the remaining lattice values to ⊥.
    pub max_solver_iterations: u64,
    /// Symbolic-evaluation transfer steps allowed per procedure while
    /// building the inputs to jump functions.
    pub max_symbolic_steps: u64,
    /// Largest polynomial (in terms) a jump function may carry before it
    /// degrades down the jump-function ladder.
    pub max_poly_terms: usize,
    /// Largest total degree a jump-function polynomial may carry.
    pub max_poly_degree: u32,
    /// Largest support set (number of distinct entry slots) a single jump
    /// function may depend on.
    pub max_support: usize,
    /// Clones `clone_by_constants` may create in one round.
    pub max_clones: usize,
    /// Statement-count ceiling for leaf inlining.
    pub max_inline_statements: usize,
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits {
            max_solver_iterations: 1_000_000,
            max_symbolic_steps: 10_000_000,
            // The ssa polynomial ring already refuses to build anything
            // larger than this, so the default cannot bite.
            max_poly_terms: ipcp_ssa::poly::Poly::MAX_TERMS,
            max_poly_degree: ipcp_ssa::poly::Poly::MAX_DEGREE,
            max_support: 64,
            max_clones: 64,
            max_inline_statements: 100_000,
        }
    }
}

impl AnalysisLimits {
    /// Adversarially small budgets, for robustness tests: every stage is
    /// likely to degrade on any non-trivial program, and the pipeline must
    /// still terminate with sound (if weak) results.
    pub fn tiny() -> AnalysisLimits {
        AnalysisLimits {
            max_solver_iterations: 4,
            max_symbolic_steps: 16,
            max_poly_terms: 1,
            max_poly_degree: 1,
            max_support: 1,
            max_clones: 1,
            max_inline_statements: 1,
        }
    }
}

/// Deterministic fault injection: artificially exhausts the budget of one
/// stage at its `at`-th budget-counted operation (1-based).
///
/// This exists purely to test the degradation machinery: a trip behaves
/// exactly like the corresponding [`AnalysisLimits`] budget running out,
/// so tests can force each ladder rung deterministically without building
/// pathological inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInjection {
    /// Which stage to trip.
    pub stage: Stage,
    /// Trip on the `at`-th operation charged to that stage (1-based;
    /// `at = 1` trips immediately).
    pub at: u64,
}

/// A wall-clock deadline for the whole analysis.
///
/// Checked *cooperatively*: the solver loops test it once per iteration,
/// the symbolic evaluator every [`Deadline::CHECK_INTERVAL`] transfer
/// steps, and the cloning/inlining drivers once per operation. Expiry
/// therefore overshoots by at most one cooperative-check interval. On
/// expiry every in-flight stage degrades exactly as if its budget had run
/// out (a sound, possibly weaker result) and a `Deadline`-kind
/// degradation event is recorded — the pipeline never hangs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// How many symbolic-evaluation transfer steps may pass between two
    /// deadline checks (the finest-grained cooperative loop).
    pub const CHECK_INTERVAL: u64 = 1024;

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline `ms` milliseconds from now (the `--deadline-ms` flag).
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// The raw instant, for callers that thread it into inner loops.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// Deterministic panic injection: panics inside the named per-procedure
/// unit of work, exercising the quarantine machinery end to end.
///
/// Unlike [`FaultInjection`] (which mimics a budget running out), this
/// mimics a *bug* — an unexpected panic in one procedure's slice of one
/// phase — and the contract is that only that procedure degrades.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanicInjection {
    /// Which per-procedure phase to panic in ([`Stage::ModRef`],
    /// [`Stage::Jump`], or [`Stage::RetJump`]).
    pub stage: Stage,
    /// Index of the procedure whose unit of work panics.
    pub proc: usize,
}

/// Full analysis configuration.
///
/// The default is the paper's recommended production setting: pass-through
/// jump functions, MOD information, return jump functions with the §3.2
/// evaluation limitation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Which forward jump function to construct.
    pub jump_fn: JumpFnKind,
    /// Use interprocedural MOD information at call sites (Table 3 compares
    /// `true` vs `false`; `false` makes every call kill every global and
    /// by-reference actual).
    pub use_mod: bool,
    /// Generate and use return jump functions (Table 2's "Using" vs "No
    /// Return Jump Functions").
    pub use_return_jfs: bool,
    /// Extension (off in the paper): compose return jump functions
    /// symbolically with the actual-argument polynomials instead of the
    /// §3.2 limitation ("return jump functions that depend on parameters
    /// to the calling procedure can never be evaluated as constant").
    pub compose_return_jfs: bool,
    /// Extension (off by default): treat globals as holding their
    /// FT-defined initial value `0` on entry to `main`, instead of the
    /// FORTRAN "uninitialized COMMON" assumption (⊥).
    pub assume_zero_globals: bool,
    /// Extension (off in the paper, anticipated by its §4.2 remark on
    /// gated single-assignment form): gate jump-function generation with
    /// a per-procedure SCCP pass, so phi inputs on provably dead paths
    /// and call sites in provably dead blocks are ignored. Subsumes most
    /// of what "complete propagation" buys, without iterating DCE.
    pub gated_jump_fns: bool,
    /// Build *pruned* SSA (liveness-filtered phi placement) instead of
    /// minimal SSA. Pure engineering knob: results are identical (the
    /// pruned phis were unobservable), construction does less work on
    /// phi-heavy programs.
    pub pruned_ssa: bool,
    /// Resource budgets for every analysis stage. The defaults never bind
    /// on realistic inputs; tighten them to trade precision for bounded
    /// work.
    pub limits: AnalysisLimits,
    /// Test hook: deterministically exhaust one stage's budget. `None`
    /// (the default) means budgets only trip when genuinely exhausted.
    pub fault_injection: Option<FaultInjection>,
    /// Per-procedure fault quarantine. When on (the default), each
    /// per-procedure unit of work runs under `catch_unwind`; a panic
    /// degrades only that procedure to a sound worst case instead of
    /// crashing the pipeline. Turn off to let panics propagate (useful
    /// when debugging with a backtrace).
    pub quarantine: bool,
    /// Optional wall-clock deadline for the whole analysis. `None` (the
    /// default) means no time bound.
    pub deadline: Option<Deadline>,
    /// Test hook: panic inside one procedure's unit of work in one phase.
    /// `None` (the default) means no injected panics.
    pub panic_injection: Option<PanicInjection>,
    /// Worker threads for the per-procedure phases (MOD/REF direct
    /// effects, SSA/symbolic + forward jump functions, return jump
    /// functions). `0` (the default) resolves automatically: the
    /// `IPCP_JOBS` environment variable when set, otherwise the machine's
    /// available parallelism. `1` is the sequential path. Results are
    /// bit-identical for every value — see `docs/ROBUSTNESS.md`.
    pub jobs: usize,
    /// Strict mode: any degradation event promotes to
    /// [`IpcpError::ResourceExhausted`](crate::IpcpError) in
    /// [`ipcp::analyze`](crate::analyze) (the `ipcc --strict` exit-code-3
    /// semantics). Off by default — degraded runs stay sound.
    pub strict: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            jump_fn: JumpFnKind::PassThrough,
            use_mod: true,
            use_return_jfs: true,
            compose_return_jfs: false,
            assume_zero_globals: false,
            gated_jump_fns: false,
            pruned_ssa: false,
            limits: AnalysisLimits::default(),
            fault_injection: None,
            quarantine: true,
            deadline: None,
            panic_injection: None,
            jobs: 0,
            strict: false,
        }
    }
}

impl Config {
    /// The paper's strongest standard configuration (polynomial + MOD +
    /// return jump functions).
    pub fn polynomial() -> Config {
        Config {
            jump_fn: JumpFnKind::Polynomial,
            ..Config::default()
        }
    }

    /// Builder-style: set the jump-function kind.
    #[must_use]
    pub fn with_jump_fn(mut self, kind: JumpFnKind) -> Config {
        self.jump_fn = kind;
        self
    }

    /// Builder-style: toggle MOD information.
    #[must_use]
    pub fn with_mod(mut self, on: bool) -> Config {
        self.use_mod = on;
        self
    }

    /// Builder-style: toggle return jump functions.
    #[must_use]
    pub fn with_return_jfs(mut self, on: bool) -> Config {
        self.use_return_jfs = on;
        self
    }

    /// Builder-style: set the resource budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: AnalysisLimits) -> Config {
        self.limits = limits;
        self
    }

    /// Builder-style: arm a fault-injection trip point.
    #[must_use]
    pub fn with_fault(mut self, stage: Stage, at: u64) -> Config {
        self.fault_injection = Some(FaultInjection { stage, at });
        self
    }

    /// Builder-style: toggle per-procedure fault quarantine.
    #[must_use]
    pub fn with_quarantine(mut self, on: bool) -> Config {
        self.quarantine = on;
        self
    }

    /// Builder-style: set a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Config {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style: arm a panic-injection point.
    #[must_use]
    pub fn with_panic(mut self, stage: Stage, proc: usize) -> Config {
        self.panic_injection = Some(PanicInjection { stage, proc });
        self
    }

    /// Builder-style: set the worker-thread count for the per-procedure
    /// phases (`0` = auto-detect, `1` = sequential).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Config {
        self.jobs = jobs;
        self
    }

    /// Builder-style: toggle strict mode (degradation → error).
    #[must_use]
    pub fn with_strict(mut self, on: bool) -> Config {
        self.strict = on;
        self
    }

    /// The worker-thread count this configuration actually runs with.
    ///
    /// `jobs == 0` resolves to the `IPCP_JOBS` environment variable when
    /// it parses as a positive integer, otherwise to the machine's
    /// available parallelism. Quarantine off forces `1`: the point of
    /// `--no-quarantine` is to let a panic propagate with a usable
    /// backtrace, which requires the single-threaded path.
    pub fn effective_jobs(&self) -> usize {
        if !self.quarantine {
            return 1;
        }
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Ok(v) = std::env::var("IPCP_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// A fluent, validating builder over every configuration axis.
    ///
    /// Unlike the `with_*` methods (which stay available and cannot
    /// fail), [`ConfigBuilder::build`] rejects incompatible combinations
    /// with [`IpcpError::InvalidConfig`](crate::IpcpError) instead of
    /// silently producing a configuration that cannot mean what was
    /// asked for.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::default(),
        }
    }

    /// A [`ConfigBuilder`] seeded from this configuration, for deriving
    /// a validated variant of an existing `Config`:
    ///
    /// ```
    /// use ipcp::Config;
    /// let base = Config::polynomial();
    /// let gated = base.rebuild().gated(true).build()?;
    /// assert_eq!(gated.jump_fn, base.jump_fn);
    /// # Ok::<(), ipcp::IpcpError>(())
    /// ```
    pub fn rebuild(self) -> ConfigBuilder {
        ConfigBuilder { config: self }
    }
}

/// Fluent builder for [`Config`], created by [`Config::builder`].
///
/// Every setter mirrors a `Config` field; [`ConfigBuilder::build`]
/// validates the combination and returns `Result<Config, IpcpError>`.
/// The struct-literal and `with_*` paths remain available for callers
/// that want infallible construction.
#[derive(Clone, Copy, Debug)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Which forward jump-function implementation to construct.
    #[must_use]
    pub fn jump_fn_impl(mut self, kind: JumpFnKind) -> Self {
        self.config.jump_fn = kind;
        self
    }

    /// Toggle interprocedural MOD information at call sites.
    #[must_use]
    pub fn mod_info(mut self, on: bool) -> Self {
        self.config.use_mod = on;
        self
    }

    /// Toggle return jump functions.
    #[must_use]
    pub fn return_jfs(mut self, on: bool) -> Self {
        self.config.use_return_jfs = on;
        self
    }

    /// Toggle symbolic composition of return jump functions (extension;
    /// requires return jump functions to be on).
    #[must_use]
    pub fn compose_return_jfs(mut self, on: bool) -> Self {
        self.config.compose_return_jfs = on;
        self
    }

    /// Toggle the zero-initialized-globals extension.
    #[must_use]
    pub fn zero_globals(mut self, on: bool) -> Self {
        self.config.assume_zero_globals = on;
        self
    }

    /// Toggle SCCP-gated jump-function generation.
    #[must_use]
    pub fn gated(mut self, on: bool) -> Self {
        self.config.gated_jump_fns = on;
        self
    }

    /// Toggle pruned (liveness-filtered) SSA construction.
    #[must_use]
    pub fn pruned_ssa(mut self, on: bool) -> Self {
        self.config.pruned_ssa = on;
        self
    }

    /// Set all resource budgets at once.
    #[must_use]
    pub fn limits(mut self, limits: AnalysisLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Cap the number of terms a jump-function polynomial may carry.
    #[must_use]
    pub fn max_poly_terms(mut self, n: usize) -> Self {
        self.config.limits.max_poly_terms = n;
        self
    }

    /// Cap the VAL solver's worklist iterations.
    #[must_use]
    pub fn max_solver_iterations(mut self, n: u64) -> Self {
        self.config.limits.max_solver_iterations = n;
        self
    }

    /// Set the worker-thread count (`0` = auto, `1` = sequential).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Set a wall-clock deadline `ms` milliseconds from now.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.config.deadline = Some(Deadline::after_ms(ms));
        self
    }

    /// Set an explicit wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Toggle strict mode (degradation → error in [`crate::analyze`]).
    #[must_use]
    pub fn strict(mut self, on: bool) -> Self {
        self.config.strict = on;
        self
    }

    /// Toggle per-procedure fault quarantine.
    #[must_use]
    pub fn quarantine(mut self, on: bool) -> Self {
        self.config.quarantine = on;
        self
    }

    /// Arm a deterministic fault-injection trip point.
    #[must_use]
    pub fn fault(mut self, stage: Stage, at: u64) -> Self {
        self.config.fault_injection = Some(FaultInjection { stage, at });
        self
    }

    /// Arm a deterministic panic-injection point.
    #[must_use]
    pub fn inject_panic(mut self, stage: Stage, proc: usize) -> Self {
        self.config.panic_injection = Some(PanicInjection { stage, proc });
        self
    }

    /// Validate the combination and produce the [`Config`].
    ///
    /// Rejected combinations:
    /// * `jobs > 1` with quarantine off — `--no-quarantine` exists to let
    ///   a panic propagate with a backtrace, which requires the
    ///   single-threaded path (a multi-worker run would abort the process
    ///   on the first worker panic instead);
    /// * composing return jump functions while return jump functions are
    ///   disabled — there would be nothing to compose;
    /// * a fault-injection trip point of `0` — trip points are 1-based.
    pub fn build(self) -> Result<Config, crate::IpcpError> {
        let c = self.config;
        if c.jobs > 1 && !c.quarantine {
            return Err(crate::IpcpError::InvalidConfig(
                "jobs > 1 requires quarantine: --no-quarantine exists to \
                 propagate panics with a backtrace, which needs the \
                 single-threaded path (use --jobs 1)"
                    .to_string(),
            ));
        }
        if c.compose_return_jfs && !c.use_return_jfs {
            return Err(crate::IpcpError::InvalidConfig(
                "--compose-return-jfs requires return jump functions \
                 (remove --no-return-jfs)"
                    .to_string(),
            ));
        }
        if let Some(f) = c.fault_injection {
            if f.at == 0 {
                return Err(crate::IpcpError::InvalidConfig(
                    "fault-injection trip points are 1-based; at = 0 \
                     would never trip"
                        .to_string(),
                ));
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_ordered_weakest_first() {
        assert!(JumpFnKind::Literal < JumpFnKind::IntraproceduralConstant);
        assert!(JumpFnKind::IntraproceduralConstant < JumpFnKind::PassThrough);
        assert!(JumpFnKind::PassThrough < JumpFnKind::Polynomial);
        assert_eq!(JumpFnKind::ALL.len(), 4);
    }

    #[test]
    fn default_is_the_recommended_setting() {
        let c = Config::default();
        assert_eq!(c.jump_fn, JumpFnKind::PassThrough);
        assert!(c.use_mod);
        assert!(c.use_return_jfs);
        assert!(!c.compose_return_jfs);
    }

    #[test]
    fn builders_compose() {
        let c = Config::polynomial().with_mod(false).with_return_jfs(false);
        assert_eq!(c.jump_fn, JumpFnKind::Polynomial);
        assert!(!c.use_mod);
        assert!(!c.use_return_jfs);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            JumpFnKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn stage_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::ALL.len());
    }

    #[test]
    fn default_limits_are_generous_and_tiny_limits_are_not() {
        let d = AnalysisLimits::default();
        let t = AnalysisLimits::tiny();
        assert!(d.max_solver_iterations > 100_000);
        assert!(d.max_poly_terms >= ipcp_ssa::poly::Poly::MAX_TERMS);
        assert!(t.max_solver_iterations < d.max_solver_iterations);
        assert!(t.max_poly_terms < d.max_poly_terms);
    }

    #[test]
    fn fault_builder_arms_the_hook() {
        let c = Config::default().with_fault(Stage::Solver, 3);
        assert_eq!(
            c.fault_injection,
            Some(FaultInjection {
                stage: Stage::Solver,
                at: 3
            })
        );
        assert_eq!(Config::default().fault_injection, None);
    }

    #[test]
    fn quarantine_is_on_by_default_and_toggles() {
        assert!(Config::default().quarantine);
        assert!(!Config::default().with_quarantine(false).quarantine);
    }

    #[test]
    fn panic_builder_arms_the_hook() {
        let c = Config::default().with_panic(Stage::Jump, 2);
        assert_eq!(
            c.panic_injection,
            Some(PanicInjection {
                stage: Stage::Jump,
                proc: 2
            })
        );
        assert_eq!(Config::default().panic_injection, None);
    }

    #[test]
    fn builder_defaults_match_config_default() {
        let built = Config::builder().build().expect("default builds");
        assert_eq!(built, Config::default());
    }

    #[test]
    fn builder_sets_every_axis() {
        let c = Config::builder()
            .jump_fn_impl(JumpFnKind::Polynomial)
            .mod_info(false)
            .return_jfs(true)
            .compose_return_jfs(true)
            .zero_globals(true)
            .gated(true)
            .pruned_ssa(true)
            .max_poly_terms(7)
            .max_solver_iterations(99)
            .jobs(4)
            .strict(true)
            .build()
            .expect("valid combination");
        assert_eq!(c.jump_fn, JumpFnKind::Polynomial);
        assert!(!c.use_mod);
        assert!(c.compose_return_jfs && c.use_return_jfs);
        assert!(c.assume_zero_globals && c.gated_jump_fns && c.pruned_ssa);
        assert_eq!(c.limits.max_poly_terms, 7);
        assert_eq!(c.limits.max_solver_iterations, 99);
        assert_eq!(c.jobs, 4);
        assert!(c.strict);
    }

    #[test]
    fn builder_rejects_parallel_without_quarantine() {
        let err = Config::builder().jobs(4).quarantine(false).build();
        assert!(matches!(err, Err(crate::IpcpError::InvalidConfig(_))));
        // jobs = 1 without quarantine is fine: that IS the sequential path.
        assert!(Config::builder().jobs(1).quarantine(false).build().is_ok());
    }

    #[test]
    fn builder_rejects_compose_without_return_jfs() {
        let err = Config::builder()
            .return_jfs(false)
            .compose_return_jfs(true)
            .build();
        assert!(matches!(err, Err(crate::IpcpError::InvalidConfig(_))));
    }

    #[test]
    fn builder_rejects_zero_fault_trip_point() {
        let err = Config::builder().fault(Stage::Solver, 0).build();
        assert!(matches!(err, Err(crate::IpcpError::InvalidConfig(_))));
        assert!(Config::builder().fault(Stage::Solver, 1).build().is_ok());
    }

    #[test]
    fn effective_jobs_explicit_and_quarantine_override() {
        assert_eq!(Config::default().with_jobs(3).effective_jobs(), 3);
        // Quarantine off forces the sequential path regardless of jobs.
        let c = Config::default().with_quarantine(false).with_jobs(8);
        assert_eq!(c.effective_jobs(), 1);
        // Auto-detect resolves to something positive.
        assert!(Config::default().effective_jobs() >= 1);
    }

    #[test]
    fn deadlines_expire_and_far_deadlines_do_not() {
        let past = Deadline::after(Duration::from_secs(0));
        assert!(past.expired());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        // Deadline is Copy + Eq so Config stays Copy + Eq.
        let c = Config::default().with_deadline(far);
        assert_eq!(c.deadline, Some(far));
    }
}
