//! Procedure integration (inlining) — the Wegman–Zadeck alternative the
//! paper's §5 discusses: "combining procedure integration with
//! intraprocedural constant propagation to detect interprocedural
//! constants. Because procedure integration makes paths through the
//! program's call graph explicit, the interprocedural information computed
//! along a particular path may be improved."
//!
//! [`inline_leaf_calls`] splices callee CFGs into their callers, one
//! leaf layer per round, under a growth budget; [`integrate_and_count`]
//! is the §5 comparator — inline everything (non-recursive), then run the
//! purely intraprocedural propagation. It is path-precise where the
//! jump-function framework meets, at the cost of code growth.
//!
//! Correctness notes: by-reference actuals are substituted directly (same
//! storage), by-value actuals are copied into a fresh temporary before
//! entry, callee locals become fresh caller locals **re-zeroed at the
//! splice point** (a callee activation always starts with zeroed locals),
//! and callees declaring local arrays are skipped (FT has no O(1) array
//! reinitializer). Like the analyses, inlining assumes the FORTRAN
//! aliasing rule: a program that writes through an aliased dummy would
//! fault under the interpreter and is transformed at face value here.

use crate::config::{Config, Stage};
use crate::health::{AnalysisHealth, Governor};
use ipcp_ir::cfg::{BasicBlock, BlockId, CStmt, CallSiteId, ModuleCfg, Terminator};
use ipcp_ir::program::{Arg, Expr, ProcId, VarId, VarInfo, VarKind};
use ipcp_ir::span::Span;

/// Outcome of the inlining transformation.
#[derive(Debug)]
pub struct InlineResult {
    /// The transformed module.
    pub module: ModuleCfg,
    /// Call sites spliced away.
    pub inlined_calls: usize,
    /// Leaf-inlining rounds performed.
    pub rounds: usize,
    /// Telemetry: non-empty when the configured growth limit (not the
    /// caller's explicit `max_statements`) or a fault stopped inlining.
    pub health: AnalysisHealth,
}

/// Whether `p` is inlinable: no call statements in reachable blocks (a
/// leaf), and no local arrays (their per-activation zeroing cannot be
/// expressed cheaply).
fn is_inlinable_leaf(mcfg: &ModuleCfg, p: ProcId) -> bool {
    let proc = mcfg.module.proc(p);
    if proc
        .vars
        .iter()
        .any(|v| v.kind == VarKind::Local && v.is_array)
    {
        return false;
    }
    let cfg = mcfg.cfg(p);
    let reach = cfg.reachable();
    for (bi, blk) in cfg.blocks.iter().enumerate() {
        if reach[bi] && blk.stmts.iter().any(|s| matches!(s, CStmt::Call { .. })) {
            return false;
        }
    }
    true
}

/// Repeatedly inlines calls to leaf procedures until none remain, the
/// round limit is hit, or the program grows past the statement budget —
/// the smaller of the caller's explicit `max_statements` and the
/// configured [`max_inline_statements`](crate::config::AnalysisLimits)
/// growth limit. Stopping at the explicit cap is the caller's own choice;
/// stopping at the configured limit (or an injected
/// [`Stage::Inline`] fault) records a degradation event.
///
/// Each round flattens one layer of the call tree, so `depth` rounds
/// flatten a non-recursive program completely. Recursive procedures are
/// never inlined (they are never leaves).
pub fn inline_leaf_calls(mcfg: &ModuleCfg, config: &Config, max_statements: usize) -> InlineResult {
    let mut gov = Governor::new(config);
    let cap = max_statements.min(config.limits.max_inline_statements);
    let mut module = mcfg.clone();
    let mut inlined_calls = 0usize;
    let mut rounds = 0usize;
    let round_cap = module.module.procs.len() + 2;

    for _ in 0..round_cap {
        // The per-procedure leaf scan is pure and read-only over the
        // module; run it on the worker pool (results come back in index
        // order, so the splicing below is schedule-independent).
        let (leaves, _pt) =
            crate::par::run(config.effective_jobs(), module.module.procs.len(), |p| {
                is_inlinable_leaf(&module, ProcId::from(p))
            });
        let mut changed = false;
        for pi in 0..module.module.procs.len() {
            if leaves[pi] {
                continue; // leaves contain no calls to inline
            }
            let p = ProcId::from(pi);
            loop {
                if gov.deadline_expired() {
                    gov.record_deadline(
                        Stage::Inline,
                        format!("deadline expired after {inlined_calls} inlined call(s)"),
                    );
                    return InlineResult {
                        module,
                        inlined_calls,
                        rounds,
                        health: gov.into_health(),
                    };
                }
                if total_statements(&module) >= cap {
                    if cap < max_statements {
                        gov.record(
                            Stage::Inline,
                            format!(
                                "statement growth limit exhausted after \
                                 {inlined_calls} inlined call(s)"
                            ),
                        );
                    }
                    return InlineResult {
                        module,
                        inlined_calls,
                        rounds,
                        health: gov.into_health(),
                    };
                }
                let Some((block, stmt, callee)) = find_leaf_call(&module, p, &leaves) else {
                    break;
                };
                if !gov.charge(Stage::Inline) {
                    gov.record(
                        Stage::Inline,
                        format!("inline budget exhausted after {inlined_calls} inlined call(s)"),
                    );
                    return InlineResult {
                        module,
                        inlined_calls,
                        rounds,
                        health: gov.into_health(),
                    };
                }
                inline_one(&mut module, p, block, stmt, callee);
                inlined_calls += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        rounds += 1;
    }

    InlineResult {
        module,
        inlined_calls,
        rounds,
        health: gov.into_health(),
    }
}

fn total_statements(mcfg: &ModuleCfg) -> usize {
    mcfg.cfgs
        .iter()
        .map(|c| c.blocks.iter().map(|b| b.stmts.len()).sum::<usize>())
        .sum()
}

/// First reachable call to an inlinable leaf in `p`.
fn find_leaf_call(
    mcfg: &ModuleCfg,
    p: ProcId,
    leaves: &[bool],
) -> Option<(BlockId, usize, ProcId)> {
    let cfg = mcfg.cfg(p);
    let reach = cfg.reachable();
    for (bi, blk) in cfg.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        for (si, s) in blk.stmts.iter().enumerate() {
            if let CStmt::Call { callee, .. } = s {
                if leaves[callee.index()] && *callee != p {
                    return Some((BlockId::from(bi), si, *callee));
                }
            }
        }
    }
    None
}

/// Splices `callee`'s CFG into `caller` at `block[stmt]`.
fn inline_one(mcfg: &mut ModuleCfg, caller: ProcId, block: BlockId, stmt: usize, callee: ProcId) {
    let callee_proc = mcfg.module.proc(callee).clone();
    let callee_cfg = mcfg.cfg(callee).clone();
    let span = Span::dummy();

    // Extract the call statement.
    let CStmt::Call { args, .. } =
        mcfg.cfgs[caller.index()].blocks[block.index()].stmts[stmt].clone()
    else {
        unreachable!("inline target is a call");
    };

    // --- variable mapping ------------------------------------------------
    let n_caller_vars = mcfg.module.procs[caller.index()].vars.len();
    let mut fresh_vars: Vec<VarInfo> = Vec::new();
    let fresh_of = |info: &VarInfo, tag: &str, fresh_vars: &mut Vec<VarInfo>| -> VarId {
        let id = VarId::from(n_caller_vars + fresh_vars.len());
        fresh_vars.push(VarInfo {
            name: format!("{}${}${}", callee_proc.name, tag, info.name),
            kind: VarKind::Local,
            is_array: info.is_array,
            array_len: info.array_len,
        });
        id
    };

    // Pre-entry statements: by-value copies and local zeroing.
    let mut prologue: Vec<CStmt> = Vec::new();
    let mut var_map: Vec<Option<VarId>> = vec![None; callee_proc.vars.len()];
    for (vi, info) in callee_proc.vars.iter().enumerate() {
        let mapped = match info.kind {
            VarKind::Formal(i) => match &args[i] {
                Arg::Scalar(v, _) | Arg::Array(v, _) => *v,
                Arg::Value(e) => {
                    let t = fresh_of(info, "arg", &mut fresh_vars);
                    prologue.push(CStmt::Assign {
                        dst: t,
                        value: e.clone(),
                    });
                    t
                }
            },
            VarKind::Global(g) => match mcfg.module.procs[caller.index()].var_for_global(g) {
                Some(v) => v,
                None => unreachable!("caller aliases every global"),
            },
            VarKind::Local => {
                let t = fresh_of(info, "loc", &mut fresh_vars);
                // A fresh activation starts with zeroed locals.
                prologue.push(CStmt::Assign {
                    dst: t,
                    value: Expr::Const(0, span),
                });
                t
            }
        };
        var_map[vi] = Some(mapped);
    }
    mcfg.module.procs[caller.index()].vars.extend(fresh_vars);

    let map_var = |v: VarId| match var_map[v.index()] {
        Some(m) => m,
        None => unreachable!("every callee var was mapped above"),
    };

    // --- splice the blocks ------------------------------------------------
    let caller_cfg = &mut mcfg.cfgs[caller.index()];
    let offset = caller_cfg.blocks.len();
    let remap_block = |b: BlockId| BlockId::from(b.index() + offset);

    // Continuation: everything after the call, with the original terminator.
    let cont_id = BlockId::from(offset + callee_cfg.blocks.len());
    let old_block = &mut caller_cfg.blocks[block.index()];
    let tail: Vec<CStmt> = old_block.stmts.split_off(stmt + 1);
    old_block.stmts.pop(); // drop the call itself
    old_block.stmts.extend(prologue);
    let old_term = std::mem::replace(
        &mut old_block.term,
        Terminator::Jump(remap_block(callee_cfg.entry)),
    );

    // Fresh call-site ids for calls copied from the callee (leaves have
    // none, but stay robust if the policy widens later).
    let mut next_site = caller_cfg.n_call_sites;

    for cb in &callee_cfg.blocks {
        let mut nb = BasicBlock::new();
        for s in &cb.stmts {
            nb.stmts.push(remap_stmt(s, &map_var, &mut next_site));
        }
        nb.term = match &cb.term {
            Terminator::Return => Terminator::Jump(cont_id),
            Terminator::Jump(t) => Terminator::Jump(remap_block(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: remap_expr(cond, &map_var),
                then_bb: remap_block(*then_bb),
                else_bb: remap_block(*else_bb),
            },
        };
        caller_cfg.blocks.push(nb);
    }
    caller_cfg.blocks.push(BasicBlock {
        stmts: tail,
        term: old_term,
    });
    caller_cfg.n_call_sites = next_site;
}

fn remap_stmt(s: &CStmt, map_var: &impl Fn(VarId) -> VarId, next_site: &mut usize) -> CStmt {
    match s {
        CStmt::Assign { dst, value } => CStmt::Assign {
            dst: map_var(*dst),
            value: remap_expr(value, map_var),
        },
        CStmt::Store {
            array,
            index,
            value,
        } => CStmt::Store {
            array: map_var(*array),
            index: remap_expr(index, map_var),
            value: remap_expr(value, map_var),
        },
        CStmt::Read { dst } => CStmt::Read { dst: map_var(*dst) },
        CStmt::Print { value } => CStmt::Print {
            value: remap_expr(value, map_var),
        },
        CStmt::Call { callee, args, .. } => {
            let site = CallSiteId::from(*next_site);
            *next_site += 1;
            CStmt::Call {
                callee: *callee,
                args: args
                    .iter()
                    .map(|a| match a {
                        Arg::Scalar(v, sp) => Arg::Scalar(map_var(*v), *sp),
                        Arg::Array(v, sp) => Arg::Array(map_var(*v), *sp),
                        Arg::Value(e) => Arg::Value(remap_expr(e, map_var)),
                    })
                    .collect(),
                site,
            }
        }
    }
}

fn remap_expr(e: &Expr, map_var: &impl Fn(VarId) -> VarId) -> Expr {
    match e {
        Expr::Const(c, s) => Expr::Const(*c, *s),
        Expr::Var(v, s) => Expr::Var(map_var(*v), *s),
        Expr::Load(v, idx, s) => Expr::Load(map_var(*v), Box::new(remap_expr(idx, map_var)), *s),
        Expr::Unary(op, x, s) => Expr::Unary(*op, Box::new(remap_expr(x, map_var)), *s),
        Expr::Binary(op, l, r, s) => Expr::Binary(
            *op,
            Box::new(remap_expr(l, map_var)),
            Box::new(remap_expr(r, map_var)),
            *s,
        ),
    }
}

/// The Wegman–Zadeck comparator: integrate procedures under a budget,
/// then count constants with the purely intraprocedural propagation.
///
/// Returns `(substituted constants, inline result)`. Counts are *not*
/// directly comparable to the jump-function counts when code was
/// duplicated (an occurrence inlined twice can be counted twice) — the
/// path-precision-vs-growth trade-off §5 describes.
pub fn integrate_and_count(
    mcfg: &ModuleCfg,
    config: &Config,
    max_statements: usize,
) -> (usize, InlineResult) {
    let result = inline_leaf_calls(mcfg, config, max_statements);
    let count = crate::substitute::intraprocedural_count(&result.module);
    (count, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::pipeline::Analysis;
    use ipcp_ir::interp::{exec_cfg, ExecLimits};
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn mcfg(src: &str) -> ModuleCfg {
        lower_module(&parse_and_resolve(src).unwrap())
    }

    fn behaviour_preserved(a: &ModuleCfg, b: &ModuleCfg, inputs: &[&[i64]]) {
        for input in inputs {
            let x = exec_cfg(a, input, &ExecLimits::default()).unwrap();
            let y = exec_cfg(b, input, &ExecLimits::default()).unwrap();
            assert_eq!(x.output, y.output);
        }
    }

    #[test]
    fn configured_statement_limit_degrades_with_telemetry() {
        use crate::config::AnalysisLimits;
        let m = mcfg("proc main() { call f(); call f(); } proc f() { print 7; }");
        let limits = AnalysisLimits {
            max_inline_statements: total_statements(&m),
            ..AnalysisLimits::default()
        };
        let r = inline_leaf_calls(&m, &Config::default().with_limits(limits), 10_000);
        assert_eq!(r.inlined_calls, 0, "the configured limit stops all growth");
        assert_eq!(r.health.count(Stage::Inline), 1, "{}", r.health);
        // The explicit cap is the caller's own choice — no degradation.
        let r = inline_leaf_calls(&m, &Config::default(), total_statements(&m));
        assert_eq!(r.inlined_calls, 0);
        assert!(!r.health.degraded(), "{}", r.health);
    }

    #[test]
    fn fault_injection_stops_inlining_deterministically() {
        let m = mcfg("proc main() { call f(); call f(); } proc f() { print 7; }");
        let r = inline_leaf_calls(&m, &Config::default().with_fault(Stage::Inline, 2), 10_000);
        assert_eq!(r.inlined_calls, 1, "the fault trips at the second splice");
        assert_eq!(r.health.count(Stage::Inline), 1, "{}", r.health);
    }

    #[test]
    fn leaf_call_is_spliced_away() {
        let m = mcfg("proc main() { x = 3; call f(x, 4); print x; } proc f(a, b) { print a * b; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        assert_eq!(r.inlined_calls, 1);
        let main_cfg = r.module.cfg(r.module.module.entry);
        let has_call = main_cfg
            .blocks
            .iter()
            .any(|b| b.stmts.iter().any(|s| matches!(s, CStmt::Call { .. })));
        assert!(!has_call);
        behaviour_preserved(&m, &r.module, &[&[]]);
    }

    #[test]
    fn by_reference_formals_alias_caller_storage() {
        let m = mcfg("proc main() { x = 1; call bump(x); print x; } proc bump(a) { a = a + 41; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        behaviour_preserved(&m, &r.module, &[&[]]);
        let out = exec_cfg(&r.module, &[], &ExecLimits::default()).unwrap();
        assert_eq!(out.output, vec![42]);
    }

    #[test]
    fn by_value_arguments_copy_once() {
        let m =
            mcfg("proc main() { read x; call f(x + 1); print x; } proc f(a) { a = 99; print a; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        behaviour_preserved(&m, &r.module, &[&[5], &[0]]);
    }

    #[test]
    fn locals_are_rezeroed_per_activation() {
        // g is called twice; its local must read 0 at the second splice
        // too, not the first activation's leftover.
        let m = mcfg("proc main() { call g(); call g(); } proc g() { t = t + 7; print t; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        assert_eq!(r.inlined_calls, 2);
        behaviour_preserved(&m, &r.module, &[&[]]);
        let out = exec_cfg(&r.module, &[], &ExecLimits::default()).unwrap();
        assert_eq!(out.output, vec![7, 7]);
    }

    #[test]
    fn multi_level_trees_flatten_over_rounds() {
        let m = mcfg(
            "proc main() { call a(2); print 0; } \
             proc a(x) { call b(x * 3); } \
             proc b(y) { call c(y + 1); } \
             proc c(z) { print z; }",
        );
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        assert!(r.rounds >= 2, "rounds {}", r.rounds);
        behaviour_preserved(&m, &r.module, &[&[]]);
        // main is now call-free.
        let main_cfg = r.module.cfg(r.module.module.entry);
        assert!(!main_cfg
            .blocks
            .iter()
            .any(|b| b.stmts.iter().any(|s| matches!(s, CStmt::Call { .. }))));
    }

    #[test]
    fn recursive_procedures_are_left_alone() {
        let m = mcfg(
            "proc main() { x = 3; call f(x); print x; } \
             proc f(a) { if (a > 0) { a = a - 1; call f(a); } }",
        );
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        assert_eq!(r.inlined_calls, 0);
        behaviour_preserved(&m, &r.module, &[&[]]);
    }

    #[test]
    fn callees_with_local_arrays_are_skipped() {
        let m = mcfg("proc main() { call f(); } proc f() { array t[4]; t[0] = 1; print t[0]; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        assert_eq!(r.inlined_calls, 0);
    }

    #[test]
    fn budget_stops_growth() {
        let m = mcfg(
            "proc main() { call f(); call f(); call f(); call f(); } \
             proc f() { print 1; print 2; print 3; print 4; print 5; }",
        );
        let unbounded = inline_leaf_calls(&m, &Config::default(), 100_000);
        assert_eq!(unbounded.inlined_calls, 4);
        let bounded = inline_leaf_calls(&m, &Config::default(), total_statements(&m) + 6);
        assert!(bounded.inlined_calls < 4, "{}", bounded.inlined_calls);
        behaviour_preserved(&m, &bounded.module, &[&[]]);
    }

    #[test]
    fn loops_around_inlined_bodies_stay_correct() {
        let m =
            mcfg("proc main() { do i = 1, 3 { call f(i); } } proc f(k) { s = k * 2; print s; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        behaviour_preserved(&m, &r.module, &[&[]]);
        let out = exec_cfg(&r.module, &[], &ExecLimits::default()).unwrap();
        assert_eq!(out.output, vec![2, 4, 6]);
    }

    #[test]
    fn integration_finds_path_precise_constants() {
        // The §5 motivation: two call sites with different constants. The
        // jump-function framework meets them to ⊥; integration keeps each
        // path separate.
        let src = "proc main() { call f(1); call f(2); } proc f(a) { print a; print a + 1; }";
        let m = mcfg(src);
        let jf = Analysis::run(&m, &Config::polynomial())
            .substitute(&m)
            .total;
        assert_eq!(jf, 0);
        let (integrated, r) = integrate_and_count(&m, &Config::default(), 10_000);
        assert_eq!(r.inlined_calls, 2);
        assert_eq!(integrated, 4, "each inlined copy keeps its constant");
        behaviour_preserved(&m, &r.module, &[&[]]);
    }

    #[test]
    fn globals_keep_flowing_after_integration() {
        let m = mcfg("global g; proc main() { g = 5; call f(); print g; } proc f() { g = g + 1; }");
        let r = inline_leaf_calls(&m, &Config::default(), 10_000);
        behaviour_preserved(&m, &r.module, &[&[]]);
        let out = exec_cfg(&r.module, &[], &ExecLimits::default()).unwrap();
        assert_eq!(out.output, vec![6]);
    }

    #[test]
    fn suite_programs_survive_integration() {
        for p in ipcp_suite::PROGRAMS {
            let m = p.module_cfg();
            let r = inline_leaf_calls(&m, &Config::default(), 5_000);
            behaviour_preserved(&m, &r.module, &[p.inputs]);
        }
    }
}
