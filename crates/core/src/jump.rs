//! Jump functions: the paper's central abstraction.
//!
//! A *forward jump function* `J_s^y` gives the value of actual parameter
//! `y` at call site `s` as a function of the calling procedure's entry
//! values (formals and globals). Its *support* is the set of entry slots
//! it reads. The four implementations of §3.1 differ in which shapes they
//! admit: a literal, any intraprocedurally known constant, additionally a
//! pass-through formal, or any polynomial.
//!
//! [`build_forward_jump_fns`] constructs, for every reachable call site,
//! one jump function per **callee entry slot** — the callee's formals
//! (from the actual arguments) followed by every scalar global (whose
//! value is transmitted implicitly at the call).

use crate::config::JumpFnKind;
use crate::config::{AnalysisLimits, Config, Stage};
use crate::health::Governor;
use crate::pipeline::{PhaseFold, PhaseUnit};
use ipcp_analysis::CallGraph;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::{ProcId, SlotLayout};
use ipcp_ssa::poly::{Poly, PolyVar};
use ipcp_ssa::ssa::StmtInfo;
use ipcp_ssa::symbolic::SymVal;
use ipcp_ssa::Lattice;
use std::fmt;

/// One jump function — also the representation of return jump functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JumpFn {
    /// The transmitted value is always this constant.
    Const(i64),
    /// The transmitted value is exactly the caller's entry slot `v`
    /// (§3.1.3: a formal "passed unmodified through the procedure body").
    PassThrough(PolyVar),
    /// The transmitted value is a non-trivial polynomial of the caller's
    /// entry slots (§3.1.4).
    Poly(Poly),
    /// No information: evaluates to ⊥.
    Bottom,
}

impl JumpFn {
    /// Builds the jump function of the given kind from the symbolic value
    /// of the actual at the call site. Stronger kinds admit more shapes;
    /// anything not admitted degrades to ⊥.
    ///
    /// The `Literal` kind never calls this — it is purely syntactic.
    pub fn from_sym(sym: &SymVal, kind: JumpFnKind) -> JumpFn {
        let Some(p) = sym.as_poly() else {
            return JumpFn::Bottom;
        };
        if let Some(c) = p.as_const() {
            return JumpFn::Const(c);
        }
        match kind {
            JumpFnKind::Literal | JumpFnKind::IntraproceduralConstant => JumpFn::Bottom,
            JumpFnKind::PassThrough => match p.as_var() {
                Some(v) => JumpFn::PassThrough(v),
                None => JumpFn::Bottom,
            },
            JumpFnKind::Polynomial => match p.as_var() {
                Some(v) => JumpFn::PassThrough(v),
                None => JumpFn::Poly(p.clone()),
            },
        }
    }

    /// The support set: the caller entry slots whose values this jump
    /// function reads (§2: "the exact set of p's formal parameters whose
    /// values on entry are used").
    pub fn support(&self) -> Vec<PolyVar> {
        match self {
            JumpFn::Const(_) | JumpFn::Bottom => Vec::new(),
            JumpFn::PassThrough(v) => vec![*v],
            JumpFn::Poly(p) => p.support(),
        }
    }

    /// Evaluates the jump function over the constant lattice: `env` maps a
    /// caller entry slot to its current `VAL` approximation.
    ///
    /// ⊤ inputs stay optimistic (⊤ out), any ⊥ input forces ⊥, and a fully
    /// constant support evaluates the polynomial (arithmetic overflow
    /// degrades to ⊥).
    pub fn eval(&self, env: impl Fn(PolyVar) -> Lattice) -> Lattice {
        match self {
            JumpFn::Bottom => Lattice::Bottom,
            JumpFn::Const(c) => Lattice::Const(*c),
            JumpFn::PassThrough(v) => env(*v),
            JumpFn::Poly(p) => {
                let mut any_top = false;
                for v in p.support() {
                    match env(v) {
                        Lattice::Bottom => return Lattice::Bottom,
                        Lattice::Top => any_top = true,
                        Lattice::Const(_) => {}
                    }
                }
                if any_top {
                    return Lattice::Top;
                }
                p.eval_partial(|v| env(v).as_const())
                    .map_or(Lattice::Bottom, Lattice::Const)
            }
        }
    }

    /// Clamps this jump function to the configured shape budgets,
    /// degrading down the §3.1 ladder: an over-budget polynomial weakens
    /// to a pass-through when it is a bare entry slot (and one slot of
    /// support is affordable), otherwise to ⊥ — which is always sound,
    /// since a weaker jump function merely transmits less information.
    ///
    /// Returns the (possibly weakened) function and whether it degraded.
    pub fn clamp(self, limits: &AnalysisLimits) -> (JumpFn, bool) {
        match self {
            JumpFn::Poly(p) => {
                if p.fits_within(
                    limits.max_poly_terms,
                    limits.max_poly_degree,
                    limits.max_support,
                ) {
                    (JumpFn::Poly(p), false)
                } else if let Some(v) = p.as_var() {
                    if limits.max_support >= 1 {
                        (JumpFn::PassThrough(v), true)
                    } else {
                        (JumpFn::Bottom, true)
                    }
                } else {
                    (JumpFn::Bottom, true)
                }
            }
            JumpFn::PassThrough(_) if limits.max_support == 0 => (JumpFn::Bottom, true),
            other => (other, false),
        }
    }

    /// Whether the function is the constant `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, JumpFn::Bottom)
    }

    /// The constant, if this is a constant jump function.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            JumpFn::Const(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for JumpFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JumpFn::Const(c) => write!(f, "{c}"),
            JumpFn::PassThrough(v) => write!(f, "x{v}"),
            JumpFn::Poly(p) => write!(f, "{p}"),
            JumpFn::Bottom => write!(f, "⊥"),
        }
    }
}

/// The forward jump functions of one call site: one per callee entry slot
/// (formals first, then scalar globals).
pub type SiteJumpFns = Vec<JumpFn>;

/// All forward jump functions of a program, indexed `[proc][site]`.
#[derive(Clone, Debug, Default)]
pub struct ForwardJumpFns {
    /// `sites[p][s]` — jump functions of call site `s` in procedure `p`
    /// (empty for unreachable sites).
    pub sites: Vec<Vec<SiteJumpFns>>,
}

impl ForwardJumpFns {
    /// The jump functions at call site `site` of `proc`.
    pub fn at(&self, proc: ProcId, site: ipcp_ir::cfg::CallSiteId) -> &SiteJumpFns {
        &self.sites[proc.index()][site.index()]
    }

    /// Total number of constructed (non-⊥) jump functions, for reporting.
    pub fn n_informative(&self) -> usize {
        self.sites
            .iter()
            .flatten()
            .flatten()
            .filter(|j| !j.is_bottom())
            .count()
    }
}

/// Constructs the forward jump functions for every reachable call site.
///
/// `symbolics[p]` must hold the SSA form and polynomial evaluation of
/// procedure `p` under the configuration's call-effect assumptions (the
/// pipeline builds these once and shares them).
///
/// Every constructed function charges one construction step to the
/// governor's [`Stage::Jump`] budget and is clamped to the configured
/// polynomial shape limits; exhaustion degrades the function to ⊥ and
/// records a [degradation event](crate::health::DegradationEvent).
///
/// Each call edge's construction runs under quarantine: a panic degrades
/// only the *caller* — every one of its call sites transmits ⊥ for every
/// callee entry slot, which the solver treats exactly like a call whose
/// arguments are unknown. A quarantined-but-reachable caller must **not**
/// be skipped: an empty site entry would make the solver ignore the edge
/// entirely (leaving the callee optimistically at ⊤), so quarantine
/// materializes explicit all-⊥ functions of the correct length instead.
pub fn build_forward_jump_fns(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    config: &Config,
    symbolics: &[Option<ProcSymbolic>],
    quarantined: &mut [bool],
    gov: &mut Governor,
) -> ForwardJumpFns {
    let mut out = empty_sites(mcfg);
    // `cg.edges` is grouped by caller in ascending index order, so the
    // per-caller decomposition visits exactly the same edges in exactly
    // the same order as a flat edge loop would.
    for (caller, q) in quarantined.iter_mut().enumerate() {
        let (fns, quar) =
            build_caller_jump_fns(mcfg, cg, layout, config, symbolics, caller, *q, gov);
        commit_caller(&mut out, caller, fns);
        *q = quar;
    }
    out
}

/// Parallel [`build_forward_jump_fns`]: each caller's edges are one unit,
/// run optimistically against a governor shard; the fold walks callers in
/// ascending index order and either absorbs the shard (when
/// [`Governor::can_absorb`] proves the charges land exactly where
/// sequential charging would have put them) or replays the caller
/// sequentially against the master. Results, telemetry, and quarantine
/// flags are bit-identical to the sequential driver.
#[allow(clippy::too_many_arguments)] // mirrors the sequential driver's signature plus the pool
pub(crate) fn build_forward_jump_fns_par(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    config: &Config,
    symbolics: &[Option<ProcSymbolic>],
    quarantined: &mut [bool],
    gov: &mut Governor,
    pool: &crate::par::Pool<'_>,
) -> (ForwardJumpFns, crate::par::PhaseTime) {
    let n = mcfg.module.procs.len();
    let snapshot: Vec<bool> = quarantined.to_vec();
    let proto = gov.shard();
    let (units, mut time) = pool.run(n, |caller| {
        let mut shard = proto.shard();
        let (fns, quar) = build_caller_jump_fns(
            mcfg,
            cg,
            layout,
            config,
            symbolics,
            caller,
            snapshot[caller],
            &mut shard,
        );
        PhaseUnit::new(caller, Ok((fns, quar)), shard)
    });

    let mut out = empty_sites(mcfg);
    let mut fold = PhaseFold::default();
    for (caller, pu) in units.into_iter().enumerate() {
        match fold.try_absorb(gov, pu, true) {
            Some(Ok((fns, quar))) => {
                commit_caller(&mut out, caller, fns);
                quarantined[caller] = quar;
            }
            Some(Err(e)) => {
                // Panics are contained per call site inside the unit and
                // reported through the quarantine flag, never the outcome.
                unreachable!("jump units never fail the outcome: {e}")
            }
            None => {
                // The optimistic charges would cross a budget cap or fault
                // trip point somewhere inside this unit; rerun it against
                // the master so each charge sees the exact sequential
                // counter.
                let (fns, quar) = build_caller_jump_fns(
                    mcfg,
                    cg,
                    layout,
                    config,
                    symbolics,
                    caller,
                    snapshot[caller],
                    gov,
                );
                commit_caller(&mut out, caller, fns);
                quarantined[caller] = quar;
            }
        }
    }
    fold.stamp(&mut time);
    (out, time)
}

fn empty_sites(mcfg: &ModuleCfg) -> ForwardJumpFns {
    ForwardJumpFns {
        sites: mcfg
            .module
            .procs
            .iter()
            .enumerate()
            .map(|(p, _)| vec![Vec::new(); mcfg.cfgs[p].n_call_sites])
            .collect(),
    }
}

fn commit_caller(out: &mut ForwardJumpFns, caller: usize, fns: Vec<(usize, SiteJumpFns)>) {
    for (site, f) in fns {
        out.sites[caller][site] = f;
    }
}

/// Builds the jump functions for every call site of one caller — the unit
/// of both the sequential and the parallel driver. Returns the per-site
/// functions plus the caller's (possibly newly set) quarantine flag.
#[allow(clippy::too_many_arguments)]
fn build_caller_jump_fns(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    config: &Config,
    symbolics: &[Option<ProcSymbolic>],
    caller: usize,
    already_quarantined: bool,
    gov: &mut Governor,
) -> (Vec<(usize, SiteJumpFns)>, bool) {
    let n_globals = layout.scalar_globals.len();
    // Loop-invariant: every edge below has `edge.caller == caller`, so
    // borrow the name once instead of cloning it per edge.
    let caller_name: &str = &mcfg.module.proc(ProcId::from(caller)).name;
    let mut quar = already_quarantined;
    let mut out: Vec<(usize, SiteJumpFns)> = Vec::new();
    for edge in cg.calls_from(ProcId::from(caller)) {
        let callee = mcfg.module.proc(edge.callee);
        let all_bottom = || vec![JumpFn::Bottom; callee.arity() + n_globals];
        if quar {
            // Already contained by an earlier phase (or an earlier edge):
            // the site still binds the callee, just with no information.
            out.push((edge.site.index(), all_bottom()));
            continue;
        }
        let Some(ps) = symbolics[caller].as_ref() else {
            continue; // caller unreachable: no jump functions needed
        };
        if let Some(gate) = &ps.gate {
            if !gate.block_exec[edge.block.index()] {
                continue; // gated: the call site is provably dead
            }
        }
        let Some(StmtInfo::Call {
            arg_vals,
            global_pre,
            ..
        }) = ps.ssa.call_info(edge.site)
        else {
            continue;
        };
        let unit = crate::quarantine::run_unit(config, Stage::Jump, caller, || {
            build_site_jump_fns(
                mcfg,
                config,
                ps,
                callee,
                caller_name,
                edge,
                arg_vals,
                global_pre,
                n_globals,
                gov,
            )
        });
        let fns = match unit {
            Ok(fns) => fns,
            Err(e) => {
                quar = true;
                gov.record_quarantine(
                    Stage::Jump,
                    format!(
                        "{caller_name}: panic contained ({}); \
                         jump functions at every call site forced to ⊥",
                        e.message
                    ),
                );
                all_bottom()
            }
        };
        out.push((edge.site.index(), fns));
    }
    (out, quar)
}

/// Constructs the jump functions of one call site — the unit of work
/// [`build_forward_jump_fns`] runs under quarantine.
#[allow(clippy::too_many_arguments)]
fn build_site_jump_fns(
    mcfg: &ModuleCfg,
    config: &Config,
    ps: &ProcSymbolic,
    callee: &ipcp_ir::program::Proc,
    caller_name: &str,
    edge: &ipcp_analysis::CallEdge,
    arg_vals: &[Option<ipcp_ssa::ValueId>],
    global_pre: &[ipcp_ssa::ValueId],
    n_globals: usize,
    gov: &mut Governor,
) -> SiteJumpFns {
    let mut fns: SiteJumpFns = Vec::with_capacity(callee.arity() + n_globals);

    // Formal slots, from the actual arguments.
    let mut syntactic: Vec<Option<i64>> = vec![None; arg_vals.len()];
    mcfg.each_call_in(edge.caller, |_, s, _, args| {
        if s == edge.site {
            for (i, a) in args.iter().enumerate() {
                syntactic[i] = a.literal();
            }
        }
    });
    for (i, arg) in arg_vals.iter().enumerate() {
        if i >= callee.arity() {
            break;
        }
        let jf = if callee.var(callee.formals[i]).is_array {
            JumpFn::Bottom
        } else if config.jump_fn == JumpFnKind::Literal {
            match syntactic[i] {
                Some(c) => JumpFn::Const(c),
                None => JumpFn::Bottom,
            }
        } else {
            match arg {
                Some(v) => JumpFn::from_sym(ps.sym.value(*v), config.jump_fn),
                None => JumpFn::Bottom,
            }
        };
        fns.push(govern(jf, gov, caller_name, edge.site.index(), i));
    }
    // A resolution-checked program always supplies every formal.
    while fns.len() < callee.arity() {
        fns.push(JumpFn::Bottom);
    }

    // Global slots. The literal jump function misses them entirely
    // ("constant globals … passed implicitly at the call site").
    for (j, &pre) in global_pre.iter().enumerate().take(n_globals) {
        let jf = if config.jump_fn == JumpFnKind::Literal {
            JumpFn::Bottom
        } else {
            JumpFn::from_sym(ps.sym.value(pre), config.jump_fn)
        };
        let slot = callee.arity() + j;
        fns.push(govern(jf, gov, caller_name, edge.site.index(), slot));
    }
    fns
}

/// Charges one construction step and clamps the function to the shape
/// budgets, degrading to ⊥ (and recording why) when either trips.
fn govern(jf: JumpFn, gov: &mut Governor, caller: &str, site: usize, slot: usize) -> JumpFn {
    if !gov.charge(Stage::Jump) {
        if !jf.is_bottom() {
            gov.record(
                Stage::Jump,
                format!(
                    "{caller}: site {site} slot {slot}: construction budget exhausted; forced to ⊥"
                ),
            );
        }
        return JumpFn::Bottom;
    }
    let limits = *gov.limits();
    let (clamped, degraded) = jf.clamp(&limits);
    if degraded {
        gov.record(
            Stage::Jump,
            format!("{caller}: site {site} slot {slot}: polynomial exceeds shape limits; degraded to {clamped}"),
        );
    }
    clamped
}

/// A procedure's SSA form together with its polynomial evaluation —
/// produced once per procedure by the pipeline and shared by the jump
/// function generator and the substitution metric.
#[derive(Clone, Debug)]
pub struct ProcSymbolic {
    /// SSA form under the configured call-effect assumptions.
    pub ssa: ipcp_ssa::SsaProc,
    /// Polynomial symbolic evaluation of `ssa`.
    pub sym: ipcp_ssa::Symbolic,
    /// The gating SCCP fixpoint, when `Config::gated_jump_fns` is on:
    /// call sites in non-executable blocks produce no jump functions, as
    /// if dead code had been eliminated ahead of generation.
    pub gate: Option<ipcp_ssa::SccpResult>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sym_respects_kind_hierarchy() {
        let konst = SymVal::constant(7);
        let passthru = SymVal::Poly(Poly::var(2));
        let poly = SymVal::Poly(Poly::var(0).add(&Poly::constant(1)).unwrap());
        use JumpFnKind::*;
        for kind in [IntraproceduralConstant, PassThrough, Polynomial] {
            assert_eq!(JumpFn::from_sym(&konst, kind), JumpFn::Const(7));
        }
        assert_eq!(
            JumpFn::from_sym(&passthru, IntraproceduralConstant),
            JumpFn::Bottom
        );
        assert_eq!(
            JumpFn::from_sym(&passthru, PassThrough),
            JumpFn::PassThrough(2)
        );
        assert_eq!(
            JumpFn::from_sym(&passthru, Polynomial),
            JumpFn::PassThrough(2)
        );
        assert_eq!(JumpFn::from_sym(&poly, PassThrough), JumpFn::Bottom);
        assert!(matches!(
            JumpFn::from_sym(&poly, Polynomial),
            JumpFn::Poly(_)
        ));
        assert_eq!(
            JumpFn::from_sym(&SymVal::Bottom, Polynomial),
            JumpFn::Bottom
        );
    }

    #[test]
    fn support_sets() {
        assert!(JumpFn::Const(3).support().is_empty());
        assert!(JumpFn::Bottom.support().is_empty());
        assert_eq!(JumpFn::PassThrough(4).support(), vec![4]);
        let p = Poly::var(1).mul(&Poly::var(3)).unwrap();
        assert_eq!(JumpFn::Poly(p).support(), vec![1, 3]);
    }

    #[test]
    fn eval_over_lattice() {
        use Lattice::*;
        let jf = JumpFn::PassThrough(0);
        assert_eq!(jf.eval(|_| Const(5)), Const(5));
        assert_eq!(jf.eval(|_| Top), Top);
        assert_eq!(jf.eval(|_| Bottom), Bottom);

        // 2x + y with x=3 const, y varying.
        let p = Poly::var(0)
            .mul(&Poly::constant(2))
            .unwrap()
            .add(&Poly::var(1))
            .unwrap();
        let jf = JumpFn::Poly(p);
        let env = |consts: [Lattice; 2]| move |v: PolyVar| consts[v as usize];
        assert_eq!(jf.eval(env([Const(3), Const(4)])), Const(10));
        assert_eq!(jf.eval(env([Const(3), Top])), Top);
        assert_eq!(jf.eval(env([Const(3), Bottom])), Bottom);
        assert_eq!(jf.eval(env([Top, Bottom])), Bottom); // ⊥ dominates ⊤
        assert_eq!(JumpFn::Const(9).eval(|_| Bottom), Const(9));
        assert_eq!(JumpFn::Bottom.eval(|_| Const(1)), Bottom);
    }

    #[test]
    fn eval_overflow_degrades_to_bottom() {
        let p = Poly::var(0).mul(&Poly::constant(i64::MAX)).unwrap();
        let jf = JumpFn::Poly(p);
        assert_eq!(jf.eval(|_| Lattice::Const(3)), Lattice::Bottom);
    }

    #[test]
    fn clamp_degrades_down_the_ladder() {
        let tiny = AnalysisLimits::tiny(); // 1 term, degree 1, support 1
                                           // x*y: one term but degree 2, and not a bare slot → ⊥.
        let xy = Poly::var(0).mul(&Poly::var(1)).unwrap();
        assert_eq!(JumpFn::Poly(xy).clamp(&tiny), (JumpFn::Bottom, true));
        // A bare slot fits even the tiny budget.
        assert_eq!(
            JumpFn::Poly(Poly::var(2)).clamp(&tiny),
            (JumpFn::Poly(Poly::var(2)), false)
        );
        // With a zero degree budget a bare slot weakens to pass-through…
        let degree_zero = AnalysisLimits {
            max_poly_degree: 0,
            ..AnalysisLimits::default()
        };
        assert_eq!(
            JumpFn::Poly(Poly::var(2)).clamp(&degree_zero),
            (JumpFn::PassThrough(2), true)
        );
        // …and with no support budget at all, to ⊥.
        let no_support = AnalysisLimits {
            max_support: 0,
            ..AnalysisLimits::default()
        };
        assert_eq!(
            JumpFn::PassThrough(1).clamp(&no_support),
            (JumpFn::Bottom, true)
        );
        // Constants and ⊥ survive any budget unchanged.
        assert_eq!(
            JumpFn::Const(9).clamp(&no_support),
            (JumpFn::Const(9), false)
        );
        assert_eq!(JumpFn::Bottom.clamp(&tiny), (JumpFn::Bottom, false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(JumpFn::Const(-2).to_string(), "-2");
        assert_eq!(JumpFn::PassThrough(1).to_string(), "x1");
        assert_eq!(JumpFn::Bottom.to_string(), "⊥");
    }
}
