//! `ipcc reduce` — a delta-debugging triage tool.
//!
//! Given an FT program that reproduces a failure (a pipeline panic, a
//! quarantined procedure, any degradation, or a soundness-oracle
//! violation), [`reduce`] shrinks it to a small program that still
//! reproduces it, using Zeller-style ddmin over source lines followed by
//! a pass over whitespace-separated tokens. The reference interpreter is
//! reused as the soundness oracle, exactly as `tests/soundness.rs` does.
//!
//! Candidates that fail to parse are simply uninteresting — the frontend
//! returns diagnostics as values, so malformed fragments cost one cheap
//! predicate test and are discarded.

use crate::config::Config;
use crate::pipeline::Analysis;
use crate::quarantine::quiet_catch;
use ipcp_ir::interp::{run_module, ExecLimits};
use ipcp_ssa::Lattice;

/// What counts as "still failing" during reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReduceCheck {
    /// The analysis pipeline panics (probed with quarantine off, so the
    /// panic is observable instead of contained).
    Panic,
    /// At least one procedure is quarantined by the fault-isolation layer.
    Quarantine,
    /// The analysis records any degradation event.
    Degraded,
    /// A claimed `CONSTANTS(p)` entry contradicts the interpreter's entry
    /// trace on the given inputs — a genuine soundness bug.
    Unsound {
        /// Inputs fed to `read` statements during the oracle run.
        inputs: Vec<i64>,
    },
}

impl ReduceCheck {
    /// Stable label for CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            ReduceCheck::Panic => "panic",
            ReduceCheck::Quarantine => "quarantine",
            ReduceCheck::Degraded => "degraded",
            ReduceCheck::Unsound { .. } => "unsound",
        }
    }
}

/// The result of a successful reduction.
#[derive(Clone, Debug)]
pub struct ReduceOutcome {
    /// The minimized program (still reproduces the failure).
    pub source: String,
    /// Predicate evaluations spent.
    pub tests: usize,
    /// Bytes in the original program.
    pub original_bytes: usize,
    /// Bytes in the minimized program.
    pub reduced_bytes: usize,
}

/// Does `src` reproduce the failure class `check` under `config`?
///
/// Unparseable sources are never interesting. Every probe runs under a
/// quiet `catch_unwind`, so reduction itself can never crash the caller —
/// for non-`Panic` checks an unexpected panic makes the candidate
/// uninteresting rather than aborting the search.
pub fn is_interesting(src: &str, config: &Config, check: &ReduceCheck) -> bool {
    let Ok(module) = ipcp_ir::parse_and_resolve(src) else {
        return false;
    };
    let mcfg = ipcp_ir::lower_module(&module);
    match check {
        ReduceCheck::Panic => {
            let probe = config.with_quarantine(false);
            quiet_catch(|| Analysis::run(&mcfg, &probe)).is_err()
        }
        ReduceCheck::Quarantine => {
            let probe = config.with_quarantine(true);
            quiet_catch(|| Analysis::run(&mcfg, &probe))
                .map(|a| a.quarantined.iter().any(|&q| q))
                .unwrap_or(false)
        }
        ReduceCheck::Degraded => quiet_catch(|| Analysis::run(&mcfg, config))
            .map(|a| a.health.degraded())
            .unwrap_or(false),
        ReduceCheck::Unsound { inputs } => {
            quiet_catch(|| soundness_violation(&mcfg, config, inputs).is_some()).unwrap_or(false)
        }
    }
}

/// Runs the analysis and replays the program in the reference
/// interpreter; returns a description of the first claimed constant the
/// execution contradicts, if any.
pub fn soundness_violation(
    mcfg: &ipcp_ir::ModuleCfg,
    config: &Config,
    inputs: &[i64],
) -> Option<String> {
    let analysis = Analysis::run(mcfg, config);
    let limits = ExecLimits {
        max_steps: 500_000,
        lenient_reads: true,
        ..Default::default()
    };
    let exec = run_module(&mcfg.module, inputs, &limits).ok()?;
    for (p, snapshot) in &exec.trace.entries {
        let vals = analysis.vals.of(*p);
        for (slot, lattice) in vals.iter().enumerate() {
            if let Lattice::Const(c) = lattice {
                let observed = snapshot.get(slot).copied().unwrap_or(None);
                if observed != Some(*c) {
                    return Some(format!(
                        "CONSTANTS({}) claims {} = {c}, but an execution entered with {}",
                        mcfg.module.proc(*p).name,
                        analysis.layout.slot_name(&mcfg.module, *p, slot),
                        match observed {
                            Some(o) => o.to_string(),
                            None => "no scalar value".to_string(),
                        },
                    ));
                }
            }
        }
    }
    None
}

/// A grammar-aware structural pre-pass plugged into
/// [`reduce_with_prepass`]. Given the current reproducer and the shared
/// probe, it may return a strictly smaller candidate that the probe has
/// already confirmed still fails. Every candidate it tries **must** go
/// through the probe — that is what keeps the `--max-tests` budget
/// airtight across layers; a probe returning `None` means the budget is
/// spent and the pass must give up.
pub type StructuralPass<'a> =
    dyn Fn(&str, &mut dyn FnMut(&str) -> Option<bool>) -> Option<String> + 'a;

/// Shrinks `src` to a small program that still reproduces `check`.
///
/// Returns `None` when the original program does not reproduce the
/// failure (so there is nothing to minimize). The search is bounded by
/// `max_tests` predicate evaluations; when the budget runs out the
/// smallest reproducer found so far is returned — reduction degrades
/// gracefully, like everything else in the pipeline.
pub fn reduce(
    src: &str,
    config: &Config,
    check: &ReduceCheck,
    max_tests: usize,
) -> Option<ReduceOutcome> {
    reduce_with_prepass(src, config, check, max_tests, None)
}

/// [`reduce`] with an optional grammar-aware structural pre-pass run to a
/// fixpoint before the byte-level ddmin passes. Structural shrinking
/// (dropping whole procedures, statements, call arguments) converges in
/// far fewer probes than ddmin on grammar-shaped failures; the pre-pass
/// shares the single `max_tests` probe budget, so every candidate it
/// evaluates is charged exactly like a ddmin candidate.
pub fn reduce_with_prepass(
    src: &str,
    config: &Config,
    check: &ReduceCheck,
    max_tests: usize,
    prepass: Option<&StructuralPass>,
) -> Option<ReduceOutcome> {
    let mut tests = 0usize;
    // `None` = test budget spent; every layer stops and keeps its
    // best-so-far. This closure is the only place a candidate is ever
    // evaluated, so no path — structural, line, token, or a candidate
    // that fails to parse — can skip the counter.
    let mut probe = |candidate: &str| -> Option<bool> {
        if tests >= max_tests {
            return None;
        }
        tests += 1;
        Some(is_interesting(candidate, config, check))
    };
    if !probe(src).unwrap_or(false) {
        return None;
    }

    let mut current = src.to_string();
    if let Some(pass) = prepass {
        while let Some(smaller) = pass(&current, &mut probe) {
            if smaller.len() >= current.len() {
                break; // a pass must make strict progress
            }
            current = smaller;
        }
    }

    let reduced = ddmin_text(&current, &mut probe);
    Some(ReduceOutcome {
        original_bytes: src.len(),
        reduced_bytes: reduced.len(),
        source: reduced,
        tests,
    })
}

/// The byte-level minimization engine: ddmin over source lines
/// (structure-preserving, fast convergence) followed by ddmin over
/// whitespace-separated tokens (FT is free-form, so rejoining with single
/// spaces preserves meaning). The probe contract is the same as
/// [`StructuralPass`]: `Some(true)` = still fails, `Some(false)` = fixed,
/// `None` = budget spent. The returned text is always one the probe has
/// accepted — when the token pass makes no progress, its single-space
/// rejoin (which no probe ever saw) is verified before being preferred
/// over the line-verified form.
pub fn ddmin_text(src: &str, probe: &mut dyn FnMut(&str) -> Option<bool>) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let kept_lines = ddmin(&lines, "\n", probe);
    let line_reduced = kept_lines.join("\n");

    let tokens: Vec<&str> = line_reduced.split_whitespace().collect();
    let n_tokens = tokens.len();
    let kept_tokens = ddmin(&tokens, " ", probe);
    let reduced = kept_tokens.join(" ");

    if kept_tokens.len() == n_tokens && reduced != line_reduced {
        // No token was dropped, so `reduced` is just `line_reduced` with
        // normalized whitespace — and was never itself probed. Keep the
        // verified form unless the normalization provably still fails.
        if !matches!(probe(&reduced), Some(true)) {
            return line_reduced;
        }
    }
    reduced
}

/// Classic ddmin: repeatedly try dropping chunks of the item list,
/// keeping any complement that still satisfies the predicate, refining
/// the granularity until chunks are single items. A `None` from the
/// probe (budget spent) ends the search with the best result so far.
fn ddmin<'a>(
    items: &[&'a str],
    sep: &str,
    probe: &mut dyn FnMut(&str) -> Option<bool>,
) -> Vec<&'a str> {
    let mut current: Vec<&'a str> = items.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<&'a str> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !complement.is_empty() {
                match probe(&complement.join(sep)) {
                    None => return current,
                    Some(true) => {
                        current = complement;
                        n = n.saturating_sub(1).max(2);
                        reduced = true;
                        break;
                    }
                    Some(false) => {}
                }
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Stage;

    const FAULTY: &str = "global g;\n\
                          proc main() { g = 1; call f(2, 3); print g; }\n\
                          proc f(a, b) { g = a + b; call h(a * b); }\n\
                          proc h(x) { print x; }\n";

    #[test]
    fn healthy_program_has_nothing_to_reduce() {
        let out = reduce(FAULTY, &Config::default(), &ReduceCheck::Degraded, 500);
        assert!(out.is_none(), "no degradation to reproduce");
    }

    #[test]
    fn reduces_an_injected_panic_to_the_faulty_procedure() {
        // Panic injected into f's jump unit: the minimal reproducer needs
        // main (reachability) and f, but h should be dropped.
        let f_index = 1;
        let config = Config::default().with_panic(Stage::Jump, f_index);
        let out = reduce(FAULTY, &config, &ReduceCheck::Quarantine, 2_000)
            .expect("fault must reproduce on the original");
        assert!(is_interesting(
            &out.source,
            &config,
            &ReduceCheck::Quarantine
        ));
        assert!(out.reduced_bytes <= out.original_bytes);
        assert!(out.tests > 0);
    }

    #[test]
    fn reduces_a_real_panic_with_quarantine_off() {
        let config = Config::default().with_panic(Stage::Jump, 1);
        let out = reduce(FAULTY, &config, &ReduceCheck::Panic, 2_000)
            .expect("panic must reproduce with quarantine off");
        assert!(is_interesting(&out.source, &config, &ReduceCheck::Panic));
    }

    #[test]
    fn reduces_budget_degradations() {
        let config = Config::default().with_fault(Stage::Solver, 1);
        let out =
            reduce(FAULTY, &config, &ReduceCheck::Degraded, 2_000).expect("fault must reproduce");
        // A single-procedure program still runs the solver once.
        assert!(out.source.contains("main"), "{}", out.source);
    }

    #[test]
    fn soundness_oracle_passes_on_sound_analyses() {
        let m = ipcp_ir::lower_module(&ipcp_ir::parse_and_resolve(FAULTY).unwrap());
        assert_eq!(soundness_violation(&m, &Config::polynomial(), &[]), None);
    }

    #[test]
    fn test_budget_bounds_the_search() {
        let config = Config::default().with_fault(Stage::Solver, 1);
        let out = reduce(FAULTY, &config, &ReduceCheck::Degraded, 3).expect("fault must reproduce");
        assert!(out.tests <= 3, "budget 3 exceeded: {} tests", out.tests);
    }

    /// Regression: mid-ddmin candidates that fail to parse must still be
    /// charged to the `max_tests` budget — a parse failure is one cheap
    /// predicate test, not a free pass around the counter. FAULTY is
    /// built so most single-line drops unresolve a callee, which is
    /// exactly the unparseable-candidate shape the soundness-check path
    /// sees.
    #[test]
    fn max_tests_is_honored_when_candidates_fail_to_parse() {
        let config = Config::default().with_panic(Stage::Jump, 1);
        for budget in [1usize, 4, 10] {
            let out = reduce(FAULTY, &config, &ReduceCheck::Quarantine, budget)
                .expect("fault must reproduce on the original");
            assert!(
                out.tests <= budget,
                "budget {budget} exceeded: {} tests",
                out.tests
            );
        }
    }

    /// The interpreter-soundness check rejects an unparseable candidate
    /// as uninteresting (one cheap test) instead of probing the oracle.
    #[test]
    fn unsound_check_rejects_unparseable_candidates() {
        let check = ReduceCheck::Unsound { inputs: vec![1, 2] };
        assert!(!is_interesting(
            "proc main( {",
            &Config::polynomial(),
            &check
        ));
        assert!(!is_interesting("", &Config::polynomial(), &check));
    }

    /// Structural pre-pass probes share the one budget: candidates a
    /// prepass evaluates count exactly like ddmin candidates.
    #[test]
    fn prepass_probes_are_charged_to_the_budget() {
        let config = Config::default().with_panic(Stage::Jump, 1);
        let rounds = std::cell::Cell::new(0u32);
        let pass: &StructuralPass = &|cur, probe| {
            if rounds.get() >= 8 {
                return None;
            }
            rounds.set(rounds.get() + 1);
            // Probe two truncated (unparseable) candidates; neither is
            // interesting, so the pass reports no progress.
            for cut in 1..3usize {
                probe(&cur[..cur.len() - cut])?;
            }
            None
        };
        let out = reduce_with_prepass(FAULTY, &config, &ReduceCheck::Quarantine, 4, Some(pass))
            .expect("fault must reproduce on the original");
        assert!(
            out.tests <= 4,
            "prepass escaped the budget: {} tests",
            out.tests
        );
    }

    /// A prepass that claims progress without shrinking must not loop.
    #[test]
    fn prepass_without_strict_progress_terminates() {
        let config = Config::default().with_panic(Stage::Jump, 1);
        let pass: &StructuralPass = &|cur, _probe| Some(cur.to_string());
        let out = reduce_with_prepass(FAULTY, &config, &ReduceCheck::Quarantine, 200, Some(pass))
            .expect("fault must reproduce on the original");
        assert!(is_interesting(
            &out.source,
            &config,
            &ReduceCheck::Quarantine
        ));
    }

    /// When the token pass makes no progress, its whitespace-normalized
    /// rejoin was never probed; `ddmin_text` must verify it before
    /// preferring it over the line-verified form.
    #[test]
    fn unverified_whitespace_normalization_is_rolled_back() {
        let src = "keep\nme";
        let mut probe = |c: &str| -> Option<bool> { Some(c.contains("keep") && c.contains('\n')) };
        let out = ddmin_text(src, &mut probe);
        assert!(
            out.contains('\n'),
            "returned a form the predicate rejects: {out:?}"
        );
    }
}
