//! The interprocedural propagation step: iterate `VAL` sets over the call
//! graph until the `CONSTANTS(p)` sets stabilize (§2, §4.1).
//!
//! Each procedure `p` carries a vector `VAL_p` with one lattice element
//! per entry slot. All slots start at ⊤ except the entry procedure's,
//! which start at ⊥ (nothing is known about `main`'s environment — the
//! FORTRAN "uninitialized COMMON" assumption; see
//! [`Config::assume_zero_globals`](crate::config::Config) for the FT-exact
//! alternative). Call sites evaluate their jump functions under the
//! caller's current `VAL` and meet the results into the callee's `VAL`;
//! because each element can be lowered at most twice (Figure 1), the
//! iteration terminates quickly.
//!
//! # The wavefront schedule
//!
//! The solve runs as a wavefront over the top-down levels of the
//! call-graph SCC condensation. A cross-SCC call edge always targets a
//! strictly later level, so the SCCs of one level never feed each other:
//! they can be re-evaluated concurrently, and — since every jump function
//! is monotone in its lattice inputs — one top-down pass with a local
//! FIFO fixpoint inside each SCC reaches exactly the fixpoint the classic
//! sequential worklist reaches. Each SCC unit is *dirty-driven*: it runs
//! only when some member received a lowering meet (or is the entry), so
//! the activation set matches the sequential worklist's and unreached
//! procedures keep ⊤ untouched.
//!
//! Under `jobs > 1` the units of one level run on the
//! [`par`](crate::par) worker pool against optimistic [`Governor`]
//! shards; the results are folded back in the canonical order (ascending
//! level, ascending SCC index) with
//! [`Governor::can_absorb`]/[`Governor::absorb_shard`], replaying a unit
//! against the master governor whenever its shard charges could not be
//! proven bit-identical to sequential charging. Meets into callee `VAL`
//! vectors are recorded per (caller, call site, slot) inside the unit and
//! applied only during the fold, so the final `vals`, `meets`, and
//! `iterations` are identical for every jobs count — the same contract
//! the per-procedure phases follow (`docs/ROBUSTNESS.md`, "Concurrency
//! contract").

use crate::config::{Config, Stage};
use crate::health::Governor;
use crate::jump::ForwardJumpFns;
use crate::par::{PhaseTime, Pool, Scratch};
use crate::pipeline::{PhaseFold, PhaseUnit, UnitError};
use ipcp_analysis::CallGraph;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::{ProcId, SlotLayout};
use ipcp_ssa::Lattice;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// The fixpoint `VAL` sets: `vals[p][slot]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValSets {
    /// Per procedure, per entry slot.
    pub vals: Vec<Vec<Lattice>>,
    /// Number of meet operations performed (reported by the cost model).
    pub meets: usize,
    /// Number of worklist iterations (procedure re-evaluations).
    pub iterations: usize,
}

impl ValSets {
    /// The `VAL` vector of `p`.
    pub fn of(&self, p: ProcId) -> &[Lattice] {
        &self.vals[p.index()]
    }

    /// `CONSTANTS(p)`: the `(slot, value)` pairs that always hold on entry
    /// to `p`.
    pub fn constants(&self, p: ProcId) -> Vec<(usize, i64)> {
        self.vals[p.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_const().map(|c| (i, c)))
            .collect()
    }

    /// Total number of constant slots across all procedures.
    pub fn n_constants(&self) -> usize {
        self.vals
            .iter()
            .map(|v| v.iter().filter(|l| l.is_const()).count())
            .sum()
    }

    /// Renders `CONSTANTS(p)` for every reachable procedure with names.
    pub fn display<'a>(&'a self, mcfg: &'a ModuleCfg, layout: &'a SlotLayout) -> ValDisplay<'a> {
        ValDisplay {
            vals: self,
            mcfg,
            layout,
        }
    }
}

/// Pretty adapter returned by [`ValSets::display`].
#[derive(Debug)]
pub struct ValDisplay<'a> {
    vals: &'a ValSets,
    mcfg: &'a ModuleCfg,
    layout: &'a SlotLayout,
}

impl fmt::Display for ValDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pi, proc) in self.mcfg.module.procs.iter().enumerate() {
            let p = ProcId::from(pi);
            let consts = self.vals.constants(p);
            if consts.is_empty() {
                continue;
            }
            let rendered: Vec<String> = consts
                .iter()
                .map(|&(slot, c)| {
                    format!(
                        "{} = {c}",
                        self.layout.slot_name(&self.mcfg.module, p, slot)
                    )
                })
                .collect();
            writeln!(
                f,
                "CONSTANTS({}) = {{ {} }}",
                proc.name,
                rendered.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Groups the reachable SCCs of the condensation into top-down dependency
/// levels: the entry SCC sits at level 0, and every cross-SCC call edge
/// goes from a level to a strictly later one. Within a level no SCC calls
/// another, which is what makes same-level units independently
/// evaluatable.
///
/// Tarjan emits callee SCCs before caller SCCs, so iterating caller SCCs
/// in *descending* index order sees every caller's final level before
/// relaxing its callees.
fn topdown_levels(cg: &CallGraph) -> Vec<Vec<usize>> {
    let n_sccs = cg.sccs.len();
    let reachable_scc = |si: usize| cg.sccs[si].first().is_some_and(|p| cg.reachable[p.index()]);
    let mut level = vec![0usize; n_sccs];
    for si in (0..n_sccs).rev() {
        if !reachable_scc(si) {
            continue;
        }
        for &p in &cg.sccs[si] {
            for edge in cg.calls_from(p) {
                let cs = cg.scc_of[edge.callee.index()];
                if cs != si {
                    level[cs] = level[cs].max(level[si] + 1);
                }
            }
        }
    }
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for si in 0..n_sccs {
        if !reachable_scc(si) {
            continue;
        }
        while levels.len() <= level[si] {
            levels.push(Vec::new());
        }
        levels[level[si]].push(si);
    }
    levels
}

/// What one SCC unit's evaluation produced, before the fold commits it.
struct UnitEval {
    /// Final `VAL` vectors for the SCC members, in member order.
    member_vals: Vec<Vec<Lattice>>,
    /// Lattice contributions to callees *outside* the SCC, recorded in
    /// (member, call site, slot) evaluation order and applied by the
    /// fold. `(callee proc index, slot, incoming value)`.
    contribs: Vec<(usize, usize, Lattice)>,
    meets: usize,
    iterations: usize,
    /// A governor charge failed mid-unit (budget cap or injected fault).
    tripped: bool,
    /// A cooperative check observed the expired wall-clock deadline.
    deadline: bool,
}

/// Evaluates one SCC unit: a local FIFO fixpoint over the members, seeded
/// by their dirty flags. Pure with respect to the global solver state —
/// member `VAL`s are copied in, and meets into external callees are
/// recorded as contributions, not applied. The same function serves the
/// optimistic parallel pass (against a governor shard) and the
/// deterministic replay (against the master), so both charge and panic at
/// the same internal step.
#[allow(clippy::too_many_arguments)]
fn eval_unit(
    cg: &CallGraph,
    jump_fns: &ForwardJumpFns,
    config: &Config,
    members: &[ProcId],
    scc: usize,
    vals: &[Vec<Lattice>],
    dirty: &[bool],
    gov: &mut Governor,
    scratch: &mut Scratch,
) -> UnitEval {
    let mut out = UnitEval {
        member_vals: members.iter().map(|&p| vals[p.index()].clone()).collect(),
        // Presized for a typical unit's external contributions — spares
        // the realloc chain on fan-out-heavy procedures.
        contribs: Vec::with_capacity(64),
        meets: 0,
        iterations: 0,
        tripped: false,
        deadline: false,
    };
    // The per-unit `queued` flags and FIFO worklist live in the
    // participant's reusable scratch — one allocation per worker per
    // round instead of two per SCC unit.
    scratch.reset(members.len());
    let Scratch {
        flags: queued,
        queue: work,
    } = scratch;
    for (li, &p) in members.iter().enumerate() {
        if dirty[p.index()] {
            queued[li] = true;
            work.push_back(li);
        }
    }
    while let Some(li) = work.pop_front() {
        let p = members[li];
        if gov.deadline_expired() {
            out.deadline = true;
            return out;
        }
        // The deterministic panic-injection hook fires per *procedure
        // re-evaluation*, so an injected solver panic lands mid-wavefront
        // exactly when the named procedure's unit is activated.
        crate::quarantine::maybe_inject(config, Stage::Solver, p.index());
        if !gov.charge(Stage::Solver) {
            out.tripped = true;
            return out;
        }
        queued[li] = false;
        out.iterations += 1;
        for edge in cg.calls_from(p) {
            let site_fns = jump_fns.at(p, edge.site);
            if site_fns.is_empty() {
                continue; // unreachable call site
            }
            if cg.scc_of[edge.callee.index()] == scc {
                // Intra-SCC meet mutates a member vector (possibly the
                // caller's own), so evaluate against a snapshot.
                let caller_vals = out.member_vals[li].clone();
                let Some(lj) = members.iter().position(|&m| m == edge.callee) else {
                    unreachable!("intra-SCC callee missing from member list");
                };
                let mut changed = false;
                for (slot, jf) in site_fns.iter().enumerate() {
                    let incoming = jf.eval(|v| {
                        caller_vals
                            .get(v as usize)
                            .copied()
                            .unwrap_or(Lattice::Bottom)
                    });
                    out.meets += 1;
                    changed |= out.member_vals[lj][slot].meet_in(incoming);
                }
                if changed && !queued[lj] {
                    queued[lj] = true;
                    work.push_back(lj);
                }
            } else {
                // External contributions only read the caller's vector —
                // no snapshot needed (the in-place worklist cannot make
                // this split, which is part of the wavefront's edge).
                let caller_vals = &out.member_vals[li];
                for (slot, jf) in site_fns.iter().enumerate() {
                    let incoming = jf.eval(|v| {
                        caller_vals
                            .get(v as usize)
                            .copied()
                            .unwrap_or(Lattice::Bottom)
                    });
                    out.meets += 1;
                    out.contribs.push((edge.callee.index(), slot, incoming));
                }
            }
        }
    }
    out
}

/// Runs [`eval_unit`] under the quarantine contract: panics are contained
/// (with the quiet hook) when `config.quarantine` is on, and propagate
/// when it is off — the same semantics `quarantine::run_unit` gives the
/// per-procedure phases, minus the unit-entry injection (the solver fires
/// the hook per member re-evaluation instead).
#[allow(clippy::too_many_arguments)]
fn eval_unit_guarded(
    cg: &CallGraph,
    jump_fns: &ForwardJumpFns,
    config: &Config,
    members: &[ProcId],
    scc: usize,
    vals: &[Vec<Lattice>],
    dirty: &[bool],
    gov: &mut Governor,
    scratch: &mut Scratch,
) -> Result<UnitEval, UnitError> {
    if config.quarantine {
        crate::quarantine::quiet_catch(|| {
            eval_unit(
                cg, jump_fns, config, members, scc, vals, dirty, gov, scratch,
            )
        })
        .map_err(|msg| UnitError::new(Stage::Solver, scc, msg))
    } else {
        Ok(eval_unit(
            cg, jump_fns, config, members, scc, vals, dirty, gov, scratch,
        ))
    }
}

/// The counters a unit evaluation reports back to the fold, without the
/// buffered state (which the in-place mode applies as it goes).
struct UnitOutcome {
    meets: usize,
    iterations: usize,
    tripped: bool,
    deadline: bool,
}

/// The in-place twin of [`eval_unit`], used on the canonical path
/// (`jobs <= 1` and replays): the same per-pop sequence — deadline check,
/// panic injection, governor charge, edge evaluation in call-site order —
/// but meets land directly in `vals`/`dirty` instead of being buffered.
///
/// This is observation-equivalent to evaluate-then-commit: external
/// callees live at strictly later levels (same-level SCCs never call each
/// other), so nothing reads them before this level's fold completes; and
/// on a panic/trip/deadline the partially applied meets are erased by the
/// quarantine ⊥-fill or `degrade_reachable` exactly as the buffered
/// mode's discarded state would have been. What it buys: no member-vector
/// copies, no contribution buffer, and — via `mem::take` of the caller's
/// row — no per-edge snapshot for external calls either.
#[allow(clippy::too_many_arguments)]
fn eval_unit_inplace(
    cg: &CallGraph,
    jump_fns: &ForwardJumpFns,
    config: &Config,
    members: &[ProcId],
    scc: usize,
    vals: &mut [Vec<Lattice>],
    dirty: &mut [bool],
    gov: &mut Governor,
    scratch: &mut Scratch,
) -> UnitOutcome {
    let mut out = UnitOutcome {
        meets: 0,
        iterations: 0,
        tripped: false,
        deadline: false,
    };
    scratch.reset(members.len());
    let Scratch {
        flags: queued,
        queue: work,
    } = scratch;
    for (li, &p) in members.iter().enumerate() {
        if dirty[p.index()] {
            queued[li] = true;
            work.push_back(li);
        }
    }
    while let Some(li) = work.pop_front() {
        let p = members[li];
        if gov.deadline_expired() {
            out.deadline = true;
            return out;
        }
        crate::quarantine::maybe_inject(config, Stage::Solver, p.index());
        if !gov.charge(Stage::Solver) {
            out.tripped = true;
            return out;
        }
        queued[li] = false;
        out.iterations += 1;
        // Take the caller's row out so callee rows can be met into
        // without aliasing it (external callees are always other rows).
        let mut caller_row = std::mem::take(&mut vals[p.index()]);
        for edge in cg.calls_from(p) {
            let site_fns = jump_fns.at(p, edge.site);
            if site_fns.is_empty() {
                continue; // unreachable call site
            }
            if cg.scc_of[edge.callee.index()] == scc {
                let Some(lj) = members.iter().position(|&m| m == edge.callee) else {
                    unreachable!("intra-SCC callee missing from member list");
                };
                // Intra-SCC meets may lower the caller's own row
                // (self-recursion lands in the taken row), so evaluate
                // against a snapshot — matching the buffered mode's
                // per-edge snapshot semantics.
                let snapshot = caller_row.clone();
                let mut changed = false;
                for (slot, jf) in site_fns.iter().enumerate() {
                    let incoming =
                        jf.eval(|v| snapshot.get(v as usize).copied().unwrap_or(Lattice::Bottom));
                    out.meets += 1;
                    let target = if edge.callee == p {
                        &mut caller_row[slot]
                    } else {
                        &mut vals[edge.callee.index()][slot]
                    };
                    changed |= target.meet_in(incoming);
                }
                if changed && !queued[lj] {
                    queued[lj] = true;
                    work.push_back(lj);
                }
            } else {
                let mut changed = false;
                let callee_row = &mut vals[edge.callee.index()];
                for (slot, jf) in site_fns.iter().enumerate() {
                    let incoming = jf.eval(|v| {
                        caller_row
                            .get(v as usize)
                            .copied()
                            .unwrap_or(Lattice::Bottom)
                    });
                    out.meets += 1;
                    changed |= callee_row[slot].meet_in(incoming);
                }
                if changed {
                    dirty[edge.callee.index()] = true;
                }
            }
        }
        vals[p.index()] = caller_row;
    }
    out
}

/// [`eval_unit_inplace`] under the same quarantine contract as
/// [`eval_unit_guarded`].
#[allow(clippy::too_many_arguments)]
fn eval_unit_inplace_guarded(
    cg: &CallGraph,
    jump_fns: &ForwardJumpFns,
    config: &Config,
    members: &[ProcId],
    scc: usize,
    vals: &mut [Vec<Lattice>],
    dirty: &mut [bool],
    gov: &mut Governor,
    scratch: &mut Scratch,
) -> Result<UnitOutcome, UnitError> {
    if config.quarantine {
        crate::quarantine::quiet_catch(|| {
            eval_unit_inplace(
                cg, jump_fns, config, members, scc, vals, dirty, gov, scratch,
            )
        })
        .map_err(|msg| UnitError::new(Stage::Solver, scc, msg))
    } else {
        Ok(eval_unit_inplace(
            cg, jump_fns, config, members, scc, vals, dirty, gov, scratch,
        ))
    }
}

/// Forces every reachable procedure's slots to ⊥ — the response to a
/// mid-solve budget trip or deadline expiry, when the partially descended
/// `VAL` sets are still optimistic (too high to be trusted). Unreachable
/// procedures keep ⊤, which is equally sound (they never execute).
fn degrade_reachable(vals: &mut [Vec<Lattice>], cg: &CallGraph) {
    for (pi, v) in vals.iter_mut().enumerate() {
        if cg.reachable[pi] {
            v.fill(Lattice::Bottom);
        }
    }
}

/// Runs the wavefront propagation (see the module docs for the schedule).
///
/// `entry_globals` is the initial assumption for the entry procedure's
/// global slots (⊥ for FORTRAN-style unknown, `Const(0)` for FT's defined
/// zero initialization). `jobs` is the worker count for the per-level
/// parallel pass (`<= 1` evaluates every unit inline against the master
/// governor — the canonical sequential order the parallel fold
/// reproduces).
///
/// Each procedure re-evaluation charges one [`Stage::Solver`] iteration
/// to the governor. If the budget trips (or the deadline expires)
/// mid-solve, every reachable procedure's slots are forced to ⊥ and a
/// degradation event is recorded. A panic inside one SCC's evaluation is
/// quarantined to that SCC: its members' entry slots and every
/// contribution they make to callees degrade to ⊥, `quarantined` is
/// marked for the members, and every other procedure keeps full
/// precision.
#[allow(clippy::too_many_arguments)]
pub fn solve(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    jump_fns: &ForwardJumpFns,
    entry_globals: Lattice,
    config: &Config,
    gov: &mut Governor,
    quarantined: &mut [bool],
    jobs: usize,
) -> (ValSets, PhaseTime) {
    // Standalone entry point: spin up a pool for the whole solve (one
    // spawn per solve, not one per wavefront level). The pipeline calls
    // `solve_on` directly with its own pool instead.
    crate::par::with_pool(jobs, |pool| {
        solve_on(
            mcfg,
            cg,
            layout,
            jump_fns,
            entry_globals,
            config,
            gov,
            quarantined,
            pool,
        )
    })
}

/// [`solve`] against an existing worker [`Pool`] — the pipeline threads
/// one pool through every phase so workers are spawned once per analysis
/// run and parked between rounds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_on(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    jump_fns: &ForwardJumpFns,
    entry_globals: Lattice,
    config: &Config,
    gov: &mut Governor,
    quarantined: &mut [bool],
    pool: &Pool<'_>,
) -> (ValSets, PhaseTime) {
    let t0 = Instant::now();
    let n_procs = mcfg.module.procs.len();
    let mut vals: Vec<Vec<Lattice>> = (0..n_procs)
        .map(|p| {
            let arity = mcfg.module.procs[p].arity();
            vec![Lattice::Top; layout.n_slots(arity)]
        })
        .collect();

    // The entry procedure is invoked by the environment: nothing is known
    // about its formals (main has none) and its globals get the configured
    // assumption.
    let entry = mcfg.module.entry;
    {
        let arity = mcfg.module.proc(entry).arity();
        for (i, v) in vals[entry.index()].iter_mut().enumerate() {
            *v = if i < arity {
                Lattice::Bottom
            } else {
                entry_globals
            };
        }
    }

    let mut dirty = vec![false; n_procs];
    dirty[entry.index()] = true;

    let mut meets = 0usize;
    let mut iterations = 0usize;
    let levels = topdown_levels(cg);
    let n_units: usize = levels.iter().map(Vec::len).sum();
    let mut par_time = PhaseTime::default();
    let mut fold = PhaseFold::default();
    // The canonical fold's replay scratch, reused across every level.
    let mut fold_scratch = Scratch::default();

    // Dispatching a round to the (parked) pool still costs a few
    // park/unpark round-trips; a level with only a couple of activated
    // units is cheaper to evaluate inline on the canonical path. Pure
    // scheduling — the fold below produces identical results either way.
    const MIN_PAR_UNITS: usize = 16;

    'levels: for level in &levels {
        // Optimistic parallel pass: every activated unit of the level runs
        // on the pool against a fresh governor shard. Units read only
        // their own members' (disjoint) slices of `vals`/`dirty`, so the
        // inputs each unit sees are exactly what the canonical fold below
        // would hand it.
        let mut optimistic: Vec<Option<PhaseUnit<UnitEval>>> = Vec::new();
        let n_active = level
            .iter()
            .filter(|&&si| cg.sccs[si].iter().any(|&m| dirty[m.index()]))
            .count();
        if pool.parallel() && n_active >= MIN_PAR_UNITS {
            let proto = gov.shard();
            let (outs, pt) = pool.run_with_scratch(level.len(), Scratch::default, |scratch, k| {
                let members: &[ProcId] = &cg.sccs[level[k]];
                if !members.iter().any(|&m| dirty[m.index()]) {
                    return None; // never activated — nothing to evaluate
                }
                let mut shard = proto.shard();
                let res = eval_unit_guarded(
                    cg, jump_fns, config, members, level[k], &vals, &dirty, &mut shard, scratch,
                );
                Some(PhaseUnit::new(k, res, shard))
            });
            par_time.absorb(pt);
            optimistic = outs;
        }

        // Canonical fold, in ascending SCC index order: absorb an
        // optimistic unit when its shard charges provably land exactly as
        // sequential charging would; replay it against the master
        // otherwise (the replay re-trips, re-panics, and re-observes the
        // deadline at the same internal step, because the unit's inputs
        // are identical).
        for (k, &si) in level.iter().enumerate() {
            let members: &[ProcId] = &cg.sccs[si];
            if !members.iter().any(|&m| dirty[m.index()]) {
                continue;
            }
            let unit: Result<UnitOutcome, UnitError> =
                match optimistic.get_mut(k).and_then(Option::take) {
                    Some(pu) => {
                        let clean = matches!(&pu.outcome, Ok(u) if !u.tripped && !u.deadline);
                        let absorbable = clean || pu.outcome.is_err();
                        match fold.try_absorb(gov, pu, absorbable) {
                            Some(Ok(u)) => {
                                // Commit the buffered unit: member rows
                                // move in, external contributions are
                                // met in recorded order. (Absorbed Ok
                                // units are always clean — tripped or
                                // deadlined ones replay below.)
                                let outcome = UnitOutcome {
                                    meets: u.meets,
                                    iterations: u.iterations,
                                    tripped: u.tripped,
                                    deadline: u.deadline,
                                };
                                for (vm, &m) in u.member_vals.into_iter().zip(members) {
                                    vals[m.index()] = vm;
                                }
                                for (callee, slot, incoming) in u.contribs {
                                    if vals[callee][slot].meet_in(incoming) {
                                        dirty[callee] = true;
                                    }
                                }
                                Ok(outcome)
                            }
                            Some(Err(e)) => Err(e),
                            None => eval_unit_inplace_guarded(
                                cg,
                                jump_fns,
                                config,
                                members,
                                si,
                                &mut vals,
                                &mut dirty,
                                gov,
                                &mut fold_scratch,
                            ),
                        }
                    }
                    None => eval_unit_inplace_guarded(
                        cg,
                        jump_fns,
                        config,
                        members,
                        si,
                        &mut vals,
                        &mut dirty,
                        gov,
                        &mut fold_scratch,
                    ),
                };
            match unit {
                Err(e) => {
                    // Quarantine the whole SCC: a panic mid-fixpoint means
                    // the members' values (and any contribution they would
                    // have made) cannot be trusted to be post-fixpoint, so
                    // everything the unit touches degrades to ⊥. Skipping
                    // a call site's contribution instead would leave its
                    // callee unsoundly optimistic.
                    for &m in members {
                        quarantined[m.index()] = true;
                    }
                    let names = members
                        .iter()
                        .map(|&m| mcfg.module.proc(m).name.as_str())
                        .collect::<Vec<_>>()
                        .join("+");
                    gov.record_quarantine(
                        Stage::Solver,
                        format!(
                            "{names}: panic contained ({}); entry slots and \
                             outgoing call contributions forced to ⊥",
                            e.message
                        ),
                    );
                    for &m in members {
                        vals[m.index()].fill(Lattice::Bottom);
                    }
                    for &m in members {
                        for edge in cg.calls_from(m) {
                            if cg.scc_of[edge.callee.index()] == si {
                                continue;
                            }
                            let n_fns = jump_fns.at(m, edge.site).len();
                            let callee_vals = &mut vals[edge.callee.index()];
                            let mut changed = false;
                            for v in callee_vals.iter_mut().take(n_fns) {
                                changed |= v.meet_in(Lattice::Bottom);
                            }
                            if changed {
                                dirty[edge.callee.index()] = true;
                            }
                        }
                    }
                }
                Ok(u) => {
                    meets += u.meets;
                    iterations += u.iterations;
                    if u.deadline {
                        gov.record_deadline(
                            Stage::Solver,
                            format!(
                                "deadline expired after {iterations} re-evaluations; \
                                 all reachable entry slots forced to ⊥"
                            ),
                        );
                        degrade_reachable(&mut vals, cg);
                        break 'levels;
                    }
                    if u.tripped {
                        gov.record(
                            Stage::Solver,
                            format!(
                                "iteration budget exhausted after {iterations} re-evaluations; \
                                 all reachable entry slots forced to ⊥"
                            ),
                        );
                        degrade_reachable(&mut vals, cg);
                        break 'levels;
                    }
                }
            }
        }
    }

    let time = if !pool.parallel() {
        PhaseTime::sequential(t0.elapsed(), n_units)
    } else {
        PhaseTime {
            wall: t0.elapsed(),
            busy: par_time.busy,
            workers: par_time.workers.max(1),
            units: n_units,
            absorbed: fold.absorbed,
            replayed: fold.replayed,
        }
    };
    (
        ValSets {
            vals,
            meets,
            iterations,
        },
        time,
    )
}

/// The classic §4.1 FIFO worklist propagation, retained as a reference
/// implementation: a differential oracle for the wavefront solver (both
/// compute the same fixpoint `vals`, proven by test) and the baseline the
/// `bench_solver` binary measures the wavefront against. The worklist
/// re-evaluates a procedure every time a meet lowers one of its slots;
/// the wavefront's dependency-levelled schedule evaluates each activated
/// SCC once, with the meets from all its callers already applied — that
/// difference (fewer re-evaluations, not just concurrency) is where the
/// solver speedup comes from.
///
/// `meets`/`iterations` are schedule-dependent here and generally
/// *higher* than the wavefront's; only `vals` is comparable.
pub fn solve_worklist_reference(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    jump_fns: &ForwardJumpFns,
    entry_globals: Lattice,
    gov: &mut Governor,
) -> ValSets {
    let n_procs = mcfg.module.procs.len();
    let mut vals: Vec<Vec<Lattice>> = (0..n_procs)
        .map(|p| {
            let arity = mcfg.module.procs[p].arity();
            vec![Lattice::Top; layout.n_slots(arity)]
        })
        .collect();
    let entry = mcfg.module.entry;
    {
        let arity = mcfg.module.proc(entry).arity();
        for (i, v) in vals[entry.index()].iter_mut().enumerate() {
            *v = if i < arity {
                Lattice::Bottom
            } else {
                entry_globals
            };
        }
    }

    let mut meets = 0usize;
    let mut iterations = 0usize;
    let mut queued = vec![false; n_procs];
    let mut work: VecDeque<ProcId> = VecDeque::new();
    work.push_back(entry);
    queued[entry.index()] = true;

    while let Some(p) = work.pop_front() {
        if gov.deadline_expired() || !gov.charge(Stage::Solver) {
            degrade_reachable(&mut vals, cg);
            break;
        }
        queued[p.index()] = false;
        iterations += 1;
        for edge in cg.calls_from(p) {
            let site_fns = jump_fns.at(p, edge.site);
            if site_fns.is_empty() {
                continue;
            }
            let caller_vals = vals[p.index()].clone();
            let callee_vals = &mut vals[edge.callee.index()];
            let mut changed = false;
            for (slot, jf) in site_fns.iter().enumerate() {
                let incoming = jf.eval(|v| {
                    caller_vals
                        .get(v as usize)
                        .copied()
                        .unwrap_or(Lattice::Bottom)
                });
                meets += 1;
                changed |= callee_vals[slot].meet_in(incoming);
            }
            if changed && !queued[edge.callee.index()] {
                queued[edge.callee.index()] = true;
                work.push_back(edge.callee);
            }
        }
    }

    ValSets {
        vals,
        meets,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, JumpFnKind};
    use crate::pipeline::Analysis;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn vals(src: &str, config: Config) -> (ipcp_ir::ModuleCfg, SlotLayout, ValSets) {
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let a = Analysis::run(&m, &config);
        let layout = SlotLayout::new(&m.module);
        (m, layout, a.vals)
    }

    fn slot_const(
        m: &ipcp_ir::ModuleCfg,
        layout: &SlotLayout,
        v: &ValSets,
        proc: &str,
        slot_name: &str,
    ) -> Lattice {
        let p = m.module.proc_named(proc).unwrap();
        let n = layout.n_slots(p.arity());
        for slot in 0..n {
            if layout.slot_name(&m.module, p.id, slot) == slot_name {
                return v.of(p.id)[slot];
            }
        }
        panic!("no slot {slot_name} in {proc}");
    }

    #[test]
    fn literal_argument_propagates_one_edge() {
        let (m, layout, v) = vals(
            "proc main() { call f(42); } proc f(a) { print a; }",
            Config::default().with_jump_fn(JumpFnKind::Literal),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Const(42));
    }

    #[test]
    fn conflicting_call_sites_meet_to_bottom() {
        let (m, layout, v) = vals(
            "proc main() { call f(1); call f(2); } proc f(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Bottom);
    }

    #[test]
    fn agreeing_call_sites_stay_constant() {
        let (m, layout, v) = vals(
            "proc main() { call f(5); call f(5); } proc f(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Const(5));
    }

    #[test]
    fn pass_through_chains_propagate_deep() {
        let src = "proc main() { call a(9); } \
                   proc a(x) { call b(x); } \
                   proc b(y) { call c(y); } \
                   proc c(z) { print z; }";
        // Pass-through: reaches c.
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "c", "z"), Lattice::Const(9));
        // Intraprocedural-constant: only one edge deep.
        let (m, layout, v) = vals(
            src,
            Config::default().with_jump_fn(JumpFnKind::IntraproceduralConstant),
        );
        assert_eq!(slot_const(&m, &layout, &v, "a", "x"), Lattice::Const(9));
        assert_eq!(slot_const(&m, &layout, &v, "b", "y"), Lattice::Bottom);
    }

    #[test]
    fn intraprocedural_beats_literal_on_computed_constants() {
        let src = "proc main() { n = 50 * 2; call f(n); } proc f(a) { print a; }";
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Literal));
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Bottom);
        let (m, layout, v) = vals(
            src,
            Config::default().with_jump_fn(JumpFnKind::IntraproceduralConstant),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Const(100));
    }

    #[test]
    fn polynomial_propagates_arithmetic_on_formals() {
        let src = "proc main() { call f(10); } \
                   proc f(n) { call g(2 * n + 1); } \
                   proc g(m) { print m; }";
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Polynomial));
        assert_eq!(slot_const(&m, &layout, &v, "g", "m"), Lattice::Const(21));
        // Pass-through cannot represent 2n+1.
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "g", "m"), Lattice::Bottom);
    }

    #[test]
    fn globals_flow_through_non_literal_jump_fns() {
        let src = "global g; proc main() { g = 7; call f(); } proc f() { print g; }";
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Const(7));
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Literal));
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Bottom);
    }

    #[test]
    fn entry_globals_are_unknown_by_default() {
        let src = "global g; proc main() { call f(); } proc f() { print g; }";
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "main", "g"), Lattice::Bottom);
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Bottom);
    }

    #[test]
    fn unreached_procedures_stay_top() {
        let (m, layout, v) = vals(
            "proc main() { } proc dead(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "dead", "a"), Lattice::Top);
        assert_eq!(v.constants(m.module.proc_named("dead").unwrap().id), vec![]);
    }

    #[test]
    fn recursion_converges() {
        let src = "proc main() { call f(3, 10); } \
                   proc f(n, k) { if (n > 0) { m = n - 1; call f(m, k); } print k; }";
        let (m, layout, v) = vals(src, Config::default());
        // n varies across the recursion (3, then m): ⊥.
        assert_eq!(slot_const(&m, &layout, &v, "f", "n"), Lattice::Bottom);
        // k is passed through unchanged at every site: stays 10.
        assert_eq!(slot_const(&m, &layout, &v, "f", "k"), Lattice::Const(10));
    }

    #[test]
    fn constants_report_names_values() {
        let (m, layout, v) = vals(
            "global g; proc main() { g = 3; call f(1, 2); } proc f(a, b) { print a + b + g; }",
            Config::default(),
        );
        let f = m.module.proc_named("f").unwrap().id;
        let consts = v.constants(f);
        assert_eq!(consts.len(), 3);
        let shown = v.display(&m, &layout).to_string();
        assert!(shown.contains("CONSTANTS(f)"), "{shown}");
        assert!(shown.contains("a = 1"), "{shown}");
        assert!(shown.contains("g = 3"), "{shown}");
    }

    #[test]
    fn levels_put_every_caller_strictly_above_its_callees() {
        let src = "proc main() { call a(1); call b(2); } \
                   proc a(x) { call c(x); call d(x); } \
                   proc b(y) { call d(y); } \
                   proc c(z) { call r(z); } \
                   proc d(w) { print w; } \
                   proc r(v) { if (v > 0) { call r(v - 1); } } \
                   proc dead(u) { call d(u); }";
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = ipcp_analysis::build_call_graph(&m);
        let levels = topdown_levels(&cg);
        let mut level_of = vec![usize::MAX; cg.sccs.len()];
        for (lv, sccs) in levels.iter().enumerate() {
            for &si in sccs {
                level_of[si] = lv;
            }
        }
        // The unreachable `dead` never gets a level.
        let dead = m.module.proc_named("dead").unwrap().id;
        assert_eq!(level_of[cg.scc_of[dead.index()]], usize::MAX);
        // Every reachable cross-SCC edge descends to a strictly later
        // level (same-level SCCs are independent).
        for (pi, _) in m.module.procs.iter().enumerate() {
            let p = ProcId::from(pi);
            if !cg.reachable[pi] {
                continue;
            }
            for edge in cg.calls_from(p) {
                let (cs, ps) = (cg.scc_of[edge.callee.index()], cg.scc_of[pi]);
                if cs != ps {
                    assert!(
                        level_of[cs] > level_of[ps],
                        "edge {pi} -> {} does not descend a level",
                        edge.callee.index()
                    );
                }
            }
        }
        // main is alone at level 0.
        assert_eq!(levels[0], vec![cg.scc_of[m.module.entry.index()]]);
    }

    #[test]
    fn wavefront_is_schedule_invariant_at_the_solver_level() {
        let src = "global g; \
                   proc main() { g = 4; call a(7); call b(7); call b(8); } \
                   proc a(x) { call shared(x); call rec(x); } \
                   proc b(y) { call shared(y); } \
                   proc shared(s) { print s + g; } \
                   proc rec(n) { if (n > 0) { call rec(n - 1); } }";
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let config = Config::polynomial();
        let a = Analysis::run(&m, &config);
        let layout = SlotLayout::new(&m.module);
        let n = m.module.procs.len();
        let entry_globals = Lattice::Bottom;
        let run = |jobs: usize| {
            let mut gov = Governor::new(&config);
            let mut q = vec![false; n];
            let (v, _) = solve(
                &m,
                &a.cg,
                &layout,
                &a.jump_fns,
                entry_globals,
                &config,
                &mut gov,
                &mut q,
                jobs,
            );
            (v, q)
        };
        let (seq, seq_q) = run(1);
        for jobs in [2, 4, 8] {
            let (par, par_q) = run(jobs);
            assert_eq!(par, seq, "jobs={jobs} diverged (vals/meets/iterations)");
            assert_eq!(par_q, seq_q, "jobs={jobs} quarantine flags diverged");
        }
    }

    #[test]
    fn wavefront_matches_the_worklist_reference_fixpoint() {
        // The classic §4.1 FIFO worklist and the wavefront must compute
        // the same VAL fixpoint (meets/iterations are schedule-dependent
        // and differ; only `vals` is comparable).
        let srcs = [
            "proc main() { call f(1); call f(2); call g(3); } \
             proc f(a) { call g(a); } \
             proc g(b) { print b; }",
            "global g; \
             proc main() { g = 4; call a(7); call b(7); call b(8); } \
             proc a(x) { call shared(x); call rec(x); } \
             proc b(y) { call shared(y); } \
             proc shared(s) { print s + g; } \
             proc rec(n) { if (n > 0) { call rec(n - 1); } }",
            "proc main() { call even(10); } \
             proc even(n) { if (n > 0) { m = n - 1; call odd(m); } } \
             proc odd(n) { if (n > 0) { m = n - 1; call even(m); } } \
             proc dead(a) { print a; }",
        ];
        for src in srcs {
            let m = lower_module(&parse_and_resolve(src).unwrap());
            for config in [Config::default(), Config::polynomial()] {
                let a = Analysis::run(&m, &config);
                let layout = SlotLayout::new(&m.module);
                let reference = solve_worklist_reference(
                    &m,
                    &a.cg,
                    &layout,
                    &a.jump_fns,
                    Lattice::Bottom,
                    &mut Governor::unlimited(),
                );
                assert_eq!(
                    a.vals.vals, reference.vals,
                    "wavefront and worklist fixpoints diverged on {src}"
                );
            }
        }
    }
}
