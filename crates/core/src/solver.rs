//! The interprocedural propagation step: iterate `VAL` sets over the call
//! graph until the `CONSTANTS(p)` sets stabilize (§2, §4.1).
//!
//! Each procedure `p` carries a vector `VAL_p` with one lattice element
//! per entry slot. All slots start at ⊤ except the entry procedure's,
//! which start at ⊥ (nothing is known about `main`'s environment — the
//! FORTRAN "uninitialized COMMON" assumption; see
//! [`Config::assume_zero_globals`](crate::config::Config) for the FT-exact
//! alternative). A worklist pass evaluates every call site's jump
//! functions under the caller's current `VAL` and meets the results into
//! the callee's `VAL`; because each element can be lowered at most twice
//! (Figure 1), the iteration terminates quickly.

use crate::config::Stage;
use crate::health::Governor;
use crate::jump::ForwardJumpFns;
use ipcp_analysis::CallGraph;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::{ProcId, SlotLayout};
use ipcp_ssa::Lattice;
use std::collections::VecDeque;
use std::fmt;

/// The fixpoint `VAL` sets: `vals[p][slot]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValSets {
    /// Per procedure, per entry slot.
    pub vals: Vec<Vec<Lattice>>,
    /// Number of meet operations performed (reported by the cost model).
    pub meets: usize,
    /// Number of worklist iterations (procedure re-evaluations).
    pub iterations: usize,
}

impl ValSets {
    /// The `VAL` vector of `p`.
    pub fn of(&self, p: ProcId) -> &[Lattice] {
        &self.vals[p.index()]
    }

    /// `CONSTANTS(p)`: the `(slot, value)` pairs that always hold on entry
    /// to `p`.
    pub fn constants(&self, p: ProcId) -> Vec<(usize, i64)> {
        self.vals[p.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_const().map(|c| (i, c)))
            .collect()
    }

    /// Total number of constant slots across all procedures.
    pub fn n_constants(&self) -> usize {
        self.vals
            .iter()
            .map(|v| v.iter().filter(|l| l.is_const()).count())
            .sum()
    }

    /// Renders `CONSTANTS(p)` for every reachable procedure with names.
    pub fn display<'a>(&'a self, mcfg: &'a ModuleCfg, layout: &'a SlotLayout) -> ValDisplay<'a> {
        ValDisplay {
            vals: self,
            mcfg,
            layout,
        }
    }
}

/// Pretty adapter returned by [`ValSets::display`].
#[derive(Debug)]
pub struct ValDisplay<'a> {
    vals: &'a ValSets,
    mcfg: &'a ModuleCfg,
    layout: &'a SlotLayout,
}

impl fmt::Display for ValDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pi, proc) in self.mcfg.module.procs.iter().enumerate() {
            let p = ProcId::from(pi);
            let consts = self.vals.constants(p);
            if consts.is_empty() {
                continue;
            }
            let rendered: Vec<String> = consts
                .iter()
                .map(|&(slot, c)| {
                    format!("{} = {c}", self.layout.slot_name(&self.mcfg.module, p, slot))
                })
                .collect();
            writeln!(f, "CONSTANTS({}) = {{ {} }}", proc.name, rendered.join(", "))?;
        }
        Ok(())
    }
}

/// Runs the worklist propagation.
///
/// `entry_globals` is the initial assumption for the entry procedure's
/// global slots (⊥ for FORTRAN-style unknown, `Const(0)` for FT's defined
/// zero initialization).
///
/// Each procedure re-evaluation charges one [`Stage::Solver`] iteration to
/// the governor. If the budget trips mid-solve, the partially descended
/// `VAL` sets are still optimistic (too high to be trusted), so every
/// reachable procedure's slots are forced to ⊥ — the lattice's always-safe
/// answer — and a degradation event is recorded. Unreachable procedures
/// keep ⊤, which is equally sound (they never execute).
pub fn solve(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    jump_fns: &ForwardJumpFns,
    entry_globals: Lattice,
    gov: &mut Governor,
) -> ValSets {
    let n_procs = mcfg.module.procs.len();
    let mut vals: Vec<Vec<Lattice>> = (0..n_procs)
        .map(|p| {
            let arity = mcfg.module.procs[p].arity();
            vec![Lattice::Top; layout.n_slots(arity)]
        })
        .collect();

    // The entry procedure is invoked by the environment: nothing is known
    // about its formals (main has none) and its globals get the configured
    // assumption.
    let entry = mcfg.module.entry;
    {
        let arity = mcfg.module.proc(entry).arity();
        for (i, v) in vals[entry.index()].iter_mut().enumerate() {
            *v = if i < arity { Lattice::Bottom } else { entry_globals };
        }
    }

    let mut meets = 0usize;
    let mut iterations = 0usize;
    let mut queued = vec![false; n_procs];
    let mut work: VecDeque<ProcId> = VecDeque::new();
    work.push_back(entry);
    queued[entry.index()] = true;

    while let Some(p) = work.pop_front() {
        if gov.deadline_expired() {
            gov.record_deadline(
                Stage::Solver,
                format!(
                    "deadline expired after {iterations} re-evaluations; \
                     all reachable entry slots forced to ⊥"
                ),
            );
            for (pi, v) in vals.iter_mut().enumerate() {
                if cg.reachable[pi] {
                    v.fill(Lattice::Bottom);
                }
            }
            break;
        }
        if !gov.charge(Stage::Solver) {
            gov.record(
                Stage::Solver,
                format!(
                    "iteration budget exhausted after {iterations} re-evaluations; \
                     all reachable entry slots forced to ⊥"
                ),
            );
            for (pi, v) in vals.iter_mut().enumerate() {
                if cg.reachable[pi] {
                    v.fill(Lattice::Bottom);
                }
            }
            break;
        }
        queued[p.index()] = false;
        iterations += 1;
        for edge in cg.calls_from(p) {
            let site_fns = jump_fns.at(p, edge.site);
            if site_fns.is_empty() {
                continue; // unreachable call site
            }
            let caller_vals = vals[p.index()].clone();
            let callee_vals = &mut vals[edge.callee.index()];
            let mut changed = false;
            for (slot, jf) in site_fns.iter().enumerate() {
                let incoming = jf.eval(|v| {
                    caller_vals
                        .get(v as usize)
                        .copied()
                        .unwrap_or(Lattice::Bottom)
                });
                meets += 1;
                changed |= callee_vals[slot].meet_in(incoming);
            }
            if changed && !queued[edge.callee.index()] {
                queued[edge.callee.index()] = true;
                work.push_back(edge.callee);
            }
        }
    }

    ValSets {
        vals,
        meets,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, JumpFnKind};
    use crate::pipeline::Analysis;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn vals(src: &str, config: Config) -> (ipcp_ir::ModuleCfg, SlotLayout, ValSets) {
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let a = Analysis::run(&m, &config);
        let layout = SlotLayout::new(&m.module);
        (m, layout, a.vals)
    }

    fn slot_const(
        m: &ipcp_ir::ModuleCfg,
        layout: &SlotLayout,
        v: &ValSets,
        proc: &str,
        slot_name: &str,
    ) -> Lattice {
        let p = m.module.proc_named(proc).unwrap();
        let n = layout.n_slots(p.arity());
        for slot in 0..n {
            if layout.slot_name(&m.module, p.id, slot) == slot_name {
                return v.of(p.id)[slot];
            }
        }
        panic!("no slot {slot_name} in {proc}");
    }

    #[test]
    fn literal_argument_propagates_one_edge() {
        let (m, layout, v) = vals(
            "proc main() { call f(42); } proc f(a) { print a; }",
            Config::default().with_jump_fn(JumpFnKind::Literal),
        );
        assert_eq!(
            slot_const(&m, &layout, &v, "f", "a"),
            Lattice::Const(42)
        );
    }

    #[test]
    fn conflicting_call_sites_meet_to_bottom() {
        let (m, layout, v) = vals(
            "proc main() { call f(1); call f(2); } proc f(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Bottom);
    }

    #[test]
    fn agreeing_call_sites_stay_constant() {
        let (m, layout, v) = vals(
            "proc main() { call f(5); call f(5); } proc f(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Const(5));
    }

    #[test]
    fn pass_through_chains_propagate_deep() {
        let src = "proc main() { call a(9); } \
                   proc a(x) { call b(x); } \
                   proc b(y) { call c(y); } \
                   proc c(z) { print z; }";
        // Pass-through: reaches c.
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "c", "z"), Lattice::Const(9));
        // Intraprocedural-constant: only one edge deep.
        let (m, layout, v) = vals(
            src,
            Config::default().with_jump_fn(JumpFnKind::IntraproceduralConstant),
        );
        assert_eq!(slot_const(&m, &layout, &v, "a", "x"), Lattice::Const(9));
        assert_eq!(slot_const(&m, &layout, &v, "b", "y"), Lattice::Bottom);
    }

    #[test]
    fn intraprocedural_beats_literal_on_computed_constants() {
        let src = "proc main() { n = 50 * 2; call f(n); } proc f(a) { print a; }";
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Literal));
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Bottom);
        let (m, layout, v) = vals(
            src,
            Config::default().with_jump_fn(JumpFnKind::IntraproceduralConstant),
        );
        assert_eq!(slot_const(&m, &layout, &v, "f", "a"), Lattice::Const(100));
    }

    #[test]
    fn polynomial_propagates_arithmetic_on_formals() {
        let src = "proc main() { call f(10); } \
                   proc f(n) { call g(2 * n + 1); } \
                   proc g(m) { print m; }";
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Polynomial));
        assert_eq!(slot_const(&m, &layout, &v, "g", "m"), Lattice::Const(21));
        // Pass-through cannot represent 2n+1.
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "g", "m"), Lattice::Bottom);
    }

    #[test]
    fn globals_flow_through_non_literal_jump_fns() {
        let src = "global g; proc main() { g = 7; call f(); } proc f() { print g; }";
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Const(7));
        let (m, layout, v) = vals(src, Config::default().with_jump_fn(JumpFnKind::Literal));
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Bottom);
    }

    #[test]
    fn entry_globals_are_unknown_by_default() {
        let src = "global g; proc main() { call f(); } proc f() { print g; }";
        let (m, layout, v) = vals(src, Config::default());
        assert_eq!(slot_const(&m, &layout, &v, "main", "g"), Lattice::Bottom);
        assert_eq!(slot_const(&m, &layout, &v, "f", "g"), Lattice::Bottom);
    }

    #[test]
    fn unreached_procedures_stay_top() {
        let (m, layout, v) = vals(
            "proc main() { } proc dead(a) { print a; }",
            Config::default(),
        );
        assert_eq!(slot_const(&m, &layout, &v, "dead", "a"), Lattice::Top);
        assert_eq!(v.constants(m.module.proc_named("dead").unwrap().id), vec![]);
    }

    #[test]
    fn recursion_converges() {
        let src = "proc main() { call f(3, 10); } \
                   proc f(n, k) { if (n > 0) { m = n - 1; call f(m, k); } print k; }";
        let (m, layout, v) = vals(src, Config::default());
        // n varies across the recursion (3, then m): ⊥.
        assert_eq!(slot_const(&m, &layout, &v, "f", "n"), Lattice::Bottom);
        // k is passed through unchanged at every site: stays 10.
        assert_eq!(slot_const(&m, &layout, &v, "f", "k"), Lattice::Const(10));
    }

    #[test]
    fn constants_report_names_values() {
        let (m, layout, v) = vals(
            "global g; proc main() { g = 3; call f(1, 2); } proc f(a, b) { print a + b + g; }",
            Config::default(),
        );
        let f = m.module.proc_named("f").unwrap().id;
        let consts = v.constants(f);
        assert_eq!(consts.len(), 3);
        let shown = v.display(&m, &layout).to_string();
        assert!(shown.contains("CONSTANTS(f)"), "{shown}");
        assert!(shown.contains("a = 1"), "{shown}");
        assert!(shown.contains("g = 3"), "{shown}");
    }
}
