//! The unified error taxonomy for the whole pipeline.
//!
//! Three things can go wrong between FT source text and a constant
//! report, and each already has a precise error type in its own layer:
//! the front end emits [`Diagnostics`], the reference interpreter raises
//! [`ExecError`], and the analysis stages degrade under exhausted budgets
//! (which is only an *error* when the caller demands full precision).
//! [`IpcpError`] is the sum of the three, so drivers handle one type.

use crate::config::Stage;
use crate::health::AnalysisHealth;
use crate::pipeline::UnitError;
use ipcp_ir::interp::ExecError;
use ipcp_ir::Diagnostics;
use std::error::Error;
use std::fmt;

/// Any failure the toolchain can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpcpError {
    /// The front end rejected the source (lexical, syntactic or
    /// resolution errors).
    Frontend(Diagnostics),
    /// The reference interpreter faulted at runtime.
    Exec(ExecError),
    /// An analysis budget was exhausted and the caller required full
    /// precision (strict mode). The degraded-but-sound results exist;
    /// this error reports why they are weaker than requested.
    ResourceExhausted {
        /// The first stage that degraded.
        stage: Stage,
        /// The full telemetry of the run.
        health: AnalysisHealth,
    },
    /// A [`ConfigBuilder`](crate::ConfigBuilder) was asked for an
    /// incompatible combination of knobs (e.g. `jobs > 1` with
    /// quarantine off). The message names the conflict and the fix.
    InvalidConfig(String),
    /// A phase unit faulted under quarantine and the caller asked for the
    /// failure itself rather than the sound degraded result. Carries the
    /// typed [`UnitError`] (stage, unit index, panic message) so drivers
    /// stop pattern-matching on strings.
    Unit(UnitError),
}

impl IpcpError {
    /// Promotes a degraded run to an error when `strict` demands it.
    ///
    /// # Errors
    ///
    /// [`IpcpError::ResourceExhausted`] when `strict` and `health` has
    /// events; `Ok` otherwise.
    pub fn check_strict(strict: bool, health: &AnalysisHealth) -> Result<(), IpcpError> {
        match health.events.first() {
            Some(first) if strict => Err(IpcpError::ResourceExhausted {
                stage: first.stage,
                health: health.clone(),
            }),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for IpcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcpError::Frontend(diags) => write!(f, "{diags}"),
            IpcpError::Exec(e) => write!(f, "runtime error: {e}"),
            IpcpError::ResourceExhausted { stage, health } => write!(
                f,
                "resource exhausted in {stage} stage ({} degradation(s))",
                health.events.len()
            ),
            IpcpError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            IpcpError::Unit(e) => write!(f, "quarantined unit: {e}"),
        }
    }
}

impl Error for IpcpError {}

impl From<Diagnostics> for IpcpError {
    fn from(diags: Diagnostics) -> Self {
        IpcpError::Frontend(diags)
    }
}

impl From<ExecError> for IpcpError {
    fn from(e: ExecError) -> Self {
        IpcpError::Exec(e)
    }
}

impl From<UnitError> for IpcpError {
    fn from(e: UnitError) -> Self {
        IpcpError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::parse_and_resolve;

    #[test]
    fn frontend_errors_convert_and_display() {
        let diags = parse_and_resolve("proc main() { x = ; }").unwrap_err();
        let err: IpcpError = diags.into();
        assert!(matches!(err, IpcpError::Frontend(_)));
        assert!(err.to_string().contains("error"));
    }

    #[test]
    fn exec_errors_convert() {
        let err: IpcpError = ExecError::DivideByZero.into();
        assert_eq!(err.to_string(), "runtime error: division by zero");
    }

    #[test]
    fn invalid_config_displays_the_conflict() {
        let err = IpcpError::InvalidConfig("jobs > 1 requires quarantine".into());
        assert!(err.to_string().starts_with("invalid configuration:"));
        assert!(err.to_string().contains("quarantine"));
    }

    #[test]
    fn unit_errors_convert_and_stay_typed() {
        let unit = UnitError::new(Stage::Jump, 3, "boom");
        let err: IpcpError = unit.clone().into();
        match &err {
            IpcpError::Unit(e) => {
                assert_eq!(e.stage, Stage::Jump);
                assert_eq!(e.unit, 3);
                assert_eq!(e.message, "boom");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "quarantined unit: jump unit #3 faulted: boom"
        );
    }

    #[test]
    fn strict_mode_promotes_degradations() {
        let mut health = AnalysisHealth::default();
        assert!(IpcpError::check_strict(true, &health).is_ok());
        health.record(Stage::Solver, "iteration cap");
        assert!(IpcpError::check_strict(false, &health).is_ok());
        let err = IpcpError::check_strict(true, &health).unwrap_err();
        match &err {
            IpcpError::ResourceExhausted { stage, health } => {
                assert_eq!(*stage, Stage::Solver);
                assert_eq!(health.events.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(err.to_string().contains("solver"), "{err}");
    }
}
