//! Procedure cloning driven by interprocedural constants — the
//! application the paper's §5 highlights (Metzger–Stroud used constants to
//! *guide* cloning in the CONVEX Application Compiler; Cooper, Hall and
//! Kennedy formalized the transformation).
//!
//! When different call sites reach a procedure with **different** constant
//! vectors, the meet destroys them all. Cloning gives each distinct vector
//! its own copy of the procedure, so each copy's `CONSTANTS` set keeps its
//! callers' values. [`clone_by_constants`] performs one such round under a
//! growth budget and reports the improvement.

use crate::config::{Config, Stage};
use crate::health::{AnalysisHealth, Governor};
use crate::jump::JumpFn;
use crate::pipeline::Analysis;
use ipcp_ir::cfg::{CStmt, CallSiteId, ModuleCfg};
use ipcp_ir::program::ProcId;
use ipcp_ssa::Lattice;
use std::collections::HashMap;

/// Outcome of a cloning round.
#[derive(Debug)]
pub struct CloneResult {
    /// The transformed module (clones appended after the original
    /// procedures).
    pub module: ModuleCfg,
    /// How many clones were created of each original procedure.
    pub clones_of: Vec<usize>,
    /// Total clones created.
    pub n_clones: usize,
    /// Telemetry: the inner analysis's degradations plus any cloning
    /// budget exhaustion.
    pub health: AnalysisHealth,
}

impl CloneResult {
    /// Whether anything was cloned.
    pub fn changed(&self) -> bool {
        self.n_clones > 0
    }
}

/// The constant vector a call edge transmits: the jump-function values
/// under the caller's fixpoint `VAL`, with ⊥/⊤ normalized to `None`.
fn edge_vector(analysis: &Analysis, caller: ProcId, site: CallSiteId) -> Option<Vec<Option<i64>>> {
    let fns = analysis.jump_fns.at(caller, site);
    if fns.is_empty() {
        return None; // unreachable site
    }
    let caller_vals = analysis.vals.of(caller);
    Some(
        fns.iter()
            .map(|jf: &JumpFn| {
                jf.eval(|v| {
                    caller_vals
                        .get(v as usize)
                        .copied()
                        .unwrap_or(Lattice::Bottom)
                })
                .as_const()
            })
            .collect(),
    )
}

/// Call-site groups, keyed by the constant vector their edges transmit.
type ConstGroups = Vec<(Vec<Option<i64>>, Vec<(ProcId, CallSiteId)>)>;

/// Clones procedures whose call sites disagree on incoming constants.
///
/// For each non-entry, non-recursive procedure, call edges are grouped by
/// their constant vector; when at least two groups exist and at least one
/// of them carries a constant the merged analysis lost, each additional
/// group gets a clone (bounded by `max_clones_total`) and its call sites
/// are retargeted. One round specializes one level; iterate with
/// re-analysis for nested specialization.
pub fn clone_by_constants(
    mcfg: &ModuleCfg,
    config: &Config,
    max_clones_total: usize,
) -> CloneResult {
    let analysis = Analysis::run(mcfg, config);
    let mut gov = Governor::new(config);
    let mut module = mcfg.clone();
    let n_orig = mcfg.module.procs.len();
    let mut clones_of = vec![0usize; n_orig];
    let mut n_clones = 0usize;
    let mut budget_recorded = false;
    let mut retarget: HashMap<(ProcId, CallSiteId), ProcId> = HashMap::new();

    // Planning — grouping each callee's call edges by the constant vector
    // they transmit and judging whether a split is worthwhile — is pure
    // given the fixpoint analysis, so it runs on the worker pool. Clone
    // *creation* stays sequential in callee order below: it charges the
    // cloning budget and grows the module, and the budget's trip point
    // must not depend on the schedule.
    let (plans, _pt) = crate::par::run(config.effective_jobs(), n_orig, |callee_idx| {
        let callee = ProcId::from(callee_idx);
        if callee == mcfg.module.entry
            || !analysis.cg.reachable[callee_idx]
            || analysis.cg.is_recursive(callee)
        {
            return None;
        }
        let mut groups: ConstGroups = Vec::new();
        for edge in analysis.cg.calls_to(callee) {
            let Some(vec) = edge_vector(&analysis, edge.caller, edge.site) else {
                continue;
            };
            match groups.iter_mut().find(|(v, _)| *v == vec) {
                Some((_, sites)) => sites.push((edge.caller, edge.site)),
                None => groups.push((vec, vec![(edge.caller, edge.site)])),
            }
        }
        if groups.len() < 2 {
            return None;
        }
        // Only worth splitting when some group carries a constant the
        // merged VAL set lost.
        let merged = analysis.vals.of(callee);
        let worthwhile = groups.iter().any(|(v, _)| {
            v.iter()
                .enumerate()
                .any(|(slot, c)| c.is_some() && merged.get(slot).is_some_and(|l| !l.is_const()))
        });
        if !worthwhile {
            return None;
        }
        Some(groups)
    });

    for (callee_idx, plan) in plans.into_iter().enumerate() {
        let Some(groups) = plan else { continue };
        let clone_count = &mut clones_of[callee_idx];
        // Group 0 keeps the original procedure; later groups get clones.
        // Each clone charges the cloning budget: the explicit request cap
        // and the configured growth limit both stop the round.
        for (_, sites) in groups.iter().skip(1) {
            if gov.deadline_expired() {
                if !budget_recorded {
                    gov.record_deadline(
                        Stage::Cloning,
                        format!("deadline expired after {n_clones} clone(s)"),
                    );
                    budget_recorded = true;
                }
                break;
            }
            if n_clones >= max_clones_total || !gov.charge(Stage::Cloning) {
                if n_clones < max_clones_total && !budget_recorded {
                    gov.record(
                        Stage::Cloning,
                        format!("growth budget exhausted after {n_clones} clone(s)"),
                    );
                    budget_recorded = true;
                }
                break;
            }
            let clone_id = ProcId::from(module.module.procs.len());
            let mut proc = module.module.procs[callee_idx].clone();
            proc.id = clone_id;
            proc.name = format!("{}${}", proc.name, *clone_count + 1);
            module.module.procs.push(proc);
            module.cfgs.push(module.cfgs[callee_idx].clone());
            *clone_count += 1;
            n_clones += 1;
            for &key in sites {
                retarget.insert(key, clone_id);
            }
        }
    }

    // Retarget the planned call statements (clone bodies keep their
    // original targets — they are copies of procedures whose own call
    // sites were not part of any group plan).
    for pi in 0..n_orig {
        let caller = ProcId::from(pi);
        for blk in &mut module.cfgs[pi].blocks {
            for s in &mut blk.stmts {
                if let CStmt::Call { callee, site, .. } = s {
                    if let Some(&new) = retarget.get(&(caller, *site)) {
                        *callee = new;
                    }
                }
            }
        }
    }

    let mut health = analysis.health.clone();
    health.absorb(gov.into_health());
    CloneResult {
        module,
        clones_of,
        n_clones,
        health,
    }
}

/// Convenience: clone, re-analyze, and report the substituted-constants
/// improvement as `(before, after, result)`.
pub fn cloning_gain(
    mcfg: &ModuleCfg,
    config: &Config,
    max_clones_total: usize,
) -> (usize, usize, CloneResult) {
    let before = Analysis::run(mcfg, config).substitute(mcfg).total;
    let result = clone_by_constants(mcfg, config, max_clones_total);
    let after = Analysis::run(&result.module, config)
        .substitute(&result.module)
        .total;
    (before, after, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::interp::{exec_cfg, ExecLimits};
    use ipcp_ir::program::SlotLayout;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn mcfg(src: &str) -> ModuleCfg {
        lower_module(&parse_and_resolve(src).unwrap())
    }

    #[test]
    fn conflicting_constants_trigger_a_clone() {
        let m = mcfg(
            "proc main() { call f(1); call f(2); } \
             proc f(a) { print a; print a * 10; }",
        );
        let (before, after, result) = cloning_gain(&m, &Config::default(), 8);
        assert_eq!(result.n_clones, 1);
        assert_eq!(before, 0, "merged analysis should lose a");
        assert_eq!(after, 4, "each copy should keep its constant");
    }

    #[test]
    fn cloning_preserves_behaviour() {
        let m = mcfg(
            "global g; \
             proc main() { g = 3; read x; call f(1, x); call f(2, x); } \
             proc f(a, n) { print a + n * g; if (a > 1) { print a; } }",
        );
        let result = clone_by_constants(&m, &Config::default(), 8);
        assert!(result.changed());
        for inputs in [&[0i64][..], &[5], &[-2]] {
            let x = exec_cfg(&m, inputs, &ExecLimits::default()).unwrap();
            let y = exec_cfg(&result.module, inputs, &ExecLimits::default()).unwrap();
            assert_eq!(x.output, y.output);
        }
    }

    #[test]
    fn agreeing_sites_do_not_clone() {
        let m = mcfg("proc main() { call f(7); call f(7); } proc f(a) { print a; }");
        assert!(!clone_by_constants(&m, &Config::default(), 8).changed());
    }

    #[test]
    fn all_unknown_vectors_do_not_clone() {
        let m =
            mcfg("proc main() { read x; read y; call f(x); call f(y); } proc f(a) { print a; }");
        assert!(!clone_by_constants(&m, &Config::default(), 8).changed());
    }

    #[test]
    fn budget_caps_growth() {
        let m = mcfg(
            "proc main() { call f(1); call f(2); call f(3); call f(4); } \
             proc f(a) { print a; }",
        );
        assert_eq!(clone_by_constants(&m, &Config::default(), 2).n_clones, 2);
        assert_eq!(clone_by_constants(&m, &Config::default(), 100).n_clones, 3);
        let (before, after, _) = cloning_gain(&m, &Config::default(), 100);
        assert_eq!(before, 0);
        assert_eq!(after, 4);
    }

    #[test]
    fn configured_clone_limit_degrades_with_telemetry() {
        use crate::config::AnalysisLimits;
        let m = mcfg("proc main() { call f(1); call f(2); call f(3); } proc f(a) { print a; }");
        let limits = AnalysisLimits {
            max_clones: 1,
            ..AnalysisLimits::default()
        };
        let r = clone_by_constants(&m, &Config::default().with_limits(limits), 8);
        assert_eq!(r.n_clones, 1, "one clone fits the configured limit");
        assert_eq!(r.health.count(Stage::Cloning), 1, "{}", r.health);
        // The explicit per-call cap is the caller's own choice — hitting
        // it is not a degradation.
        let r = clone_by_constants(&m, &Config::default(), 1);
        assert_eq!(r.n_clones, 1);
        assert!(!r.health.degraded(), "{}", r.health);
    }

    #[test]
    fn fault_injection_stops_cloning_deterministically() {
        let m = mcfg("proc main() { call f(1); call f(2); call f(3); } proc f(a) { print a; }");
        let r = clone_by_constants(&m, &Config::default().with_fault(Stage::Cloning, 1), 8);
        assert_eq!(r.n_clones, 0, "the fault trips before the first clone");
        assert!(r.health.count(Stage::Cloning) >= 1, "{}", r.health);
    }

    #[test]
    fn recursive_procedures_are_skipped() {
        let m = mcfg(
            "proc main() { call f(1); call f(2); } \
             proc f(a) { if (a > 0) { b = a - 1; call f(b); } print a; }",
        );
        assert!(!clone_by_constants(&m, &Config::default(), 8).changed());
    }

    #[test]
    fn clones_get_fresh_names_and_their_own_constants() {
        let m = mcfg("proc main() { call f(10); call f(20); } proc f(a) { print a; }");
        let result = clone_by_constants(&m, &Config::default(), 8);
        let names: Vec<&str> = result
            .module
            .module
            .procs
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"f$1"), "{names:?}");
        let analysis = Analysis::run(&result.module, &Config::default());
        let f = result.module.module.proc_named("f").unwrap().id;
        let f1 = result.module.module.proc_named("f$1").unwrap().id;
        let cf = analysis.vals.constants(f);
        let cf1 = analysis.vals.constants(f1);
        assert_eq!(cf.len(), 1);
        assert_eq!(cf1.len(), 1);
        assert_ne!(cf[0].1, cf1[0].1);
        // Slot naming still works on the grown module.
        let layout = SlotLayout::new(&result.module.module);
        assert_eq!(layout.slot_name(&result.module.module, f1, 0), "a");
    }

    #[test]
    fn cloning_helps_downstream_of_the_clone() {
        // The specialized constant flows onward from each clone.
        let m = mcfg(
            "proc main() { call f(1); call f(2); } \
             proc f(a) { call g(a); } \
             proc g(b) { print b; }",
        );
        let result = clone_by_constants(&m, &Config::default(), 8);
        assert!(result.changed());
        // One more round specializes g as well.
        let (before, after, second) = cloning_gain(&result.module, &Config::default(), 8);
        assert!(second.changed(), "second round should clone g");
        assert!(after > before, "second round should expose more constants");
    }
}
