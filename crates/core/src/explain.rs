//! Provenance: *why* does `CONSTANTS(p)` contain (or miss) a value?
//!
//! For a chosen entry slot, [`explain`] walks the call edges feeding it
//! and renders each contribution — the jump function at the site, the
//! caller slots it reads, and the lattice value it delivered — recursing
//! into pass-through/polynomial support up to a depth limit. This is the
//! tool-side answer to the question every user of an interprocedural
//! analysis asks first: "where did this ⊥ come from?"

use crate::pipeline::Analysis;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::ProcId;
use ipcp_ssa::Lattice;
use std::fmt::Write as _;

/// One call-edge contribution to a slot.
#[derive(Clone, Debug)]
pub struct Contribution {
    /// The procedure making the call.
    pub caller: ProcId,
    /// The call site within the caller.
    pub site: ipcp_ir::cfg::CallSiteId,
    /// Rendered jump function for the slot at this site.
    pub jump_fn: String,
    /// The value this edge delivered under the fixpoint.
    pub delivered: Lattice,
    /// The caller slots the jump function read, with their values.
    pub support: Vec<(usize, Lattice)>,
}

/// The explanation of one slot of one procedure.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained procedure.
    pub proc: ProcId,
    /// The explained entry slot.
    pub slot: usize,
    /// The fixpoint value.
    pub value: Lattice,
    /// Per-edge contributions (empty for the entry procedure or an
    /// unreached one).
    pub contributions: Vec<Contribution>,
}

/// Computes the explanation for `(proc, slot)`.
pub fn explain(_mcfg: &ModuleCfg, analysis: &Analysis, proc: ProcId, slot: usize) -> Explanation {
    let mut contributions = Vec::new();
    for edge in analysis.cg.calls_to(proc) {
        let fns = analysis.jump_fns.at(edge.caller, edge.site);
        let Some(jf) = fns.get(slot) else {
            continue; // unreachable or gated-away site
        };
        let caller_vals = analysis.vals.of(edge.caller);
        let delivered = jf.eval(|v| {
            caller_vals
                .get(v as usize)
                .copied()
                .unwrap_or(Lattice::Bottom)
        });
        let support = jf
            .support()
            .iter()
            .map(|&v| {
                (
                    v as usize,
                    caller_vals
                        .get(v as usize)
                        .copied()
                        .unwrap_or(Lattice::Bottom),
                )
            })
            .collect();
        contributions.push(Contribution {
            caller: edge.caller,
            site: edge.site,
            jump_fn: jf.to_string(),
            delivered,
            support,
        });
    }
    Explanation {
        proc,
        slot,
        value: analysis
            .vals
            .of(proc)
            .get(slot)
            .copied()
            .unwrap_or(Lattice::Top),
        contributions,
    }
}

/// Renders the explanation as an indented tree, recursing into the
/// support slots of non-constant contributions up to `depth` levels.
pub fn render(
    mcfg: &ModuleCfg,
    analysis: &Analysis,
    proc: ProcId,
    slot: usize,
    depth: usize,
) -> String {
    let mut out = String::new();
    if analysis.health.degraded() {
        let _ = writeln!(
            out,
            "note: this analysis degraded under its budgets ({} event(s)); \
             some ⊥ below may mean \"budget exhausted\", not \"proven varying\"",
            analysis.health.events.len()
        );
    }
    render_into(mcfg, analysis, proc, slot, depth, 0, &mut out);
    out
}

fn render_into(
    mcfg: &ModuleCfg,
    analysis: &Analysis,
    proc: ProcId,
    slot: usize,
    depth: usize,
    indent: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let e = explain(mcfg, analysis, proc, slot);
    let pname = &mcfg.module.proc(proc).name;
    let sname = analysis.layout.slot_name(&mcfg.module, proc, slot);
    let _ = writeln!(out, "{pad}{pname}.{sname} = {}", e.value);
    if proc == mcfg.module.entry {
        let _ = writeln!(out, "{pad}  (entry procedure: environment assumption)");
        return;
    }
    if e.contributions.is_empty() {
        let _ = writeln!(out, "{pad}  (never called)");
        return;
    }
    for c in &e.contributions {
        let caller_name = &mcfg.module.proc(c.caller).name;
        let _ = writeln!(
            out,
            "{pad}  <- {caller_name} {}: J = {} delivers {}",
            c.site, c.jump_fn, c.delivered
        );
        if depth > 0 {
            for &(s, v) in &c.support {
                if v.is_const() {
                    let n = analysis.layout.slot_name(&mcfg.module, c.caller, s);
                    let _ = writeln!(out, "{pad}    using {caller_name}.{n} = {v}");
                } else {
                    render_into(mcfg, analysis, c.caller, s, depth - 1, indent + 2, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn setup(src: &str) -> (ModuleCfg, Analysis) {
        let mcfg = lower_module(&parse_and_resolve(src).unwrap());
        let a = Analysis::run(&mcfg, &Config::default());
        (mcfg, a)
    }

    #[test]
    fn explains_a_constant_slot() {
        let (mcfg, a) = setup("proc main() { call f(5); } proc f(x) { print x; }");
        let f = mcfg.module.proc_named("f").unwrap().id;
        let e = explain(&mcfg, &a, f, 0);
        assert_eq!(e.value, Lattice::Const(5));
        assert_eq!(e.contributions.len(), 1);
        assert_eq!(e.contributions[0].jump_fn, "5");
        assert_eq!(e.contributions[0].delivered, Lattice::Const(5));
    }

    #[test]
    fn explains_a_conflicting_meet() {
        let (mcfg, a) = setup("proc main() { call f(1); call f(2); } proc f(x) { print x; }");
        let f = mcfg.module.proc_named("f").unwrap().id;
        let e = explain(&mcfg, &a, f, 0);
        assert_eq!(e.value, Lattice::Bottom);
        let delivered: Vec<Lattice> = e.contributions.iter().map(|c| c.delivered).collect();
        assert!(delivered.contains(&Lattice::Const(1)));
        assert!(delivered.contains(&Lattice::Const(2)));
    }

    #[test]
    fn render_recurses_through_pass_through_chains() {
        let (mcfg, a) = setup(
            "proc main() { call mid(9); } \
             proc mid(m) { call leaf(m); } \
             proc leaf(x) { print x; }",
        );
        let leaf = mcfg.module.proc_named("leaf").unwrap().id;
        let text = render(&mcfg, &a, leaf, 0, 3);
        assert!(text.contains("leaf.x = 9"), "{text}");
        assert!(text.contains("mid cs0: J = x0"), "{text}");
        assert!(text.contains("using mid.m = 9"), "{text}");
    }

    #[test]
    fn render_explains_bottom_provenance() {
        let (mcfg, a) = setup(
            "proc main() { read v; call mid(v); } \
             proc mid(m) { call leaf(m); } \
             proc leaf(x) { print x; }",
        );
        let leaf = mcfg.module.proc_named("leaf").unwrap().id;
        let text = render(&mcfg, &a, leaf, 0, 3);
        assert!(text.contains("leaf.x = ⊥"), "{text}");
        assert!(text.contains("mid.m = ⊥"), "{text}");
        // The chain bottoms out at main's ⊥ jump function (the read value
        // has no support to recurse into).
        assert!(text.contains("main cs0: J = ⊥ delivers ⊥"), "{text}");
    }

    #[test]
    fn degraded_runs_render_a_caveat() {
        let src = "proc main() { call f(5); } proc f(x) { print x; }";
        let mcfg = lower_module(&parse_and_resolve(src).unwrap());
        let f = mcfg.module.proc_named("f").unwrap().id;
        let full = Analysis::run(&mcfg, &Config::default());
        assert!(!render(&mcfg, &full, f, 0, 1).contains("note:"));
        let clipped = Analysis::run(
            &mcfg,
            &Config::default().with_limits(crate::config::AnalysisLimits::tiny()),
        );
        if clipped.health.degraded() {
            let text = render(&mcfg, &clipped, f, 0, 1);
            assert!(text.contains("degraded under its budgets"), "{text}");
        }
    }

    #[test]
    fn never_called_procedures_say_so() {
        let (mcfg, a) = setup("proc main() { } proc dead(x) { print x; }");
        let dead = mcfg.module.proc_named("dead").unwrap().id;
        let text = render(&mcfg, &a, dead, 0, 1);
        assert!(text.contains("never called"), "{text}");
    }
}
