//! The cache-aware sequential pipeline driver.
//!
//! [`analyze_incremental`] mirrors the sequential path of
//! [`Analysis::run_once`](crate::Analysis) stage by stage, consulting the
//! [`SummaryCache`] before each per-procedure unit of work and staging
//! freshly computed clean units into a [`CacheTxn`]. The contract — the
//! one the `serve-identity` oracle and the tier-1 differential tests
//! enforce — is **bit-identity**: for any cache state, the returned
//! [`Analysis`] (values, health events in order, quarantine flags) equals
//! what a cold `Analysis::run` on the same module and configuration
//! produces, except for wall-clock-deadline degradations (those depend on
//! real time and are documented as ⊥-honest, marked `degraded`).
//!
//! Three mechanisms carry the identity proof through budgets and fault
//! injection:
//!
//! 1. **Keys capture every input.** A unit's key mixes the configuration
//!    fingerprint, the program shape, and its own-text or callee-cone
//!    Merkle hash (see [`ipcp_analysis::keys`]); two units with equal
//!    keys compute equal results.
//! 2. **Charge replay.** Cached return-jump units recorded the governor
//!    charges their clean run made. A hit replays them into a shard and
//!    absorbs only when [`Governor::can_absorb`] proves no budget or
//!    injected fault would have tripped inside the range — otherwise the
//!    unit runs live, reproducing the cold trip at the exact same offset.
//! 3. **Forced misses.** The unit named by a `--inject-panic`
//!    configuration always runs live, so the injection fires exactly as
//!    cold; and degraded units are never cached, so a quarantined
//!    procedure is recomputed (and re-contained, or healed by an edit)
//!    on every request.
//!
//! Gated configurations (`gated_jump_fns`) bypass the cache: their units
//! read the previous round's fixpoint, which is not part of the key.

use crate::config::{Config, Stage};
use crate::health::Governor;
use crate::jump::{build_forward_jump_fns, ProcSymbolic};
use crate::par::{PhaseTime, Timings};
use crate::pipeline::{
    build_proc_symbolic, commit_modref_unit, commit_symbolic_unit, widen_modref,
};
use crate::retjump::run_scc_member;
use crate::serve::cache::{CacheKey, CacheTxn, CachedSummary, SummaryCache, SummaryStage};
use crate::solver::ValSets;
use crate::Analysis;
use crate::ReturnJumpFns;
use ipcp_analysis::{build_call_graph, direct_effects, propagate_modref, summary_keys};
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::hash::Fnv128;
use ipcp_ir::program::{ProcId, SlotLayout};
use ipcp_ssa::ssa::{CallKills, ModKills, WorstCaseKills};
use ipcp_ssa::symbolic::EvalBudget;
use std::time::Instant;

/// Whether this configuration's per-procedure units are cacheable at
/// all. Gated jump functions iterate: each round's units read the
/// previous round's `VAL` sets, which the content keys do not capture.
pub fn cacheable(config: &Config) -> bool {
    !config.gated_jump_fns
}

/// Digest of the configuration axes that change what a summary unit
/// computes. Budgets are included because step and shape limits are
/// enforced *inside* units (they are not governor charges, so charge
/// replay cannot reproduce them); the injection hooks are *not* —
/// fault trips are reproduced by charge replay and panic injections by
/// forced misses.
///
/// Public because the persisted summary store stamps this fingerprint
/// into its header: a store written under one configuration is discarded
/// (config drift) rather than consulted under another.
pub fn config_fingerprint(config: &Config) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(config.jump_fn.label());
    h.write(&[
        config.use_mod as u8,
        config.use_return_jfs as u8,
        config.compose_return_jfs as u8,
        config.assume_zero_globals as u8,
        config.gated_jump_fns as u8,
        config.pruned_ssa as u8,
    ]);
    let l = &config.limits;
    h.write_u64(l.max_solver_iterations);
    h.write_u64(l.max_symbolic_steps);
    h.write_u64(l.max_poly_terms as u64);
    h.write_u64(u64::from(l.max_poly_degree));
    h.write_u64(l.max_support as u64);
    h.write_u64(l.max_clones as u64);
    h.write_u64(l.max_inline_statements as u64);
    h.finish()
}

/// Digest of the program *shape*: ordered procedure names and arities,
/// ordered global declarations, and the configuration fingerprint.
/// Mixed into every cache key so entries from a differently shaped
/// program (renumbered `ProcId`s, different entry-slot layouts) can
/// never alias.
///
/// Public because the persisted summary store stamps this fingerprint
/// into its header (shape drift ⇒ discard at load).
pub fn shape_fingerprint(mcfg: &ModuleCfg, config: &Config) -> u128 {
    let mut h = Fnv128::new();
    h.write_u128(config_fingerprint(config));
    for g in &mcfg.module.globals {
        h.write_str(&g.name);
        h.write_u64(g.array_len.map_or(u64::MAX, |l| l as u64));
    }
    h.write(&[0xA5]);
    for p in &mcfg.module.procs {
        h.write_str(&p.name);
        h.write_u64(p.arity() as u64);
    }
    h.finish()
}

fn mix(shape: u128, content: u128) -> u128 {
    let mut h = Fnv128::new();
    h.write_u128(shape);
    h.write_u128(content);
    h.finish()
}

/// Whether the configuration's panic injection names this unit — if so
/// the cache must not serve it, so the injection fires exactly as cold.
fn forced_miss(config: &Config, stage: Stage, pi: usize) -> bool {
    config
        .panic_injection
        .is_some_and(|p| p.stage == stage && p.proc == pi)
}

/// Runs the pipeline over `mcfg` with per-procedure summary caching.
///
/// `own[i]` is the content hash of procedure `i`'s normalized text (the
/// engine derives these from its program model). Lookups read `cache`;
/// fresh clean units stage into `txn` for the engine to commit after the
/// request completes. See the module docs for the identity contract.
pub fn analyze_incremental(
    mcfg: &ModuleCfg,
    config: &Config,
    own: &[u128],
    cache: &SummaryCache,
    txn: &mut CacheTxn,
) -> Analysis {
    if !cacheable(config) {
        txn.bypassed = true;
        return Analysis::run(mcfg, config);
    }
    let t_run = Instant::now();
    let cg = build_call_graph(mcfg);
    let layout = SlotLayout::new(&mcfg.module);
    let keys = summary_keys(&cg, own);
    let shape = shape_fingerprint(mcfg, config);
    let mut gov = Governor::new(config);
    let n_procs = mcfg.module.procs.len();
    let n_globals = mcfg.module.globals.len();
    let mut quarantined = vec![false; n_procs];
    let mut timings = Timings {
        jobs: 1,
        ..Timings::default()
    };

    // Stage 0: MOD/REF direct effects. The per-procedure charge is made
    // by this loop (hit and miss alike), exactly as the cold sequential
    // loop charges before running the unit; direct effects themselves
    // charge nothing, so entries carry no recorded charges.
    let t0 = Instant::now();
    let mut mods = Vec::with_capacity(n_procs);
    let mut refs = Vec::with_capacity(n_procs);
    for (pi, p) in mcfg.module.procs.iter().enumerate() {
        let (m, r) = if !gov.charge(Stage::ModRef) {
            quarantined[pi] = true;
            gov.record_quarantine(
                Stage::ModRef,
                format!(
                    "{}: direct-effects budget exhausted; \
                     summary widened to everything visible",
                    p.name
                ),
            );
            widen_modref(p.arity(), n_globals)
        } else {
            let key = CacheKey {
                stage: SummaryStage::ModRef,
                digest: mix(shape, keys.own[pi]),
            };
            let forced = forced_miss(config, Stage::ModRef, pi);
            match (forced, cache.get_with_origin(key)) {
                (false, Some((CachedSummary::ModRef { mods, refs }, recovered))) => {
                    txn.hits += 1;
                    txn.persisted_hits += u64::from(recovered);
                    (mods.clone(), refs.clone())
                }
                _ => {
                    txn.misses += 1;
                    let pid = ProcId::from(pi);
                    let unit = crate::quarantine::run_unit(config, Stage::ModRef, pi, || {
                        direct_effects(mcfg, pid)
                    });
                    let clean = unit.is_ok();
                    let out = commit_modref_unit(
                        &p.name,
                        unit,
                        p.arity(),
                        n_globals,
                        pi,
                        &mut quarantined,
                        &mut gov,
                    );
                    if clean && !forced {
                        txn.stage(
                            key,
                            CachedSummary::ModRef {
                                mods: out.0.clone(),
                                refs: out.1.clone(),
                            },
                        );
                    }
                    out
                }
            }
        };
        mods.push(m);
        refs.push(r);
    }
    timings.modref = PhaseTime::sequential(t0.elapsed(), n_procs);
    let modref = propagate_modref(mcfg, &cg, mods, refs);

    let mod_kills = ModKills(&modref);
    let kills: &(dyn CallKills + Sync) = if config.use_mod {
        &mod_kills
    } else {
        &WorstCaseKills
    };

    // Stage 1: return jump functions, bottom-up. These units charge the
    // governor (one RetJump charge per slot classification), so each
    // runs against a recording shard: a clean shard whose charges fold
    // cleanly is absorbed — and cached with its charges for replay on
    // later hits — while anything else replays against the master,
    // reproducing the cold trip offsets bit for bit.
    let t1 = Instant::now();
    let ret_jfs = if !config.use_return_jfs {
        ReturnJumpFns {
            fns: vec![None; n_procs],
            compose: false,
        }
    } else {
        let mut table = ReturnJumpFns {
            fns: vec![None; n_procs],
            compose: config.compose_return_jfs,
        };
        for p in cg.bottom_up() {
            let pi = p.index();
            if quarantined[pi] {
                // The short-circuit touches neither cache nor governor.
                let (fns, _) =
                    run_scc_member(mcfg, &table, &layout, kills, config, p, true, &mut gov);
                table.fns[pi] = Some(fns);
                continue;
            }
            let key = CacheKey {
                stage: SummaryStage::RetJump,
                digest: mix(shape, keys.cone[pi]),
            };
            let forced = forced_miss(config, Stage::RetJump, pi);
            if !forced {
                if let Some((CachedSummary::RetJump { fns, charges }, recovered)) =
                    cache.get_with_origin(key)
                {
                    let mut shard = gov.shard();
                    shard.add_charges(charges);
                    if gov.can_absorb(&shard) {
                        gov.absorb_shard(shard);
                        txn.hits += 1;
                        txn.persisted_hits += u64::from(recovered);
                        table.fns[pi] = Some(fns.clone());
                        continue;
                    }
                    // Replaying the recorded charges would cross a budget
                    // or fault trip: the cold run would have degraded
                    // inside this unit, so run it live to reproduce that.
                }
            }
            txn.misses += 1;
            let mut shard = gov.shard();
            let (fns, newly) =
                run_scc_member(mcfg, &table, &layout, kills, config, p, false, &mut shard);
            if gov.can_absorb(&shard) {
                // A shard that tripped can never satisfy can_absorb (its
                // counter already exceeds the cap or fault point), so
                // this branch is charge-for-charge identical to having
                // run against the master.
                let clean = !newly && !shard.health.degraded();
                let charges = shard.counters();
                gov.absorb_shard(shard);
                if clean && !forced {
                    txn.stage(
                        key,
                        CachedSummary::RetJump {
                            fns: fns.clone(),
                            charges,
                        },
                    );
                }
                quarantined[pi] = newly;
                table.fns[pi] = Some(fns);
            } else {
                let (fns, newly) =
                    run_scc_member(mcfg, &table, &layout, kills, config, p, false, &mut gov);
                quarantined[pi] = newly;
                table.fns[pi] = Some(fns);
            }
        }
        table
    };
    timings.retjump = PhaseTime::sequential(t1.elapsed(), cg.bottom_up().count());

    // Stage 2: SSA + symbolic evaluation, then forward jump functions.
    // Symbolic units make no governor charges (step budgets live inside
    // the evaluator), so hits need no replay; only clean units — no
    // panic, no exhausted step slice — are cached. Forward-jump-function
    // construction always runs live: it is cheap and makes the Jump
    // charges that fault injection addresses.
    let t2 = Instant::now();
    let latch = std::sync::Arc::clone(gov.latch());
    let max_steps = gov.limits().max_symbolic_steps;
    let deadline = config.deadline.map(|d| d.instant());
    let mut symbolics: Vec<Option<ProcSymbolic>> = Vec::new();
    for pi in 0..n_procs {
        if !cg.reachable[pi] || quarantined[pi] {
            symbolics.push(None);
            continue;
        }
        let key = CacheKey {
            stage: SummaryStage::Jump,
            digest: mix(shape, keys.cone[pi]),
        };
        let forced = forced_miss(config, Stage::Jump, pi);
        if !forced {
            if let Some((CachedSummary::Jump { sym }, recovered)) = cache.get_with_origin(key) {
                txn.hits += 1;
                txn.persisted_hits += u64::from(recovered);
                symbolics.push(Some((**sym).clone()));
                continue;
            }
        }
        txn.misses += 1;
        let budget = EvalBudget {
            max_steps,
            deadline,
            latch: Some(&latch),
        };
        let unit = crate::quarantine::run_unit(config, Stage::Jump, pi, || {
            build_proc_symbolic(mcfg, config, &layout, kills, &ret_jfs, None, pi, &budget)
        });
        if let Ok((ps, steps_exhausted)) = &unit {
            if !steps_exhausted && !forced {
                txn.stage(
                    key,
                    CachedSummary::Jump {
                        sym: Box::new(ps.clone()),
                    },
                );
            }
        }
        commit_symbolic_unit(mcfg, pi, unit, &mut symbolics, &mut quarantined, &mut gov);
    }
    let jump_fns = build_forward_jump_fns(
        mcfg,
        &cg,
        &layout,
        config,
        &symbolics,
        &mut quarantined,
        &mut gov,
    );
    timings.jump = PhaseTime::sequential(t2.elapsed(), n_procs);
    Analysis::finish(
        mcfg,
        config,
        cg,
        modref,
        layout,
        ret_jfs,
        symbolics,
        jump_fns,
        gov,
        quarantined,
        timings,
        t_run,
    )
}

/// The identity predicate the differential tests assert: everything an
/// analysis computes except wall-clock observations (timings) and the
/// solver's internal work counters.
pub fn same_results(a: &Analysis, b: &Analysis) -> bool {
    let vals = |v: &ValSets| v.vals.clone();
    vals(&a.vals) == vals(&b.vals)
        && a.health == b.health
        && a.quarantined == b.quarantined
        && a.ret_jfs.fns == b.ret_jfs.fns
        && a.jump_fns.sites == b.jump_fns.sites
        && a.modref == b.modref
}
