//! The durable summary store: crash-safe persistence for the serve
//! cache.
//!
//! A daemon restart used to be a full cold start. This module gives the
//! [`SummaryCache`] an on-disk form so `ipcc serve --store <path>` comes
//! back warm: per-procedure MOD/REF, return-jump-function (with recorded
//! governor charges), and forward-jump-function summaries, keyed by the
//! same FNV-1a-128 own/cone digests the in-memory cache uses.
//!
//! **Durability model.** Snapshots are atomic: the whole store is
//! encoded, written to a sibling `<path>.tmp`, fsynced, and renamed over
//! `<path>` (with a best-effort directory fsync). A crash — including
//! `kill -9` mid-write — leaves either the old store or the new one,
//! never a torn file; an interrupted write can only strand a `.tmp` the
//! next snapshot overwrites.
//!
//! **Recovery model.** Loading verifies, in order: magic, format
//! version, whole-file checksum, configuration fingerprint, shape
//! fingerprint, then every record (per-record checksum and full wire
//! decode). *Any* failure — truncation, bit flip, version skew, config
//! drift — discards the store with a machine-readable
//! [`DiscardReason`] and the daemon cold-starts. A persisted store can
//! make a restart slower, never wrong: restored entries re-enter the
//! same keyed cache the identity contract already covers, and the
//! `serve-persist` oracle checks restart-warm ≡ cold bit for bit.
//!
//! **Trust model.** Checksums (FNV-1a-128, see [`ipcp_ir::hash`]) guard
//! against accidental corruption, not a malicious local user crafting a
//! store file — that user already controls the daemon's program text.
//! Decoding is panic-free on arbitrary bytes either way.
//!
//! **Fault injection.** [`IoInjector`] fails the N-th write-class
//! operation (or rename) of a snapshot deterministically — short write,
//! `ENOSPC`, `EIO`, rename failure — mirroring `--inject-panic`; the
//! kill-during-save tests sweep every injection point and assert the
//! old store still verifies.

use crate::serve::cache::{CacheKey, CachedSummary, SummaryCache};
use crate::serve::wire::{self, Reader, Writer};
use ipcp_ir::hash::hash_bytes;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// File magic: "ipcp summaries", version-independent.
pub const MAGIC: [u8; 8] = *b"IPCPSUMS";

/// Format version. Bump on any layout change; old versions are
/// discarded as [`DiscardReason::VersionSkew`], never migrated.
pub const VERSION: u32 = 1;

/// Why a store file was rejected at load. Surfaced in the startup log,
/// the `stats`/`health` protocol ops, and the telemetry tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiscardReason {
    /// The file does not exist (a fresh daemon, not a failure).
    Missing,
    /// The file exists but could not be read.
    Io(String),
    /// Shorter than a complete header + trailer.
    Truncated,
    /// The magic bytes are not ours.
    BadMagic,
    /// Written by a different format version.
    VersionSkew {
        /// The version found in the file.
        found: u32,
    },
    /// Written under a different analysis configuration.
    ConfigDrift,
    /// Written for a differently shaped program.
    ShapeDrift,
    /// The whole-file checksum does not match the contents.
    BadChecksum,
    /// A record failed its checksum or wire decode.
    BadRecord,
}

impl DiscardReason {
    /// Short machine-readable label (stable; used in tables and logs).
    pub fn label(&self) -> &'static str {
        match self {
            DiscardReason::Missing => "missing",
            DiscardReason::Io(_) => "io",
            DiscardReason::Truncated => "truncated",
            DiscardReason::BadMagic => "bad-magic",
            DiscardReason::VersionSkew { .. } => "version-skew",
            DiscardReason::ConfigDrift => "config-drift",
            DiscardReason::ShapeDrift => "shape-drift",
            DiscardReason::BadChecksum => "bad-checksum",
            DiscardReason::BadRecord => "bad-record",
        }
    }
}

impl fmt::Display for DiscardReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscardReason::Missing => write!(f, "no store file"),
            DiscardReason::Io(e) => write!(f, "unreadable store: {e}"),
            DiscardReason::Truncated => write!(f, "truncated store"),
            DiscardReason::BadMagic => write!(f, "not a summary store"),
            DiscardReason::VersionSkew { found } => {
                write!(f, "format version {found}, this build writes {VERSION}")
            }
            DiscardReason::ConfigDrift => write!(f, "written under a different configuration"),
            DiscardReason::ShapeDrift => write!(f, "written for a differently shaped program"),
            DiscardReason::BadChecksum => write!(f, "whole-file checksum mismatch"),
            DiscardReason::BadRecord => write!(f, "corrupt record"),
        }
    }
}

/// Encodes the cache into the store's byte format:
///
/// ```text
/// magic[8] version[u32] config_fp[u128] shape_fp[u128] count[u64]
/// count × ( stage[u8] digest[u128] payload_len[u64] payload
///           record_checksum[u128] )
/// file_checksum[u128]        // FNV-1a-128 of every preceding byte
/// ```
///
/// Entries are emitted in the cache's FIFO order, so restore followed by
/// re-encode is byte-identical (asserted by tests — it is what makes the
/// checksums meaningful).
pub fn encode(cache: &SummaryCache, config_fp: u128, shape_fp: u128) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u32(VERSION);
    w.put_u128(config_fp);
    w.put_u128(shape_fp);
    w.put_len(cache.len());
    for (key, summary) in cache.iter_fifo() {
        let mut rec = Writer::new();
        rec.put_u8(wire::stage_code(key.stage));
        rec.put_u128(key.digest);
        let mut payload = Writer::new();
        wire::put_summary(&mut payload, summary);
        let payload = payload.into_bytes();
        rec.put_len(payload.len());
        rec.put_bytes(&payload);
        let rec = rec.into_bytes();
        let checksum = hash_bytes(&rec);
        w.put_bytes(&rec);
        w.put_u128(checksum);
    }
    let bytes = w.into_bytes();
    let file_checksum = hash_bytes(&bytes);
    let mut w = Writer::new();
    w.put_bytes(&bytes);
    w.put_u128(file_checksum);
    w.into_bytes()
}

/// Decodes and fully verifies a store image against the expected
/// fingerprints, returning the cache entries in their persisted FIFO
/// order — or the reason the whole store must be discarded. Never
/// panics, whatever the bytes.
pub fn decode(
    bytes: &[u8],
    config_fp: u128,
    shape_fp: u128,
) -> Result<Vec<(CacheKey, CachedSummary)>, DiscardReason> {
    // Header prefix: enough to tell *why* an old or foreign file is
    // rejected before trusting anything else in it.
    let mut r = Reader::new(bytes);
    let magic = r.take(8).map_err(|_| DiscardReason::Truncated)?;
    if magic != MAGIC {
        return Err(DiscardReason::BadMagic);
    }
    let version = r.get_u32().map_err(|_| DiscardReason::Truncated)?;
    if version != VERSION {
        return Err(DiscardReason::VersionSkew { found: version });
    }
    // Whole-file integrity next: everything after this point may assume
    // the bytes are exactly what a writer of this version produced.
    if bytes.len() < 8 + 4 + 16 {
        return Err(DiscardReason::Truncated);
    }
    let body = &bytes[..bytes.len() - 16];
    let mut trailer = Reader::new(&bytes[bytes.len() - 16..]);
    let file_checksum = trailer.get_u128().map_err(|_| DiscardReason::Truncated)?;
    if hash_bytes(body) != file_checksum {
        return Err(DiscardReason::BadChecksum);
    }
    let mut r = Reader::new(&body[12..]);
    let config = r.get_u128().map_err(|_| DiscardReason::Truncated)?;
    let shape = r.get_u128().map_err(|_| DiscardReason::Truncated)?;
    if config != config_fp {
        return Err(DiscardReason::ConfigDrift);
    }
    if shape != shape_fp {
        return Err(DiscardReason::ShapeDrift);
    }
    let count = r
        .get_len(1 + 16 + 8 + 16)
        .map_err(|_| DiscardReason::Truncated)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let rec_start = body.len() - 12 - r.remaining();
        let stage_byte = r.get_u8().map_err(|_| DiscardReason::BadRecord)?;
        let stage = wire::stage_from(stage_byte).map_err(|_| DiscardReason::BadRecord)?;
        let digest = r.get_u128().map_err(|_| DiscardReason::BadRecord)?;
        let payload_len = r.get_len(1).map_err(|_| DiscardReason::BadRecord)?;
        let payload = r.take(payload_len).map_err(|_| DiscardReason::BadRecord)?;
        let rec_end = body.len() - 12 - r.remaining();
        let checksum = r.get_u128().map_err(|_| DiscardReason::BadRecord)?;
        if hash_bytes(&body[12..][rec_start..rec_end]) != checksum {
            return Err(DiscardReason::BadRecord);
        }
        let mut pr = Reader::new(payload);
        let summary = wire::get_summary(&mut pr, stage).map_err(|_| DiscardReason::BadRecord)?;
        if !pr.is_done() {
            return Err(DiscardReason::BadRecord);
        }
        entries.push((CacheKey { stage, digest }, summary));
    }
    if !r.is_done() {
        return Err(DiscardReason::BadRecord);
    }
    Ok(entries)
}

/// Which injected disk fault to fire. Parsed from
/// `--inject-io <fault>:<point>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The N-th write persists only half its bytes, then errors — a torn
    /// write, as a crash mid-`write(2)` would leave.
    ShortWrite,
    /// The N-th write-class operation fails with `ENOSPC`.
    Enospc,
    /// The N-th write-class operation fails with `EIO`.
    Eio,
    /// The N-th rename fails (the commit point itself).
    RenameFail,
}

impl IoFault {
    /// The flag spelling.
    pub fn label(self) -> &'static str {
        match self {
            IoFault::ShortWrite => "short-write",
            IoFault::Enospc => "enospc",
            IoFault::Eio => "eio",
            IoFault::RenameFail => "rename-fail",
        }
    }

    fn error(self) -> io::Error {
        match self {
            IoFault::ShortWrite => io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write (short-write)",
            ),
            // Real OS error codes so logs read like the field failures
            // they simulate.
            IoFault::Enospc => io::Error::from_raw_os_error(28),
            IoFault::Eio => io::Error::from_raw_os_error(5),
            IoFault::RenameFail => {
                io::Error::new(io::ErrorKind::PermissionDenied, "injected rename failure")
            }
        }
    }
}

/// Deterministic disk-fault injector: fails the `point`-th operation of
/// the matching class (1-based). Write-class faults count chunk writes
/// and fsyncs; `rename-fail` counts renames.
#[derive(Clone, Debug)]
pub struct IoInjector {
    fault: IoFault,
    point: u64,
    seen: u64,
}

impl IoInjector {
    /// An injector firing `fault` at operation `point` (minimum 1).
    pub fn new(fault: IoFault, point: u64) -> IoInjector {
        IoInjector {
            fault,
            point: point.max(1),
            seen: 0,
        }
    }

    /// Parses the `--inject-io` argument, e.g. `eio:3`, `rename-fail:1`.
    pub fn parse(s: &str) -> Option<IoInjector> {
        let (fault, point) = s.split_once(':')?;
        let fault = match fault {
            "short-write" => IoFault::ShortWrite,
            "enospc" => IoFault::Enospc,
            "eio" => IoFault::Eio,
            "rename-fail" => IoFault::RenameFail,
            _ => return None,
        };
        let point: u64 = point.parse().ok()?;
        if point == 0 {
            return None;
        }
        Some(IoInjector::new(fault, point))
    }

    /// The fault this injector fires.
    pub fn fault(&self) -> IoFault {
        self.fault
    }

    fn trip(&mut self, write_class: bool) -> Option<IoFault> {
        let applies = match self.fault {
            IoFault::RenameFail => !write_class,
            _ => write_class,
        };
        if !applies {
            return None;
        }
        self.seen += 1;
        (self.seen == self.point).then_some(self.fault)
    }
}

/// Size of one injector-countable write. Small enough that every store
/// in the tests spans several injection points.
const WRITE_CHUNK: usize = 256;

/// The file-backed store: a path plus an optional fault injector.
#[derive(Debug)]
pub struct SummaryStore {
    path: PathBuf,
    injector: Option<IoInjector>,
}

/// What loading found, for the startup log and telemetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadStatus {
    /// No store file yet — a fresh daemon.
    Fresh,
    /// This many records restored.
    Restored(usize),
    /// The store was discarded; the daemon cold-starts.
    Discarded(DiscardReason),
}

impl SummaryStore {
    /// A store at `path` with no fault injection.
    pub fn new(path: impl Into<PathBuf>) -> SummaryStore {
        SummaryStore {
            path: path.into(),
            injector: None,
        }
    }

    /// A store whose saves run under the given fault injector.
    pub fn with_injector(path: impl Into<PathBuf>, injector: Option<IoInjector>) -> SummaryStore {
        SummaryStore {
            path: path.into(),
            injector,
        }
    }

    /// The store path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads and verifies the store against the expected fingerprints.
    /// Never fails the caller: any problem yields empty entries and a
    /// [`LoadStatus`] describing why. The rejected file is left in
    /// place — the next snapshot atomically replaces it.
    pub fn load(
        &self,
        config_fp: u128,
        shape_fp: u128,
    ) -> (Vec<(CacheKey, CachedSummary)>, LoadStatus) {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return (Vec::new(), LoadStatus::Fresh)
            }
            Err(e) => {
                return (
                    Vec::new(),
                    LoadStatus::Discarded(DiscardReason::Io(e.to_string())),
                )
            }
            Ok(mut f) => {
                if let Err(e) = f.read_to_end(&mut bytes) {
                    return (
                        Vec::new(),
                        LoadStatus::Discarded(DiscardReason::Io(e.to_string())),
                    );
                }
            }
        }
        match decode(&bytes, config_fp, shape_fp) {
            Ok(entries) => {
                let n = entries.len();
                (entries, LoadStatus::Restored(n))
            }
            Err(reason) => (Vec::new(), LoadStatus::Discarded(reason)),
        }
    }

    /// Atomically snapshots the cache: encode, write `<path>.tmp` in
    /// chunks, fsync, rename over `<path>`, best-effort directory
    /// fsync. On any error (real or injected) the previous store file
    /// is untouched; a stranded `.tmp` is cleaned up best-effort and
    /// ignored by [`SummaryStore::load`] either way. Returns the number
    /// of records written.
    pub fn save(
        &mut self,
        cache: &SummaryCache,
        config_fp: u128,
        shape_fp: u128,
    ) -> io::Result<usize> {
        let bytes = encode(cache, config_fp, shape_fp);
        let records = cache.len();
        let tmp = self.tmp_path();
        let result = self.write_tmp(&tmp, &bytes).and_then(|()| {
            if let Some(f) = self.injector.as_mut().and_then(|i| i.trip(false)) {
                return Err(f.error());
            }
            fs::rename(&tmp, &self.path)
        });
        match result {
            Ok(()) => {
                // Make the rename itself durable. Failure here is not
                // actionable (the data is safe in either file) — ignore.
                if let Some(dir) = self.path.parent() {
                    if let Ok(d) = File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
                Ok(records)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn tmp_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".tmp");
        self.path.with_file_name(name)
    }

    fn write_tmp(&mut self, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp)?;
        for chunk in bytes.chunks(WRITE_CHUNK) {
            if let Some(fault) = self.injector.as_mut().and_then(|i| i.trip(true)) {
                if fault == IoFault::ShortWrite {
                    // Persist half the chunk so the tmp file is torn the
                    // way an interrupted write(2) leaves it.
                    let _ = f.write_all(&chunk[..chunk.len() / 2]);
                    let _ = f.sync_all();
                }
                return Err(fault.error());
            }
            f.write_all(chunk)?;
        }
        if let Some(fault) = self.injector.as_mut().and_then(|i| i.trip(true)) {
            return Err(fault.error());
        }
        f.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::serve::engine::ServeEngine;

    const SRC: &str = "proc main() { x = 1; call mid(x); print x; }\n\
                       proc mid(a) { call leaf(a); }\n\
                       proc leaf(b) { print b + 41; }";

    fn warm_engine() -> (ServeEngine, u128, u128) {
        let config = Config::default();
        let engine = ServeEngine::new(SRC, &config).expect("engine");
        let (cfp, sfp) = engine.fingerprints();
        (engine, cfp, sfp)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipcp-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn encode_decode_restore_is_byte_idempotent() {
        let (engine, cfp, sfp) = warm_engine();
        assert!(!engine.cache().is_empty(), "warm cache expected");
        let bytes = encode(engine.cache(), cfp, sfp);
        let entries = decode(&bytes, cfp, sfp).expect("own encoding decodes");
        assert_eq!(entries.len(), engine.cache().len());
        let restored = SummaryCache::restore(entries, SummaryCache::DEFAULT_CAPACITY);
        assert_eq!(encode(&restored, cfp, sfp), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (engine, cfp, sfp) = warm_engine();
        let bytes = encode(engine.cache(), cfp, sfp);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut], cfp, sfp).is_err(),
                "prefix of {cut}/{} bytes accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let (engine, cfp, sfp) = warm_engine();
        let bytes = encode(engine.cache(), cfp, sfp);
        // Every byte is covered by the whole-file checksum (or is the
        // checksum itself), so any single flip must be caught.
        let step = (bytes.len() / 97).max(1);
        for i in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode(&corrupt, cfp, sfp).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    fn reason(res: Result<Vec<(CacheKey, CachedSummary)>, DiscardReason>) -> DiscardReason {
        match res {
            Err(r) => r,
            Ok(entries) => panic!("decoded {} entries, expected a discard", entries.len()),
        }
    }

    #[test]
    fn discard_reasons_are_distinguished() {
        let (engine, cfp, sfp) = warm_engine();
        let bytes = encode(engine.cache(), cfp, sfp);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            reason(decode(&bad_magic, cfp, sfp)),
            DiscardReason::BadMagic
        );

        let mut skew = bytes.clone();
        skew[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert_eq!(
            reason(decode(&skew, cfp, sfp)),
            DiscardReason::VersionSkew { found: VERSION + 1 }
        );

        assert_eq!(
            reason(decode(&bytes, cfp ^ 1, sfp)),
            DiscardReason::ConfigDrift
        );
        assert_eq!(
            reason(decode(&bytes, cfp, sfp ^ 1)),
            DiscardReason::ShapeDrift
        );

        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0xFF;
        assert_eq!(
            reason(decode(&flipped, cfp, sfp)),
            DiscardReason::BadChecksum
        );

        assert_eq!(reason(decode(&[], cfp, sfp)), DiscardReason::Truncated);
        assert_eq!(
            reason(decode(b"not a store file at all", cfp, sfp)),
            DiscardReason::BadMagic
        );
    }

    #[test]
    fn file_store_round_trips_and_ignores_stranded_tmp() {
        let (engine, cfp, sfp) = warm_engine();
        let dir = tmp_dir("roundtrip");
        let mut store = SummaryStore::new(dir.join("cache.store"));
        // A stranded tmp from a "crashed" previous save is inert.
        fs::write(dir.join("cache.store.tmp"), b"garbage").expect("write tmp");
        let n = store.save(engine.cache(), cfp, sfp).expect("save");
        assert_eq!(n, engine.cache().len());
        let (entries, status) = store.load(cfp, sfp);
        assert_eq!(status, LoadStatus::Restored(n));
        assert_eq!(entries.len(), n);
        let (none, status) = SummaryStore::new(dir.join("absent")).load(cfp, sfp);
        assert!(none.is_empty());
        assert_eq!(status, LoadStatus::Fresh);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_at_every_point_leave_the_old_store_intact() {
        let (engine, cfp, sfp) = warm_engine();
        let dir = tmp_dir("faults");
        let path = dir.join("cache.store");
        SummaryStore::new(&path)
            .save(engine.cache(), cfp, sfp)
            .expect("baseline save");
        let baseline = fs::read(&path).expect("baseline bytes");

        // ≥20 kill-during-save iterations: every write-class point the
        // snapshot actually has, for each write fault, plus the rename.
        let n_points = baseline.len().div_ceil(WRITE_CHUNK) + 1; // chunks + fsync
        let mut iterations = 0;
        for fault in [IoFault::ShortWrite, IoFault::Enospc, IoFault::Eio] {
            for point in 1..=n_points as u64 {
                let mut store =
                    SummaryStore::with_injector(&path, Some(IoInjector::new(fault, point)));
                let err = store
                    .save(engine.cache(), cfp, sfp)
                    .expect_err("fault must surface");
                assert!(
                    fault != IoFault::Enospc || err.raw_os_error() == Some(28),
                    "ENOSPC should carry the real errno"
                );
                assert_eq!(fs::read(&path).expect("store survives"), baseline);
                assert!(!dir.join("cache.store.tmp").exists(), "tmp cleaned up");
                let (entries, status) = store.load(cfp, sfp);
                assert!(matches!(status, LoadStatus::Restored(_)));
                assert!(!entries.is_empty());
                iterations += 1;
            }
        }
        {
            let mut store =
                SummaryStore::with_injector(&path, Some(IoInjector::new(IoFault::RenameFail, 1)));
            store
                .save(engine.cache(), cfp, sfp)
                .expect_err("rename fault must surface");
            assert_eq!(fs::read(&path).expect("store survives"), baseline);
            iterations += 1;
        }
        assert!(iterations >= 20, "only {iterations} fault points swept");

        // After the faults clear, the next snapshot succeeds.
        let mut store = SummaryStore::new(&path);
        store.save(engine.cache(), cfp, sfp).expect("clean save");
        assert_eq!(fs::read(&path).expect("bytes"), baseline);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injector_parsing() {
        let inj = IoInjector::parse("eio:3").expect("parses");
        assert_eq!(inj.fault(), IoFault::Eio);
        assert_eq!(inj.point, 3);
        assert_eq!(
            IoInjector::parse("rename-fail:1").map(|i| i.fault()),
            Some(IoFault::RenameFail)
        );
        for bad in ["", "eio", "eio:", "eio:0", "eio:x", "sparks:2", ":3"] {
            assert!(IoInjector::parse(bad).is_none(), "{bad:?} parsed");
        }
    }
}
