//! Dependency-free binary codecs for the persisted summary store.
//!
//! The store needs a byte representation for every summary the cache
//! holds — including the deep SSA + symbolic form behind forward jump
//! functions — without pulling in a serialization crate. This module is
//! that representation: a little-endian, length-prefixed wire format
//! with explicit tag bytes for every enum, written so that
//!
//! * **encoding is canonical** — equal values produce equal bytes (maps
//!   are emitted in their sorted order, sets are sorted before writing),
//!   so decode∘encode∘decode is byte-idempotent and the store's
//!   checksums are meaningful;
//! * **decoding never panics** — every read is bounds-checked, every
//!   length prefix is validated against the bytes actually remaining
//!   (so a corrupt length cannot trigger a huge allocation), every tag
//!   and boolean byte must be exact, and values with internal
//!   invariants ([`Poly`], [`DomTree`]) are rebuilt through validating
//!   constructors. Any violation surfaces as a [`WireError`] value.
//!
//! Integrity against bit rot is the store's job (checksums in
//! `serve::store`); this layer's job is that *no* byte sequence, however
//! mangled, makes the decoder panic or allocate unboundedly.

use crate::jump::{JumpFn, ProcSymbolic};
use crate::serve::cache::{CachedSummary, Charges, SummaryStage};
use ipcp_analysis::ModSet;
use ipcp_ir::cfg::{BlockId, CallSiteId};
use ipcp_ir::lang::ast::{BinOp, UnOp};
use ipcp_ir::program::{ProcId, VarId};
use ipcp_ssa::ssa::SsaBlock;
use ipcp_ssa::{
    DomTree, DomTreeParts, Lattice, Poly, PolyVar, SccpResult, SsaProc, StmtInfo, SymVal, Symbolic,
    ValueId, ValueKind,
};
use std::collections::HashSet;

/// A decoding failure: truncated input, an invalid tag or boolean byte,
/// an implausible length prefix, or a value that violates its type's
/// invariants. Deliberately carries no detail — the store maps any wire
/// error to "bad record, discard the store", and the bytes themselves
/// are the diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError;

/// Decoding result.
pub type WireResult<T> = Result<T, WireError>;

/// An append-only byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (two's-complement little-endian).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as `0`/`1`.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a sequence length as a `u64`.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }
}

/// A bounds-checked byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(WireError);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> WireResult<u128> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> WireResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a boolean; any byte other than `0`/`1` is an error.
    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError),
        }
    }

    /// Reads a sequence length and validates it against the bytes left:
    /// a sequence of `n` items each at least `min_item_bytes` long
    /// cannot be encoded in fewer than `n * min_item_bytes` bytes, so a
    /// corrupt length fails here instead of sizing an allocation.
    pub fn get_len(&mut self, min_item_bytes: usize) -> WireResult<usize> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| WireError)?;
        let need = n.checked_mul(min_item_bytes.max(1)).ok_or(WireError)?;
        if need > self.remaining() {
            return Err(WireError);
        }
        Ok(n)
    }
}

fn put_u32_id(w: &mut Writer, index: usize) {
    w.put_u32(index as u32);
}

fn put_opt<T>(w: &mut Writer, v: &Option<T>, put: impl FnOnce(&mut Writer, &T)) {
    match v {
        None => w.put_u8(0),
        Some(x) => {
            w.put_u8(1);
            put(w, x);
        }
    }
}

fn get_opt<'a, T>(
    r: &mut Reader<'a>,
    get: impl FnOnce(&mut Reader<'a>) -> WireResult<T>,
) -> WireResult<Option<T>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(get(r)?)),
        _ => Err(WireError),
    }
}

fn put_vec<T>(w: &mut Writer, items: &[T], mut put: impl FnMut(&mut Writer, &T)) {
    w.put_len(items.len());
    for item in items {
        put(w, item);
    }
}

fn get_vec<'a, T>(
    r: &mut Reader<'a>,
    min_item_bytes: usize,
    mut get: impl FnMut(&mut Reader<'a>) -> WireResult<T>,
) -> WireResult<Vec<T>> {
    let n = r.get_len(min_item_bytes)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get(r)?);
    }
    Ok(out)
}

fn put_bools(w: &mut Writer, bits: &[bool]) {
    put_vec(w, bits, |w, &b| w.put_bool(b));
}

fn get_bools(r: &mut Reader<'_>) -> WireResult<Vec<bool>> {
    get_vec(r, 1, |r| r.get_bool())
}

/// `usize` carrier that round-trips the `usize::MAX` sentinel exactly
/// (used by `rpo_pos` for unreachable blocks).
fn put_usize(w: &mut Writer, v: usize) {
    w.put_u64(if v == usize::MAX { u64::MAX } else { v as u64 });
}

fn get_usize(r: &mut Reader<'_>) -> WireResult<usize> {
    let v = r.get_u64()?;
    if v == u64::MAX {
        Ok(usize::MAX)
    } else {
        usize::try_from(v).map_err(|_| WireError)
    }
}

fn put_value_id(w: &mut Writer, v: ValueId) {
    w.put_u32(v.0);
}

fn get_value_id(r: &mut Reader<'_>) -> WireResult<ValueId> {
    Ok(ValueId(r.get_u32()?))
}

fn put_block_id(w: &mut Writer, b: BlockId) {
    put_u32_id(w, b.index());
}

fn get_block_id(r: &mut Reader<'_>) -> WireResult<BlockId> {
    Ok(BlockId::from(r.get_u32()? as usize))
}

fn bin_op_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn bin_op_from(code: u8) -> WireResult<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        _ => return Err(WireError),
    })
}

fn un_op_code(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn un_op_from(code: u8) -> WireResult<UnOp> {
    Ok(match code {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        _ => return Err(WireError),
    })
}

/// Encodes a [`ModSet`].
pub fn put_mod_set(w: &mut Writer, m: &ModSet) {
    put_bools(w, &m.formals);
    put_bools(w, &m.globals);
}

/// Decodes a [`ModSet`].
pub fn get_mod_set(r: &mut Reader<'_>) -> WireResult<ModSet> {
    Ok(ModSet {
        formals: get_bools(r)?,
        globals: get_bools(r)?,
    })
}

/// Encodes a [`Poly`] as its canonical sorted term list.
pub fn put_poly(w: &mut Writer, p: &Poly) {
    w.put_len(p.n_terms());
    for (m, c) in p.terms_raw() {
        put_vec(w, m, |w, &(v, e)| {
            w.put_u32(v);
            w.put_u32(e);
        });
        w.put_i64(c);
    }
}

/// Decodes a [`Poly`], re-validating every invariant (sortedness, no
/// zero coefficients or exponents, term/degree caps).
pub fn get_poly(r: &mut Reader<'_>) -> WireResult<Poly> {
    let n = r.get_len(16)?;
    let mut terms: Vec<(Vec<(PolyVar, u32)>, i64)> = Vec::with_capacity(n);
    for _ in 0..n {
        let m = get_vec(r, 8, |r| Ok((r.get_u32()?, r.get_u32()?)))?;
        let c = r.get_i64()?;
        terms.push((m, c));
    }
    Poly::from_terms_raw(terms).ok_or(WireError)
}

/// Encodes a [`JumpFn`].
pub fn put_jump_fn(w: &mut Writer, f: &JumpFn) {
    match f {
        JumpFn::Const(c) => {
            w.put_u8(0);
            w.put_i64(*c);
        }
        JumpFn::PassThrough(v) => {
            w.put_u8(1);
            w.put_u32(*v);
        }
        JumpFn::Poly(p) => {
            w.put_u8(2);
            put_poly(w, p);
        }
        JumpFn::Bottom => w.put_u8(3),
    }
}

/// Decodes a [`JumpFn`].
pub fn get_jump_fn(r: &mut Reader<'_>) -> WireResult<JumpFn> {
    Ok(match r.get_u8()? {
        0 => JumpFn::Const(r.get_i64()?),
        1 => JumpFn::PassThrough(r.get_u32()?),
        2 => JumpFn::Poly(get_poly(r)?),
        3 => JumpFn::Bottom,
        _ => return Err(WireError),
    })
}

/// Encodes recorded governor charges.
pub fn put_charges(w: &mut Writer, c: &Charges) {
    w.put_u8(c.len() as u8);
    for &v in c.iter() {
        w.put_u64(v);
    }
}

/// Decodes recorded governor charges; the stage count must match this
/// build's [`Stage::ALL`](crate::config::Stage::ALL).
pub fn get_charges(r: &mut Reader<'_>) -> WireResult<Charges> {
    let mut out: Charges = Default::default();
    if r.get_u8()? as usize != out.len() {
        return Err(WireError);
    }
    for v in out.iter_mut() {
        *v = r.get_u64()?;
    }
    Ok(out)
}

fn put_value_kind(w: &mut Writer, k: &ValueKind) {
    match k {
        ValueKind::Entry { var } => {
            w.put_u8(0);
            put_u32_id(w, var.index());
        }
        ValueKind::Const(c) => {
            w.put_u8(1);
            w.put_i64(*c);
        }
        ValueKind::Unary(op, a) => {
            w.put_u8(2);
            w.put_u8(un_op_code(*op));
            put_value_id(w, *a);
        }
        ValueKind::Binary(op, a, b) => {
            w.put_u8(3);
            w.put_u8(bin_op_code(*op));
            put_value_id(w, *a);
            put_value_id(w, *b);
        }
        ValueKind::Phi { block, var } => {
            w.put_u8(4);
            put_block_id(w, *block);
            put_u32_id(w, var.index());
        }
        ValueKind::Load { array, index } => {
            w.put_u8(5);
            put_u32_id(w, array.index());
            put_value_id(w, *index);
        }
        ValueKind::ReadInput { seq } => {
            w.put_u8(6);
            w.put_u32(*seq);
        }
        ValueKind::CallDef { site, callee, var } => {
            w.put_u8(7);
            put_u32_id(w, site.index());
            put_u32_id(w, callee.index());
            put_u32_id(w, var.index());
        }
    }
}

fn get_value_kind(r: &mut Reader<'_>) -> WireResult<ValueKind> {
    Ok(match r.get_u8()? {
        0 => ValueKind::Entry {
            var: VarId::from(r.get_u32()? as usize),
        },
        1 => ValueKind::Const(r.get_i64()?),
        2 => {
            let op = un_op_from(r.get_u8()?)?;
            ValueKind::Unary(op, get_value_id(r)?)
        }
        3 => {
            let op = bin_op_from(r.get_u8()?)?;
            ValueKind::Binary(op, get_value_id(r)?, get_value_id(r)?)
        }
        4 => ValueKind::Phi {
            block: get_block_id(r)?,
            var: VarId::from(r.get_u32()? as usize),
        },
        5 => ValueKind::Load {
            array: VarId::from(r.get_u32()? as usize),
            index: get_value_id(r)?,
        },
        6 => ValueKind::ReadInput { seq: r.get_u32()? },
        7 => ValueKind::CallDef {
            site: CallSiteId::from(r.get_u32()? as usize),
            callee: ProcId::from(r.get_u32()? as usize),
            var: VarId::from(r.get_u32()? as usize),
        },
        _ => return Err(WireError),
    })
}

fn put_value_ids(w: &mut Writer, vs: &[ValueId]) {
    put_vec(w, vs, |w, &v| put_value_id(w, v));
}

fn get_value_ids(r: &mut Reader<'_>) -> WireResult<Vec<ValueId>> {
    get_vec(r, 4, get_value_id)
}

fn put_stmt_info(w: &mut Writer, s: &StmtInfo) {
    match s {
        StmtInfo::Assign { value, use_vals } => {
            w.put_u8(0);
            put_value_id(w, *value);
            put_value_ids(w, use_vals);
        }
        StmtInfo::Store {
            index,
            value,
            use_vals,
        } => {
            w.put_u8(1);
            put_value_id(w, *index);
            put_value_id(w, *value);
            put_value_ids(w, use_vals);
        }
        StmtInfo::Read { def } => {
            w.put_u8(2);
            put_value_id(w, *def);
        }
        StmtInfo::Print { value, use_vals } => {
            w.put_u8(3);
            put_value_id(w, *value);
            put_value_ids(w, use_vals);
        }
        StmtInfo::Call {
            site,
            arg_vals,
            defs,
            use_vals,
            global_pre,
        } => {
            w.put_u8(4);
            put_u32_id(w, site.index());
            put_vec(w, arg_vals, |w, v| {
                put_opt(w, v, |w, &x| put_value_id(w, x));
            });
            put_vec(w, defs, |w, &(var, val)| {
                put_u32_id(w, var.index());
                put_value_id(w, val);
            });
            put_value_ids(w, use_vals);
            put_value_ids(w, global_pre);
        }
    }
}

fn get_stmt_info(r: &mut Reader<'_>) -> WireResult<StmtInfo> {
    Ok(match r.get_u8()? {
        0 => StmtInfo::Assign {
            value: get_value_id(r)?,
            use_vals: get_value_ids(r)?,
        },
        1 => StmtInfo::Store {
            index: get_value_id(r)?,
            value: get_value_id(r)?,
            use_vals: get_value_ids(r)?,
        },
        2 => StmtInfo::Read {
            def: get_value_id(r)?,
        },
        3 => StmtInfo::Print {
            value: get_value_id(r)?,
            use_vals: get_value_ids(r)?,
        },
        4 => StmtInfo::Call {
            site: CallSiteId::from(r.get_u32()? as usize),
            arg_vals: get_vec(r, 1, |r| get_opt(r, get_value_id))?,
            defs: get_vec(r, 8, |r| {
                Ok((VarId::from(r.get_u32()? as usize), get_value_id(r)?))
            })?,
            use_vals: get_value_ids(r)?,
            global_pre: get_value_ids(r)?,
        },
        _ => return Err(WireError),
    })
}

fn put_ssa_block(w: &mut Writer, b: &SsaBlock) {
    put_value_ids(w, &b.phis);
    put_vec(w, &b.stmts, put_stmt_info);
    put_opt(w, &b.term_cond, |w, &v| put_value_id(w, v));
    put_value_ids(w, &b.term_use_vals);
}

fn get_ssa_block(r: &mut Reader<'_>) -> WireResult<SsaBlock> {
    Ok(SsaBlock {
        phis: get_value_ids(r)?,
        stmts: get_vec(r, 1, get_stmt_info)?,
        term_cond: get_opt(r, get_value_id)?,
        term_use_vals: get_value_ids(r)?,
    })
}

fn put_dom_tree(w: &mut Writer, dom: &DomTree) {
    let parts = dom.to_parts();
    put_vec(w, &parts.idom, |w, v| {
        put_opt(w, v, |w, &b| put_block_id(w, b));
    });
    put_vec(w, &parts.children, |w, kids| {
        put_vec(w, kids, |w, &b| put_block_id(w, b));
    });
    put_vec(w, &parts.rpo, |w, &b| put_block_id(w, b));
    put_vec(w, &parts.rpo_pos, |w, &p| put_usize(w, p));
    put_block_id(w, parts.entry);
}

fn get_dom_tree(r: &mut Reader<'_>) -> WireResult<DomTree> {
    let parts = DomTreeParts {
        idom: get_vec(r, 1, |r| get_opt(r, get_block_id))?,
        children: get_vec(r, 8, |r| get_vec(r, 4, get_block_id))?,
        rpo: get_vec(r, 4, get_block_id)?,
        rpo_pos: get_vec(r, 8, |r| get_usize(r))?,
        entry: get_block_id(r)?,
    };
    DomTree::from_parts(parts).ok_or(WireError)
}

fn put_ssa_proc(w: &mut Writer, ssa: &SsaProc) {
    put_u32_id(w, ssa.proc.index());
    put_vec(w, &ssa.values, put_value_kind);
    put_vec(w, &ssa.phi_args, |w, args| {
        put_vec(w, args, |w, &(b, v)| {
            put_block_id(w, b);
            put_value_id(w, v);
        });
    });
    put_vec(w, &ssa.blocks, put_ssa_block);
    put_dom_tree(w, &ssa.dom);
    put_vec(w, &ssa.entry_vals, |w, v| {
        put_opt(w, v, |w, &x| put_value_id(w, x));
    });
    put_vec(w, &ssa.exits, |w, (b, vals)| {
        put_block_id(w, *b);
        put_vec(w, vals, |w, v| put_opt(w, v, |w, &x| put_value_id(w, x)));
    });
    put_vec(w, &ssa.call_sites, |w, site| {
        put_opt(w, site, |w, &(b, i)| {
            put_block_id(w, b);
            put_usize(w, i);
        });
    });
}

fn get_ssa_proc(r: &mut Reader<'_>) -> WireResult<SsaProc> {
    Ok(SsaProc {
        proc: ProcId::from(r.get_u32()? as usize),
        values: get_vec(r, 1, get_value_kind)?,
        phi_args: get_vec(r, 8, |r| {
            get_vec(r, 8, |r| Ok((get_block_id(r)?, get_value_id(r)?)))
        })?,
        blocks: get_vec(r, 1, get_ssa_block)?,
        dom: get_dom_tree(r)?,
        entry_vals: get_vec(r, 1, |r| get_opt(r, get_value_id))?,
        exits: get_vec(r, 12, |r| {
            Ok((
                get_block_id(r)?,
                get_vec(r, 1, |r| get_opt(r, get_value_id))?,
            ))
        })?,
        call_sites: get_vec(r, 1, |r| {
            get_opt(r, |r| Ok((get_block_id(r)?, get_usize(r)?)))
        })?,
    })
}

fn put_sym_val(w: &mut Writer, v: &SymVal) {
    match v {
        SymVal::Top => w.put_u8(0),
        SymVal::Poly(p) => {
            w.put_u8(1);
            put_poly(w, p);
        }
        SymVal::Bottom => w.put_u8(2),
    }
}

fn get_sym_val(r: &mut Reader<'_>) -> WireResult<SymVal> {
    Ok(match r.get_u8()? {
        0 => SymVal::Top,
        1 => SymVal::Poly(get_poly(r)?),
        2 => SymVal::Bottom,
        _ => return Err(WireError),
    })
}

fn put_symbolic(w: &mut Writer, s: &Symbolic) {
    put_vec(w, &s.values, put_sym_val);
    put_vec(w, &s.slot_of_var, |w, v| {
        put_opt(w, v, |w, &x| w.put_u32(x));
    });
}

fn get_symbolic(r: &mut Reader<'_>) -> WireResult<Symbolic> {
    Ok(Symbolic {
        values: get_vec(r, 1, get_sym_val)?,
        slot_of_var: get_vec(r, 1, |r| get_opt(r, |r| r.get_u32()))?,
    })
}

fn put_lattice(w: &mut Writer, v: Lattice) {
    match v {
        Lattice::Top => w.put_u8(0),
        Lattice::Const(c) => {
            w.put_u8(1);
            w.put_i64(c);
        }
        Lattice::Bottom => w.put_u8(2),
    }
}

fn get_lattice(r: &mut Reader<'_>) -> WireResult<Lattice> {
    Ok(match r.get_u8()? {
        0 => Lattice::Top,
        1 => Lattice::Const(r.get_i64()?),
        2 => Lattice::Bottom,
        _ => return Err(WireError),
    })
}

fn put_sccp(w: &mut Writer, s: &SccpResult) {
    put_vec(w, &s.values, |w, &v| put_lattice(w, v));
    put_bools(w, &s.block_exec);
    // Canonical order for the edge set so equal results encode equally.
    let mut edges: Vec<(BlockId, BlockId)> = s.edge_exec.iter().copied().collect();
    edges.sort_unstable_by_key(|&(a, b)| (a.index(), b.index()));
    put_vec(w, &edges, |w, &(a, b)| {
        put_block_id(w, a);
        put_block_id(w, b);
    });
}

fn get_sccp(r: &mut Reader<'_>) -> WireResult<SccpResult> {
    let values = get_vec(r, 1, get_lattice)?;
    let block_exec = get_bools(r)?;
    let edges = get_vec(r, 8, |r| Ok((get_block_id(r)?, get_block_id(r)?)))?;
    let mut edge_exec = HashSet::with_capacity(edges.len());
    for e in edges {
        edge_exec.insert(e);
    }
    Ok(SccpResult {
        values,
        block_exec,
        edge_exec,
    })
}

/// Encodes a full [`ProcSymbolic`] (SSA form, symbolic evaluation, and
/// the optional SCCP gate).
pub fn put_proc_symbolic(w: &mut Writer, ps: &ProcSymbolic) {
    put_ssa_proc(w, &ps.ssa);
    put_symbolic(w, &ps.sym);
    put_opt(w, &ps.gate, put_sccp);
}

/// Decodes a full [`ProcSymbolic`].
pub fn get_proc_symbolic(r: &mut Reader<'_>) -> WireResult<ProcSymbolic> {
    Ok(ProcSymbolic {
        ssa: get_ssa_proc(r)?,
        sym: get_symbolic(r)?,
        gate: get_opt(r, get_sccp)?,
    })
}

/// The stable tag byte of a summary family.
pub fn stage_code(stage: SummaryStage) -> u8 {
    match stage {
        SummaryStage::ModRef => 0,
        SummaryStage::RetJump => 1,
        SummaryStage::Jump => 2,
    }
}

/// Decodes a summary-family tag byte.
pub fn stage_from(code: u8) -> WireResult<SummaryStage> {
    Ok(match code {
        0 => SummaryStage::ModRef,
        1 => SummaryStage::RetJump,
        2 => SummaryStage::Jump,
        _ => return Err(WireError),
    })
}

/// Encodes one cached summary payload (the key travels separately in
/// the store record header).
pub fn put_summary(w: &mut Writer, s: &CachedSummary) {
    match s {
        CachedSummary::ModRef { mods, refs } => {
            w.put_u8(0);
            put_mod_set(w, mods);
            put_mod_set(w, refs);
        }
        CachedSummary::RetJump { fns, charges } => {
            w.put_u8(1);
            put_vec(w, fns, put_jump_fn);
            put_charges(w, charges);
        }
        CachedSummary::Jump { sym } => {
            w.put_u8(2);
            put_proc_symbolic(w, sym);
        }
    }
}

/// Decodes one cached summary payload. The payload tag must agree with
/// `stage` — a record whose key names one family but whose payload is
/// another is corrupt.
pub fn get_summary(r: &mut Reader<'_>, stage: SummaryStage) -> WireResult<CachedSummary> {
    let tag = r.get_u8()?;
    if tag != stage_code(stage) {
        return Err(WireError);
    }
    Ok(match stage {
        SummaryStage::ModRef => CachedSummary::ModRef {
            mods: get_mod_set(r)?,
            refs: get_mod_set(r)?,
        },
        SummaryStage::RetJump => CachedSummary::RetJump {
            fns: get_vec(r, 1, get_jump_fn)?,
            charges: get_charges(r)?,
        },
        SummaryStage::Jump => CachedSummary::Jump {
            sym: Box::new(get_proc_symbolic(r)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_xy_plus_7() -> Poly {
        // 2*x0*x1 + 7
        let x = Poly::var(0);
        let y = Poly::var(1);
        x.mul(&y)
            .and_then(|p| p.mul(&Poly::constant(2)))
            .and_then(|p| p.add(&Poly::constant(7)))
            .expect("small poly")
    }

    fn round_trip<T>(
        value: &T,
        put: impl Fn(&mut Writer, &T),
        get: impl Fn(&mut Reader<'_>) -> WireResult<T>,
    ) -> T {
        let mut w = Writer::new();
        put(&mut w, value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = get(&mut r).expect("decodes");
        assert!(r.is_done(), "trailing bytes");
        // Byte idempotence: re-encoding the decoded value reproduces the
        // original bytes exactly (the canonical-encoding property the
        // store's checksums rely on).
        let mut w2 = Writer::new();
        put(&mut w2, &decoded);
        assert_eq!(w2.into_bytes(), bytes, "encoding not canonical");
        decoded
    }

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert!(r.is_done());
        assert_eq!(r.get_u8(), Err(WireError), "reading past the end");
    }

    #[test]
    fn booleans_must_be_exact() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.get_bool(), Err(WireError));
    }

    #[test]
    fn corrupt_lengths_cannot_size_allocations() {
        // A length prefix claiming u64::MAX items with no bytes behind it.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_len(1), Err(WireError));
        let mut r = Reader::new(&bytes);
        assert_eq!(get_value_ids(&mut r), Err(WireError));
    }

    #[test]
    fn mod_set_round_trip() {
        let m = ModSet {
            formals: vec![true, false, true],
            globals: vec![false],
        };
        assert_eq!(round_trip(&m, put_mod_set, get_mod_set), m);
    }

    #[test]
    fn poly_and_jump_fn_round_trip() {
        let p = poly_xy_plus_7();
        assert_eq!(round_trip(&p, put_poly, get_poly), p);
        for f in [
            JumpFn::Const(-9),
            JumpFn::PassThrough(3),
            JumpFn::Poly(poly_xy_plus_7()),
            JumpFn::Bottom,
        ] {
            assert_eq!(round_trip(&f, put_jump_fn, get_jump_fn), f);
        }
    }

    #[test]
    fn poly_decoding_revalidates_invariants() {
        // Hand-encode a "poly" with a zero coefficient: 1 term, empty
        // monomial, coefficient 0.
        let mut w = Writer::new();
        w.put_len(1);
        w.put_len(0);
        w.put_i64(0);
        let bytes = w.into_bytes();
        assert_eq!(get_poly(&mut Reader::new(&bytes)), Err(WireError));
    }

    #[test]
    fn charges_round_trip_and_reject_arity_skew() {
        let c: Charges = [1, 2, 3, 4, 5, 6, 7];
        assert_eq!(round_trip(&c, put_charges, get_charges), c);
        let mut w = Writer::new();
        w.put_u8(3); // wrong stage count
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        let bytes = w.into_bytes();
        assert_eq!(get_charges(&mut Reader::new(&bytes)), Err(WireError));
    }

    #[test]
    fn every_op_code_round_trips() {
        for code in 0..13u8 {
            let op = bin_op_from(code).expect("valid code");
            assert_eq!(bin_op_code(op), code);
        }
        assert_eq!(bin_op_from(13), Err(WireError));
        for code in 0..2u8 {
            let op = un_op_from(code).expect("valid code");
            assert_eq!(un_op_code(op), code);
        }
        assert_eq!(un_op_from(2), Err(WireError));
    }

    #[test]
    fn sym_val_and_lattice_round_trip() {
        for v in [SymVal::Top, SymVal::Poly(poly_xy_plus_7()), SymVal::Bottom] {
            assert_eq!(round_trip(&v, put_sym_val, get_sym_val), v);
        }
        for v in [Lattice::Top, Lattice::Const(-1), Lattice::Bottom] {
            assert_eq!(round_trip(&v, |w, &x| put_lattice(w, x), get_lattice), v);
        }
    }

    #[test]
    fn truncated_summaries_fail_cleanly() {
        let mut w = Writer::new();
        put_summary(
            &mut w,
            &CachedSummary::RetJump {
                fns: vec![JumpFn::Const(1), JumpFn::Bottom],
                charges: [0; 7],
            },
        );
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                get_summary(&mut r, SummaryStage::RetJump).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn summary_payload_must_match_its_family() {
        let mut w = Writer::new();
        put_summary(
            &mut w,
            &CachedSummary::ModRef {
                mods: ModSet::default(),
                refs: ModSet::default(),
            },
        );
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(get_summary(&mut r, SummaryStage::RetJump).is_err());
    }
}
