//! `ipcc serve` — the crash-isolated incremental analysis service.
//!
//! This module is the library half of the daemon: everything except the
//! transport. The CLI layers a JSON-lines protocol (stdin/stdout and a
//! Unix socket), admission control, and signal handling on top of
//! [`ServeEngine`]; the tier-1 tests and the `serve-identity` fuzz
//! oracle drive the engine directly.
//!
//! * [`json`] — a minimal, bounded JSON parser/serializer (the protocol
//!   wire format; no external dependencies);
//! * [`cache`] — the content-hash-keyed [`SummaryCache`] with its
//!   snapshot–validate–commit transaction overlay;
//! * [`incremental`] — the cache-aware analysis driver, differentially
//!   bit-identical to a cold [`crate::Analysis::run`];
//! * [`engine`] — the typed request engine: `analyze`, `constants`,
//!   `explain`, `update`, `load`, plus telemetry.
//!
//! See `docs/SERVE.md` for the protocol and the service contract.

pub mod cache;
pub mod engine;
pub mod incremental;
pub mod json;

pub use cache::{CacheKey, CacheStats, CacheTxn, CachedSummary, SummaryCache, SummaryStage};
pub use engine::{
    config_from_overrides, ConstantsReport, EngineStats, ProgramModel, RequestOutcome, ServeEngine,
    ServeError,
};
pub use incremental::{analyze_incremental, cacheable, same_results};
pub use json::{Json, Object};
