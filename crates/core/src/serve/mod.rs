//! `ipcc serve` — the crash-isolated incremental analysis service.
//!
//! This module is the library half of the daemon: everything except the
//! transport. The CLI layers a JSON-lines protocol (stdin/stdout and a
//! Unix socket), admission control, and signal handling on top of
//! [`ServeEngine`]; the tier-1 tests and the `serve-identity` fuzz
//! oracle drive the engine directly.
//!
//! * [`json`] — a minimal, bounded JSON parser/serializer (the protocol
//!   wire format; no external dependencies);
//! * [`cache`] — the content-hash-keyed [`SummaryCache`] with its
//!   snapshot–validate–commit transaction overlay;
//! * [`incremental`] — the cache-aware analysis driver, differentially
//!   bit-identical to a cold [`crate::Analysis::run`];
//! * [`engine`] — the typed request engine: `analyze`, `constants`,
//!   `explain`, `update`, `load`, plus telemetry;
//! * [`workers`] — the multi-worker read engine: an epoch-gated,
//!   Mutex-free snapshot cell ([`EpochCell`]) and the read-request
//!   thread pool ([`ReadPool`]) behind `--serve-workers`;
//! * [`wire`] — panic-free binary codecs for every cached summary;
//! * [`store`] — the durable on-disk snapshot of the cache (atomic
//!   write-temp/fsync/rename saves, fully checksummed loads that
//!   discard with a reason and cold-start on any mismatch, plus the
//!   deterministic disk-fault injector behind `--inject-io`).
//!
//! See `docs/SERVE.md` for the protocol and the service contract, and
//! `docs/ROBUSTNESS.md` for the durability contract.

pub mod cache;
pub mod engine;
pub mod incremental;
pub mod json;
pub mod store;
pub mod wire;
pub mod workers;

pub use cache::{CacheKey, CacheStats, CacheTxn, CachedSummary, SummaryCache, SummaryStage};
pub use engine::{
    config_from_overrides, ConstantsReport, EngineStats, ProgramModel, RequestOutcome, ServeEngine,
    ServeError,
};
pub use incremental::{
    analyze_incremental, cacheable, config_fingerprint, same_results, shape_fingerprint,
};
pub use json::{Json, Object};
pub use store::{DiscardReason, IoFault, IoInjector, LoadStatus, SummaryStore};
pub use workers::{EpochCell, PoolCounters, ReadJob, ReadPool, Snapshot};
