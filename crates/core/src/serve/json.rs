//! A minimal JSON value type, parser, and serializer for the serve
//! protocol.
//!
//! The workspace is dependency-free by policy, so the daemon carries its
//! own JSON layer. It covers exactly what a JSON-lines protocol needs:
//! the full value grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null), strict parsing (trailing garbage is an
//! error), and deterministic serialization (object keys keep insertion
//! order). Numbers are kept as `i64` when they are integral — every
//! quantity in the protocol is — and `f64` otherwise.
//!
//! The parser is defensive by construction: recursion depth is bounded
//! (a hostile request of 100k nested `[` must not overflow the daemon's
//! stack) and all errors are values, never panics.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// request, shallow enough that parsing cannot exhaust the stack.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Insertion order is preserved as a parallel key list so
    /// serialization is deterministic; lookups go through the map.
    Object(Object),
}

/// A JSON object preserving insertion order.
///
/// Protocol objects are small (a request has ~4 keys, the largest reply
/// payload ~25), so entries live in a flat vector: lookups are a short
/// linear scan and every insert is one key allocation, which is what
/// makes building and parsing a 1000-item `batch` frame cheap. The
/// serve daemon's per-item reply cost is dominated by exactly this.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Object {
    entries: Vec<(String, Json)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Inserts (or replaces) a key.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Object {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
        self
    }

    /// [`Object::set`] without the key copy — for callers that already
    /// own the key `String` (moving entries between objects).
    pub fn set_owned(&mut self, key: String, value: Json) -> &mut Object {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
        self
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Consumes the object into its `(key, value)` entries, in
    /// insertion order.
    pub fn into_entries(self) -> impl Iterator<Item = (String, Json)> {
        self.entries.into_iter()
    }
}

impl Json {
    /// Builder shorthand for an object.
    pub fn obj() -> Object {
        Object::new()
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl From<Object> for Json {
    fn from(o: Object) -> Json {
        Json::Object(o)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i).map_or(Json::Float(i as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::from(i as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            // JSON has no NaN/Infinity; null is the honest encoding.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    // Contiguous runs of plain characters are written as one slice —
    // per-character `write!` calls through the `fmt` machinery are what
    // used to dominate the cost of serializing a large reply frame.
    f.write_str("\"")?;
    let mut plain = 0; // start of the current unescaped run
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => None, // \u escape, formatted below
            _ => continue,
        };
        f.write_str(&s[plain..i])?;
        match escape {
            Some(e) => f.write_str(e)?,
            None => write!(f, "\\u{:04x}", c as u32)?,
        }
        plain = i + c.len_utf8();
    }
    f.write_str(&s[plain..])?;
    f.write_str("\"")
}

/// Parses one JSON value from `input`, rejecting trailing non-whitespace.
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Object::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(obj));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                obj.set(&key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(Json::Str(out));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        // Surrogate pairs are not reassembled; lone
                        // surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                if let Ok(s) = std::str::from_utf8(&bytes[start..*pos]) {
                    out.push_str(s);
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).expect(src).to_string()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("1.5"), "1.5");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_roundtrip_preserving_key_order() {
        assert_eq!(roundtrip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(
            roundtrip("{\"z\": 1, \"a\": {\"k\": null}}"),
            "{\"z\":1,\"a\":{\"k\":null}}"
        );
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn strings_escape_both_ways() {
        let v = parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(v.to_string(), r#""a\"b\\c\ndA""#);
        // Control characters are escaped on output.
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"⊥ λ ツ\"").unwrap();
        assert_eq!(v.as_str(), Some("⊥ λ ツ"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "tru",
            "01x",
            "-",
            "{1:2}",
            "[1 2]",
            "\"\\q\"",
            "\"\\u12\"",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Trailing garbage is rejected (JSON-lines framing needs this).
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn hostile_nesting_is_bounded() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_builder_and_accessors() {
        let mut o = Json::obj();
        o.set("op", Json::from("analyze"))
            .set("n", Json::from(3i64))
            .set("ok", Json::from(true));
        let j = Json::from(o);
        assert_eq!(j.to_string(), "{\"op\":\"analyze\",\"n\":3,\"ok\":true}");
        let o = j.as_object().unwrap();
        assert_eq!(o.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(o.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(o.get("ok").and_then(Json::as_bool), Some(true));
        assert!(o.get("missing").is_none());
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = parse("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        assert_eq!(v.to_string(), "9223372036854775807");
    }
}
