//! The multi-worker read engine behind `ipcc serve --serve-workers N`.
//!
//! The serve engine splits requests into two classes. *Read* requests
//! (`constants` and `explain` without overrides, `health`, `stats`)
//! answer from the warm analysis and touch nothing; *writer* requests
//! (`update`, `load`, `analyze`, anything with a config override) go
//! through the engine's snapshot–validate–commit path. This module lets
//! the reads run concurrently without a single lock:
//!
//! * [`Snapshot`] is an immutable view of the engine's committed state —
//!   the module, the warm analysis, the last outcome, and the telemetry
//!   counters — built by [`ServeEngine::snapshot`] after every committed
//!   writer operation. Everything heavy is behind an [`Arc`], so taking
//!   a snapshot is O(1) in the program size.
//! * [`EpochCell`] publishes the current snapshot to the readers with a
//!   seqlock-style epoch gate built from one atomic word: readers enter
//!   and leave by bumping a reader count, a writer claims an exclusive
//!   epoch by setting the writer bit and waiting for the count to drain.
//!   A reader therefore always observes one fully committed snapshot —
//!   never a half-replaced one — and the whole cell is Mutex-free, per
//!   the lock-free lint that covers this file.
//! * [`ReadPool`] owns the worker threads. Jobs are fanned out
//!   round-robin over per-worker channels; each job runs under the
//!   epoch gate and under a panic catch, so a crashing read request
//!   costs one structured answer, never a worker. [`ReadPool::quiesce`]
//!   is the writer's barrier: it returns once every submitted job has
//!   finished, which is what makes `update`/`load` an *exclusive* epoch
//!   and keeps replies serializable with the admission order.
//!
//! The identity contract survives by construction: the read path and
//! the engine path render answers through the same helpers
//! (`engine::constants_report` / `engine::explain_render`; by-name
//! `constants` takes an indexed fast path whose one hit is exactly the
//! declaration-order scan's result, since procedure names are unique).
//! A pooled answer is therefore byte-identical to the single-threaded
//! one — asserted differentially by `tests/serve.rs` at workers =
//! {1, 4} and by the `serve-bench` CI gate.

use crate::serve::cache::CacheStats;
use crate::serve::engine::{
    constants_report, explain_render, ConstantsReport, EngineStats, RequestOutcome, ServeError,
};
use crate::Analysis;
use ipcp_ir::cfg::ModuleCfg;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::{self, JoinHandle};

/// An immutable view of the engine's committed state, shared with the
/// read workers. Heavy members are `Arc`s of the values the engine
/// already holds, so building one never clones the program.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The lowered module the analysis ran over.
    pub mcfg: Arc<ModuleCfg>,
    /// The warm analysis under the base configuration.
    pub analysis: Arc<Analysis>,
    /// The most recent analyzing request's outcome (what a warm
    /// `constants` reply reports as its cache counters).
    pub outcome: RequestOutcome,
    /// Engine-lifetime request counters at publication time.
    pub stats: EngineStats,
    /// Cache telemetry at publication time.
    pub cache: CacheStats,
    /// Live cache entry count at publication time.
    pub cache_len: usize,
    /// The substitution total, computed on the first warm `constants`
    /// read of this snapshot and reused by every later one (it is a
    /// pure function of `(mcfg, analysis)`, and whole-program).
    substituted: Arc<OnceLock<usize>>,
    /// Procedure name → index into `mcfg.module.procs`, built on the
    /// first by-name read of this snapshot. Turns the per-request
    /// linear name scan into a hash lookup, which is what makes a
    /// 50-item `batch` frame cheap at the 100k tier.
    proc_index: Arc<OnceLock<std::collections::HashMap<String, usize>>>,
}

impl Snapshot {
    /// Builds a snapshot from the engine's committed parts.
    pub fn new(
        mcfg: Arc<ModuleCfg>,
        analysis: Arc<Analysis>,
        outcome: RequestOutcome,
        stats: EngineStats,
        cache: CacheStats,
        cache_len: usize,
    ) -> Snapshot {
        Snapshot {
            mcfg,
            analysis,
            outcome,
            stats,
            cache,
            cache_len,
            substituted: Arc::new(OnceLock::new()),
            proc_index: Arc::new(OnceLock::new()),
        }
    }

    /// The substitution total for this snapshot, computed lazily once.
    pub fn substituted(&self) -> usize {
        *self
            .substituted
            .get_or_init(|| self.analysis.substitute(&self.mcfg).total)
    }

    /// `CONSTANTS(p)` from the warm analysis — the read-path twin of
    /// [`crate::serve::ServeEngine::constants`] without overrides, built
    /// by the same helper so the answers are byte-identical.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `proc` names no procedure.
    pub fn constants(&self, proc: Option<&str>) -> Result<ConstantsReport, ServeError> {
        // By-name queries take the indexed fast path. Procedure names
        // are unique (a duplicate is a resolve error), so the single
        // indexed hit is exactly what the declaration-order scan in
        // `constants_report` would have produced.
        if let Some(want) = proc {
            let index = self.proc_index.get_or_init(|| {
                self.mcfg
                    .module
                    .procs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.name.clone(), i))
                    .collect()
            });
            let Some(&i) = index.get(want) else {
                return Err(ServeError::BadRequest(format!(
                    "no procedure named `{want}`"
                )));
            };
            let p = &self.mcfg.module.procs[i];
            return Ok(ConstantsReport {
                procs: vec![(p.name.clone(), self.analysis.constants_of(&self.mcfg, p.id))],
                substituted: self.substituted(),
            });
        }
        constants_report(&self.mcfg, &self.analysis, proc, self.substituted())
    }

    /// The `ipcc explain` derivation text from the warm analysis — the
    /// read-path twin of [`crate::serve::ServeEngine::explain`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `proc` or `slot` is unknown.
    pub fn explain(
        &self,
        proc: &str,
        slot: Option<&str>,
        depth: usize,
    ) -> Result<String, ServeError> {
        explain_render(&self.mcfg, &self.analysis, proc, slot, depth)
    }
}

/// The writer bit of [`EpochCell::state`]; reader entries add
/// [`READER`] so the count and the bit never collide.
const WRITER: u64 = 1;
/// One reader's contribution to the state word.
const READER: u64 = 2;

/// A lock-free publication cell: one value, many concurrent readers,
/// one writer at a time, no `Mutex`.
///
/// The protocol is a seqlock turned inside out. `state` packs a writer
/// bit (bit 0) and a reader count (bits 1..): a reader increments the
/// count and backs off if the writer bit was already set; the writer
/// sets the bit (blocking new readers), waits for the count to drain to
/// zero, replaces the value while provably alone, bumps `epoch`, and
/// clears the bit. Readers therefore hold a stable `&T` for the whole
/// closure — an in-flight `update` can never expose a half-committed
/// snapshot — and a publication is an *exclusive epoch*: it happens
/// after every reader that entered before it and before every reader
/// that enters after it.
#[derive(Debug)]
pub struct EpochCell<T> {
    state: AtomicU64,
    epoch: AtomicU64,
    slot: UnsafeCell<T>,
}

// Safety: `slot` is only written inside `publish` while the writer bit
// excludes every reader (count drained, new entries spin), and only read
// inside `read` while the held reader count excludes the writer. The
// atomics provide the acquire/release edges between the two sides.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            state: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            slot: UnsafeCell::new(value),
        }
    }

    /// Runs `f` over the current value. The reference is stable for the
    /// whole call: publication waits for this reader to leave.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        loop {
            let before = self.state.fetch_add(READER, Ordering::AcqRel);
            if before & WRITER == 0 {
                break;
            }
            // A writer holds the epoch: back out and wait it out.
            self.state.fetch_sub(READER, Ordering::AcqRel);
            while self.state.load(Ordering::Acquire) & WRITER != 0 {
                thread::yield_now();
            }
        }
        // Leave the epoch even if `f` panics — a stuck reader count
        // would wedge every future publication.
        struct Exit<'a>(&'a AtomicU64);
        impl Drop for Exit<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(READER, Ordering::AcqRel);
            }
        }
        let _exit = Exit(&self.state);
        // Safety: the held reader count keeps `publish` out of `slot`.
        f(unsafe { &*self.slot.get() })
    }

    /// Replaces the value under an exclusive epoch: claims the writer
    /// bit, waits for every active reader to leave, swaps, and bumps
    /// the epoch counter.
    pub fn publish(&self, value: T) {
        while self.state.fetch_or(WRITER, Ordering::AcqRel) & WRITER != 0 {
            thread::yield_now();
        }
        while self.state.load(Ordering::Acquire) != WRITER {
            thread::yield_now();
        }
        // Safety: writer bit set and reader count zero — this thread is
        // provably alone in the cell.
        unsafe {
            *self.slot.get() = value;
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.state.fetch_and(!WRITER, Ordering::Release);
    }

    /// How many publications have committed. Readers can compare epochs
    /// across reads; a single read never spans two.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// A read job: runs against the published snapshot, replies through
/// whatever sink it captured.
pub type ReadJob = Box<dyn FnOnce(&Snapshot) + Send + 'static>;

/// Shared pool telemetry. `submitted`/`completed` drive
/// [`ReadPool::quiesce`]; the rest surfaces in `stats`.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Jobs handed to the pool.
    pub submitted: AtomicU64,
    /// Jobs fully executed (reply sent or panic contained).
    pub completed: AtomicU64,
    /// Structured errors the read path answered (unknown procedure,
    /// missing field, …) — the read-side share of `stats.errors`.
    pub read_errors: AtomicU64,
    /// Read jobs whose execution panicked and was contained.
    pub panics: AtomicU64,
}

/// The pool of read workers. One instance per daemon; the transport
/// loop is the only submitter and the only publisher, so `submit` takes
/// `&mut self` while reads and publication stay shareable.
#[derive(Debug)]
pub struct ReadPool {
    cell: Arc<EpochCell<Snapshot>>,
    counters: Arc<PoolCounters>,
    senders: Vec<Sender<ReadJob>>,
    handles: Vec<JoinHandle<()>>,
    next: usize,
}

impl ReadPool {
    /// Spawns `workers` read threads (at least one) over `initial` as
    /// the first published snapshot.
    pub fn new(workers: usize, initial: Snapshot) -> ReadPool {
        let workers = workers.max(1);
        let cell = Arc::new(EpochCell::new(initial));
        let counters = Arc::new(PoolCounters::default());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx): (Sender<ReadJob>, Receiver<ReadJob>) = mpsc::channel();
            let cell = Arc::clone(&cell);
            let counters = Arc::clone(&counters);
            handles.push(thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cell.read(|snap| job(snap));
                    }));
                    if caught.is_err() {
                        counters.panics.fetch_add(1, Ordering::AcqRel);
                    }
                    counters.completed.fetch_add(1, Ordering::AcqRel);
                }
            }));
            senders.push(tx);
        }
        ReadPool {
            cell,
            counters,
            senders,
            handles,
            next: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared counters (cloneable handle; survives shutdown).
    pub fn counters(&self) -> Arc<PoolCounters> {
        Arc::clone(&self.counters)
    }

    /// The publication cell (for tests that exercise the epoch gate
    /// directly).
    pub fn cell(&self) -> Arc<EpochCell<Snapshot>> {
        Arc::clone(&self.cell)
    }

    /// Enqueues one read job, round-robin over the workers. If the
    /// target worker is gone the job runs on the caller instead — a
    /// request is never silently dropped.
    pub fn submit(&mut self, job: ReadJob) {
        self.counters.submitted.fetch_add(1, Ordering::AcqRel);
        let n = self.senders.len();
        let target = self.next % n;
        self.next = self.next.wrapping_add(1);
        if let Err(mpsc::SendError(job)) = self.senders[target].send(job) {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.cell.read(|snap| job(snap));
            }));
            if caught.is_err() {
                self.counters.panics.fetch_add(1, Ordering::AcqRel);
            }
            self.counters.completed.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Runs `f` against the published snapshot on the caller's thread,
    /// under the same epoch gate as the workers.
    pub fn read<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        self.cell.read(f)
    }

    /// The writer barrier: returns once every submitted job has
    /// executed. Called before a writer request so `update`/`load` see
    /// an exclusive epoch and replies stay in admission order across
    /// the read/write boundary.
    pub fn quiesce(&self) {
        while self.counters.completed.load(Ordering::Acquire)
            < self.counters.submitted.load(Ordering::Acquire)
        {
            thread::yield_now();
        }
    }

    /// Publishes a fresh snapshot (after a committed writer operation).
    pub fn publish(&self, snapshot: Snapshot) {
        self.cell.publish(snapshot);
    }

    /// Stops the workers: closes every queue and joins. Pending jobs
    /// finish first.
    pub fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ReadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn epoch_cell_readers_never_observe_a_torn_value() {
        // Publish arrays whose elements must all agree; hammer readers
        // while a writer republishes. Any torn read breaks the
        // all-equal invariant.
        let cell = Arc::new(EpochCell::new(vec![0u64; 64]));
        let stop = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut seen = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    cell.read(|v| {
                        assert!(v.iter().all(|&x| x == v[0]), "torn read: {v:?}");
                        seen = seen.max(v[0]);
                    });
                }
                seen
            }));
        }
        for k in 1..=200u64 {
            cell.publish(vec![k; 64]);
        }
        assert_eq!(cell.epoch(), 200);
        stop.store(1, Ordering::Release);
        for r in readers {
            let seen = r.join().unwrap();
            assert!(seen <= 200);
        }
    }

    #[test]
    fn epoch_cell_publish_waits_for_an_active_reader() {
        let cell = Arc::new(EpochCell::new(7u64));
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.read(|&v| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    v
                })
            })
        };
        entered_rx.recv().unwrap();
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.publish(8))
        };
        // The publisher must be excluded while the reader is inside.
        thread::sleep(Duration::from_millis(100));
        assert_eq!(cell.epoch(), 0, "publish slipped past an active reader");
        release_tx.send(()).unwrap();
        assert_eq!(reader.join().unwrap(), 7, "reader saw the old value");
        publisher.join().unwrap();
        assert_eq!(cell.epoch(), 1);
        cell.read(|&v| assert_eq!(v, 8));
    }

    #[test]
    fn epoch_cell_read_survives_a_panicking_closure() {
        let cell = EpochCell::new(1u64);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.read(|_| panic!("boom"));
        }));
        assert!(caught.is_err());
        // The reader count was released by the guard: publishing and
        // reading still work.
        cell.publish(2);
        cell.read(|&v| assert_eq!(v, 2));
    }

    fn test_snapshot() -> Snapshot {
        let src = "proc main() { print 1; }";
        let module = ipcp_ir::parse_and_resolve(src).unwrap();
        let mcfg = Arc::new(ipcp_ir::lower_module(&module));
        let config = crate::Config::default();
        let analysis = Arc::new(Analysis::run(&mcfg, &config));
        Snapshot::new(
            mcfg,
            analysis,
            RequestOutcome::default(),
            EngineStats::default(),
            CacheStats::default(),
            0,
        )
    }

    #[test]
    fn pool_executes_jobs_contains_panics_and_quiesces() {
        let mut pool = ReadPool::new(4, test_snapshot());
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..32 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move |snap| {
                assert_eq!(snap.mcfg.module.procs.len(), 1);
                if i % 8 == 3 {
                    panic!("injected read panic");
                }
                hits.fetch_add(1, Ordering::AcqRel);
            }));
        }
        pool.quiesce();
        let counters = pool.counters();
        assert_eq!(counters.submitted.load(Ordering::Acquire), 32);
        assert_eq!(counters.completed.load(Ordering::Acquire), 32);
        assert_eq!(counters.panics.load(Ordering::Acquire), 4);
        assert_eq!(hits.load(Ordering::Acquire), 28);
        // The pool still serves after contained panics.
        let hits2 = Arc::clone(&hits);
        pool.submit(Box::new(move |_| {
            hits2.fetch_add(1, Ordering::AcqRel);
        }));
        pool.quiesce();
        assert_eq!(hits.load(Ordering::Acquire), 29);
        pool.shutdown();
    }

    #[test]
    fn pool_zero_workers_clamps_to_one() {
        let mut pool = ReadPool::new(0, test_snapshot());
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move |_| {
            d.fetch_add(1, Ordering::AcqRel);
        }));
        pool.quiesce();
        assert_eq!(done.load(Ordering::Acquire), 1);
    }

    #[test]
    fn snapshot_reads_match_the_lazy_substitution_total() {
        let snap = test_snapshot();
        let direct = snap.analysis.substitute(&snap.mcfg).total;
        assert_eq!(snap.substituted(), direct);
        let report = snap.constants(None).unwrap();
        assert_eq!(report.substituted, direct);
        assert!(snap.constants(Some("nope")).is_err());
        assert!(snap.explain("nope", None, 3).is_err());
    }
}
