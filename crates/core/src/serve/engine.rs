//! The request engine behind `ipcc serve`: a warm program model, the
//! summary cache, and the per-request robustness envelope.
//!
//! The engine is transport-agnostic — the CLI wraps it in a JSON-lines
//! protocol over stdin/stdout and a Unix socket, while the
//! `serve-identity` fuzz oracle and the tier-1 tests drive it directly.
//! Every mutating entry point follows *snapshot–validate–commit*:
//!
//! 1. build the candidate state (new program model, fresh [`CacheTxn`])
//!    without touching the live state;
//! 2. validate (parse + resolve the whole program; run the analysis
//!    under [`quiet_catch`], so even a panicking request is a value);
//! 3. commit model, analysis, and staged cache entries together — or,
//!    on any failure, drop the candidate whole. A failed or panicked
//!    request provably leaves the model and cache exactly as they were.
//!
//! Per-request configuration overrides are routed through
//! [`Config::rebuild`]'s validating builder; an invalid combination
//! surfaces as [`ServeError::Invalid`] (wrapping
//! [`IpcpError::InvalidConfig`]) — a structured error response, never a
//! process exit.

use crate::config::{Config, Stage};
use crate::health::DegradationEvent;
use crate::quarantine::quiet_catch;
use crate::serve::cache::{CacheStats, CacheTxn, SummaryCache};
use crate::serve::incremental::analyze_incremental;
use crate::serve::json::{Json, Object};
use crate::{Analysis, IpcpError};
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::hash::hash_str;
use ipcp_ir::lang::{ast, parse_program, pretty};
use ipcp_ir::program::SlotLayout;
use ipcp_ir::{lower_module, parse_and_resolve};
use std::fmt;
use std::sync::Arc;

/// A structured request failure. Everything a hostile or unlucky request
/// can provoke is one of these — the daemon never exits on a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The toolchain rejected the input: malformed source
    /// ([`IpcpError::Frontend`]) or an invalid configuration override
    /// ([`IpcpError::InvalidConfig`]).
    Invalid(IpcpError),
    /// The request itself is malformed (unknown operation or procedure,
    /// wrong replacement fragment shape, bad parameter types).
    BadRequest(String),
    /// The request's analysis panicked and was contained at the request
    /// boundary; the model and cache were left untouched.
    Panic(String),
}

impl ServeError {
    /// Stable protocol error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Invalid(IpcpError::InvalidConfig(_)) => "invalid_config",
            ServeError::Invalid(IpcpError::Frontend(_)) => "frontend",
            ServeError::Invalid(_) => "error",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Invalid(e) => write!(f, "{e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Panic(msg) => write!(f, "panic contained: {msg}"),
        }
    }
}

impl From<IpcpError> for ServeError {
    fn from(e: IpcpError) -> ServeError {
        ServeError::Invalid(e)
    }
}

/// The program as the daemon holds it: a normalized global header plus
/// one normalized text per procedure, in declaration order. Normalized
/// means parsed and re-rendered through the pretty-printer, so two
/// textually different but structurally identical bodies hash alike and
/// [`ProgramModel::source`] is byte-stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramModel {
    header: String,
    procs: Vec<(String, String)>,
}

fn proc_text(p: &ast::ProcDecl) -> String {
    let one = ast::Program {
        globals: Vec::new(),
        procs: vec![p.clone()],
    };
    pretty::program(&one)
}

impl ProgramModel {
    /// Parses and normalizes FT source into a model.
    ///
    /// # Errors
    ///
    /// [`IpcpError::Frontend`] on a parse error. Resolution (unknown
    /// names, missing `main`, …) is validated by the engine against the
    /// recombined source, so a model by itself may still be unresolvable.
    pub fn from_source(src: &str) -> Result<ProgramModel, IpcpError> {
        let prog = parse_program(src)?;
        let header = pretty::program(&ast::Program {
            globals: prog.globals.clone(),
            procs: Vec::new(),
        });
        let procs = prog
            .procs
            .iter()
            .map(|p| (p.name.clone(), proc_text(p)))
            .collect();
        Ok(ProgramModel { header, procs })
    }

    /// The whole program, byte-identical to what [`pretty::program`]
    /// renders for the parsed source.
    pub fn source(&self) -> String {
        let mut out = self.header.clone();
        for (i, (_, text)) in self.procs.iter().enumerate() {
            if i > 0 || !self.header.is_empty() {
                out.push('\n');
            }
            out.push_str(text);
        }
        out
    }

    /// Content hashes of each procedure's normalized text, in order —
    /// the `own` input to [`ipcp_analysis::summary_keys`].
    pub fn own_hashes(&self) -> Vec<u128> {
        self.procs.iter().map(|(_, t)| hash_str(t)).collect()
    }

    /// Procedure names in declaration order.
    pub fn proc_names(&self) -> impl Iterator<Item = &str> {
        self.procs.iter().map(|(n, _)| n.as_str())
    }

    /// The normalized text of procedure `name`, if it exists. A
    /// single-procedure text is itself a parseable FT program, so it can
    /// be mutated and fed back through [`ServeEngine::update`] — the
    /// serve-identity fuzz oracle is built on this.
    pub fn proc_text(&self, name: &str) -> Option<&str> {
        self.procs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }

    /// A candidate model with procedure `name`'s definition replaced by
    /// `fragment` (a complete `proc name(...) { ... }` definition; the
    /// name must match, the signature may change arity).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when `name` is unknown or the fragment
    /// is not exactly one matching procedure definition;
    /// [`ServeError::Invalid`] when the fragment fails to parse.
    pub fn replace_proc(&self, name: &str, fragment: &str) -> Result<ProgramModel, ServeError> {
        let index = self
            .procs
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| ServeError::BadRequest(format!("no procedure named `{name}`")))?;
        let prog = parse_program(fragment).map_err(|d| ServeError::Invalid(d.into()))?;
        if !prog.globals.is_empty() {
            return Err(ServeError::BadRequest(
                "replacement fragment must not declare globals (use `load` \
                 to replace the whole program)"
                    .to_string(),
            ));
        }
        let [decl] = prog.procs.as_slice() else {
            return Err(ServeError::BadRequest(format!(
                "replacement fragment must contain exactly one procedure, got {}",
                prog.procs.len()
            )));
        };
        if decl.name != name {
            return Err(ServeError::BadRequest(format!(
                "fragment defines `{}`, expected `{name}` (renames change the \
                 program shape; use `load`)",
                decl.name
            )));
        }
        let mut next = self.clone();
        next.procs[index].1 = proc_text(decl);
        Ok(next)
    }
}

/// What one request did: cache traffic, degradation telemetry, and the
/// quarantine roster. Returned by every analyzing entry point and kept
/// for `stats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Units served from cache.
    pub hits: u64,
    /// The subset of `hits` served by entries a previous process
    /// persisted (restored via `--store`).
    pub persisted_hits: u64,
    /// Units recomputed.
    pub misses: u64,
    /// Whether the configuration bypassed the cache.
    pub bypassed: bool,
    /// Whether any stage degraded (the response-level `degraded` marker:
    /// every reported constant is still sound, but some answers were
    /// forced to ⊥ instead of invented).
    pub degraded: bool,
    /// The degradation events, in order.
    pub events: Vec<DegradationEvent>,
    /// Names of quarantined procedures.
    pub quarantined: Vec<String>,
}

impl RequestOutcome {
    fn from_run(txn: &CacheTxn, mcfg: &ModuleCfg, analysis: &Analysis) -> RequestOutcome {
        RequestOutcome {
            hits: txn.hits,
            persisted_hits: txn.persisted_hits,
            misses: txn.misses,
            bypassed: txn.bypassed,
            degraded: analysis.health.degraded(),
            events: analysis.health.events.clone(),
            quarantined: analysis
                .quarantined
                .iter()
                .enumerate()
                .filter(|&(_, &q)| q)
                .map(|(i, _)| mcfg.module.procs[i].name.clone())
                .collect(),
        }
    }
}

/// Engine-lifetime request counters, surfaced by `stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Analyzing requests served (analyze / constants / update / load).
    pub requests: u64,
    /// Requests whose analysis degraded (budget, quarantine, deadline).
    pub degraded_requests: u64,
    /// Request-level panics contained (state rolled back).
    pub panics_contained: u64,
    /// Structured errors returned (bad requests, invalid overrides,
    /// frontend rejections).
    pub errors: u64,
    /// Committed `update` operations.
    pub updates: u64,
    /// Committed `load` operations.
    pub loads: u64,
}

/// Runs one analysis over `(mcfg, own)` under the request envelope:
/// quiet-caught, transaction-staged. On a panic the transaction is
/// dropped with the cache untouched.
fn run_request(
    cache: &SummaryCache,
    config: &Config,
    mcfg: &ModuleCfg,
    own: &[u128],
) -> Result<(Analysis, CacheTxn), String> {
    let mut txn = CacheTxn::new();
    let analysis = quiet_catch(|| analyze_incremental(mcfg, config, own, cache, &mut txn))?;
    Ok((analysis, txn))
}

/// The warm analysis engine. See the module docs for the commit
/// discipline.
#[derive(Debug)]
pub struct ServeEngine {
    base_config: Config,
    model: ProgramModel,
    mcfg: Arc<ModuleCfg>,
    current: Arc<Analysis>,
    cache: SummaryCache,
    stats: EngineStats,
    last_outcome: RequestOutcome,
}

impl ServeEngine {
    /// Builds an engine over `src`, validating `config` through the
    /// builder and running the initial (cold) analysis.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for a bad configuration or source;
    /// [`ServeError::Panic`] if the initial analysis panicked outside
    /// quarantine.
    pub fn new(src: &str, config: &Config) -> Result<ServeEngine, ServeError> {
        ServeEngine::new_with_cache(src, config, SummaryCache::new())
    }

    /// Builds an engine over `src` seeded with a pre-populated cache —
    /// typically one restored from a persisted store
    /// ([`SummaryCache::restore`]). Seeding happens *before* the initial
    /// analysis, so even the startup run is served warm: its outcome's
    /// `persisted_hits` is the restart payoff.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::new`].
    pub fn new_with_cache(
        src: &str,
        config: &Config,
        cache: SummaryCache,
    ) -> Result<ServeEngine, ServeError> {
        let (config, model, mcfg) = ServeEngine::boot(src, config)?;
        ServeEngine::finish(config, model, mcfg, cache)
    }

    /// Builds an engine whose cache is restored from a persisted
    /// [`SummaryStore`]. The store is verified against the fingerprints
    /// of *this* `(src, config)` pair; any mismatch or corruption means
    /// a cold cache, reported in the returned [`LoadStatus`] — never an
    /// error. The initial analysis then runs against whatever was
    /// restored, so a clean restart is warm from its very first request.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::new`] — store problems alone never fail.
    pub fn new_with_store(
        src: &str,
        config: &Config,
        store: &mut crate::serve::store::SummaryStore,
    ) -> Result<(ServeEngine, crate::serve::store::LoadStatus), ServeError> {
        let (config, model, mcfg) = ServeEngine::boot(src, config)?;
        let cfp = crate::serve::incremental::config_fingerprint(&config);
        let sfp = crate::serve::incremental::shape_fingerprint(&mcfg, &config);
        let (entries, status) = store.load(cfp, sfp);
        let cache = SummaryCache::restore(entries, SummaryCache::DEFAULT_CAPACITY);
        let engine = ServeEngine::finish(config, model, mcfg, cache)?;
        Ok((engine, status))
    }

    /// Validates the configuration and lowers the program — everything
    /// construction needs before a cache exists.
    fn boot(src: &str, config: &Config) -> Result<(Config, ProgramModel, ModuleCfg), ServeError> {
        let config = config.rebuild().build()?;
        let model = ProgramModel::from_source(src)?;
        let module = parse_and_resolve(&model.source()).map_err(IpcpError::from)?;
        let mcfg = lower_module(&module);
        Ok((config, model, mcfg))
    }

    /// Runs the initial analysis over a booted program with `cache`
    /// already seeded.
    fn finish(
        config: Config,
        model: ProgramModel,
        mcfg: ModuleCfg,
        cache: SummaryCache,
    ) -> Result<ServeEngine, ServeError> {
        let mut cache = cache;
        let own = model.own_hashes();
        let (analysis, txn) =
            run_request(&cache, &config, &mcfg, &own).map_err(ServeError::Panic)?;
        let outcome = RequestOutcome::from_run(&txn, &mcfg, &analysis);
        cache.commit(txn);
        Ok(ServeEngine {
            base_config: config,
            model,
            mcfg: Arc::new(mcfg),
            current: Arc::new(analysis),
            cache,
            stats: EngineStats {
                requests: 1,
                degraded_requests: outcome.degraded as u64,
                ..EngineStats::default()
            },
            last_outcome: outcome,
        })
    }

    /// The engine's base configuration.
    pub fn config(&self) -> &Config {
        &self.base_config
    }

    /// The current normalized program source.
    pub fn source(&self) -> String {
        self.model.source()
    }

    /// The current module (for callers that inspect results directly).
    pub fn mcfg(&self) -> &ModuleCfg {
        &self.mcfg
    }

    /// The current analysis under the base configuration.
    pub fn analysis(&self) -> &Analysis {
        &self.current
    }

    /// Lifetime request counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Lifetime cache telemetry.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The live summary cache (read-only) — what a snapshot persists.
    pub fn cache(&self) -> &SummaryCache {
        &self.cache
    }

    /// The `(configuration, shape)` fingerprints of the *current*
    /// program under the base configuration — the pair the summary
    /// store stamps into its header. The shape fingerprint tracks the
    /// current model, so a snapshot taken after `load`ing a different
    /// program only restores against that program.
    pub fn fingerprints(&self) -> (u128, u128) {
        (
            crate::serve::incremental::config_fingerprint(&self.base_config),
            crate::serve::incremental::shape_fingerprint(&self.mcfg, &self.base_config),
        )
    }

    /// Live cache entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The most recent analyzing request's outcome.
    pub fn last_outcome(&self) -> &RequestOutcome {
        &self.last_outcome
    }

    fn record(&mut self, outcome: &RequestOutcome) {
        self.stats.requests += 1;
        if outcome.degraded {
            self.stats.degraded_requests += 1;
        }
        self.last_outcome = outcome.clone();
    }

    /// Runs the current program under `config`, committing the cache
    /// transaction (and the request accounting) only on success.
    fn run_guarded(&mut self, config: Config) -> Result<(Analysis, RequestOutcome), ServeError> {
        let own = self.model.own_hashes();
        match run_request(&self.cache, &config, &self.mcfg, &own) {
            Err(msg) => {
                self.stats.panics_contained += 1;
                self.stats.errors += 1;
                Err(ServeError::Panic(msg))
            }
            Ok((analysis, txn)) => {
                let outcome = RequestOutcome::from_run(&txn, &self.mcfg, &analysis);
                self.cache.commit(txn);
                self.record(&outcome);
                Ok((analysis, outcome))
            }
        }
    }

    /// Re-analyzes the current program. With `overrides: None` the base
    /// configuration is used and the engine's warm analysis is replaced;
    /// with an override configuration the run is a one-off (the warm
    /// base-config analysis stays current). Either way the summary cache
    /// is shared.
    pub fn analyze(&mut self, overrides: Option<Config>) -> Result<RequestOutcome, ServeError> {
        let replace = overrides.is_none();
        let config = overrides.unwrap_or(self.base_config);
        let (analysis, outcome) = self.run_guarded(config)?;
        if replace {
            self.current = Arc::new(analysis);
        }
        Ok(outcome)
    }

    /// `CONSTANTS(p)` for one procedure (or all) from the warm analysis,
    /// plus the substitution total. With overrides, a one-off analysis
    /// runs first (sharing the cache).
    pub fn constants(
        &mut self,
        proc: Option<&str>,
        overrides: Option<Config>,
    ) -> Result<(ConstantsReport, RequestOutcome), ServeError> {
        let (one_off, outcome) = match overrides {
            None => (None, self.last_outcome.clone()),
            Some(config) => {
                let (analysis, outcome) = self.run_guarded(config)?;
                (Some(analysis), outcome)
            }
        };
        let analysis: &Analysis = match &one_off {
            Some(a) => a,
            None => &self.current,
        };
        let substituted = analysis.substitute(&self.mcfg).total;
        match constants_report(&self.mcfg, analysis, proc, substituted) {
            Ok(report) => Ok((report, outcome)),
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Explains where `(proc, slot)` values came from, rendered as the
    /// same text `ipcc explain` prints. `slot: None` explains every
    /// entry slot of the procedure.
    pub fn explain(
        &mut self,
        proc: &str,
        slot: Option<&str>,
        depth: usize,
    ) -> Result<String, ServeError> {
        match explain_render(&self.mcfg, &self.current, proc, slot, depth) {
            Ok(text) => Ok(text),
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Replaces one procedure's definition and incrementally re-analyzes
    /// under the base configuration. Snapshot–validate–commit: any
    /// failure (parse, resolve, panic) leaves model, analysis, and cache
    /// exactly as they were.
    pub fn update(&mut self, name: &str, fragment: &str) -> Result<RequestOutcome, ServeError> {
        let candidate = match self.model.replace_proc(name, fragment) {
            Ok(c) => c,
            Err(e) => {
                self.stats.errors += 1;
                return Err(e);
            }
        };
        let outcome = self.commit_model(candidate)?;
        self.stats.updates += 1;
        Ok(outcome)
    }

    /// Replaces the whole program (shape changes included) and
    /// re-analyzes. A shape change re-keys every summary, but the cache
    /// itself persists, so a `load` back to a previously seen program is
    /// warm again.
    pub fn load(&mut self, src: &str) -> Result<RequestOutcome, ServeError> {
        let candidate = match ProgramModel::from_source(src) {
            Ok(c) => c,
            Err(e) => {
                self.stats.errors += 1;
                return Err(ServeError::Invalid(e));
            }
        };
        let outcome = self.commit_model(candidate)?;
        self.stats.loads += 1;
        Ok(outcome)
    }

    fn commit_model(&mut self, candidate: ProgramModel) -> Result<RequestOutcome, ServeError> {
        let module = match parse_and_resolve(&candidate.source()) {
            Ok(m) => m,
            Err(d) => {
                self.stats.errors += 1;
                return Err(ServeError::Invalid(d.into()));
            }
        };
        let mcfg = lower_module(&module);
        let own = candidate.own_hashes();
        match run_request(&self.cache, &self.base_config, &mcfg, &own) {
            Err(msg) => {
                self.stats.panics_contained += 1;
                self.stats.errors += 1;
                Err(ServeError::Panic(msg))
            }
            Ok((analysis, txn)) => {
                let outcome = RequestOutcome::from_run(&txn, &mcfg, &analysis);
                self.cache.commit(txn);
                self.record(&outcome);
                self.model = candidate;
                self.mcfg = Arc::new(mcfg);
                self.current = Arc::new(analysis);
                Ok(outcome)
            }
        }
    }

    /// An immutable [`Snapshot`] of the committed state for the read
    /// workers — O(1) in the program size (`Arc` clones plus the small
    /// telemetry structs). The transport publishes one after every
    /// committed writer operation.
    pub fn snapshot(&self) -> crate::serve::workers::Snapshot {
        crate::serve::workers::Snapshot::new(
            Arc::clone(&self.mcfg),
            Arc::clone(&self.current),
            self.last_outcome.clone(),
            self.stats,
            self.cache.stats(),
            self.cache.len(),
        )
    }
}

/// `CONSTANTS(p)` for one procedure (or all) of `mcfg` under `analysis`.
/// The single rendering path behind both [`ServeEngine::constants`] and
/// [`crate::serve::workers::Snapshot::constants`] — sharing it is what
/// makes pooled answers byte-identical to single-threaded ones.
pub(crate) fn constants_report(
    mcfg: &ModuleCfg,
    analysis: &Analysis,
    proc: Option<&str>,
    substituted: usize,
) -> Result<ConstantsReport, ServeError> {
    let mut procs = Vec::new();
    for p in &mcfg.module.procs {
        if let Some(want) = proc {
            if p.name != want {
                continue;
            }
        }
        procs.push((p.name.clone(), analysis.constants_of(mcfg, p.id)));
    }
    if proc.is_some() && procs.is_empty() {
        return Err(ServeError::BadRequest(format!(
            "no procedure named `{}`",
            proc.unwrap_or_default()
        )));
    }
    Ok(ConstantsReport { procs, substituted })
}

/// The `ipcc explain` text for `(proc, slot)` of `mcfg` under
/// `analysis` — the single rendering path behind both
/// [`ServeEngine::explain`] and
/// [`crate::serve::workers::Snapshot::explain`].
pub(crate) fn explain_render(
    mcfg: &ModuleCfg,
    analysis: &Analysis,
    proc: &str,
    slot: Option<&str>,
    depth: usize,
) -> Result<String, ServeError> {
    let Some(p) = mcfg.module.proc_named(proc) else {
        return Err(ServeError::BadRequest(format!(
            "no procedure named `{proc}`"
        )));
    };
    let layout = SlotLayout::new(&mcfg.module);
    let n_slots = layout.n_slots(p.arity());
    let pid = p.id;
    let mut out = String::new();
    let mut matched = false;
    for s in 0..n_slots {
        let name = layout.slot_name(&mcfg.module, pid, s);
        if slot.is_some_and(|want| want != name) {
            continue;
        }
        matched = true;
        out.push_str(&crate::explain::render(mcfg, analysis, pid, s, depth));
    }
    if !matched {
        return Err(ServeError::BadRequest(format!(
            "no entry slot named `{}` in `{proc}`",
            slot.unwrap_or_default()
        )));
    }
    Ok(out)
}

/// `CONSTANTS(p)` pairs per procedure plus the substitution metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstantsReport {
    /// `(procedure name, [(slot name, value)])`, in declaration order.
    pub procs: Vec<(String, Vec<(String, i64)>)>,
    /// Total constant occurrences the substitution metric would replace.
    pub substituted: usize,
}

impl ConstantsReport {
    /// The report as protocol JSON.
    pub fn to_json(&self) -> Json {
        let procs = self
            .procs
            .iter()
            .map(|(name, consts)| {
                let pairs = consts
                    .iter()
                    .map(|(slot, value)| {
                        let mut o = Object::new();
                        o.set("slot", Json::from(slot.as_str()));
                        o.set("value", Json::from(*value));
                        Json::from(o)
                    })
                    .collect::<Vec<_>>();
                let mut o = Object::new();
                o.set("proc", Json::from(name.as_str()));
                o.set("constants", Json::from(pairs));
                Json::from(o)
            })
            .collect::<Vec<_>>();
        let mut o = Object::new();
        o.set("procs", Json::from(procs));
        o.set("substituted", Json::from(self.substituted));
        Json::from(o)
    }
}

/// Builds a request configuration from a JSON override object, routed
/// through [`Config::rebuild`]'s validating builder. Unknown keys and
/// ill-typed values are [`ServeError::BadRequest`]; invalid combinations
/// surface the builder's [`IpcpError::InvalidConfig`] as a structured
/// error.
pub fn config_from_overrides(base: Config, overrides: &Object) -> Result<Config, ServeError> {
    use crate::config::JumpFnKind;
    let mut b = base.rebuild();
    let bad = |key: &str, want: &str| {
        ServeError::BadRequest(format!("config override `{key}` must be {want}"))
    };
    let as_bool = |key: &str, v: &Json| v.as_bool().ok_or_else(|| bad(key, "a boolean"));
    let as_u64 = |key: &str, v: &Json| {
        v.as_i64()
            .filter(|&i| i >= 0)
            .map(|i| i as u64)
            .ok_or_else(|| bad(key, "a non-negative integer"))
    };
    for (key, value) in overrides.iter() {
        b = match key {
            "jump_fn" => {
                let label = value.as_str().ok_or_else(|| bad(key, "a string"))?;
                let kind = JumpFnKind::ALL
                    .into_iter()
                    .find(|k| k.label() == label)
                    .ok_or_else(|| {
                        ServeError::BadRequest(format!(
                            "unknown jump_fn `{label}` (expected one of: literal, \
                             intraprocedural, pass-through, polynomial)"
                        ))
                    })?;
                b.jump_fn_impl(kind)
            }
            "mod" => b.mod_info(as_bool(key, value)?),
            "return_jfs" => b.return_jfs(as_bool(key, value)?),
            "compose_return_jfs" => b.compose_return_jfs(as_bool(key, value)?),
            "zero_globals" => b.zero_globals(as_bool(key, value)?),
            "gated" => b.gated(as_bool(key, value)?),
            "pruned_ssa" => b.pruned_ssa(as_bool(key, value)?),
            "strict" => b.strict(as_bool(key, value)?),
            "quarantine" => b.quarantine(as_bool(key, value)?),
            "jobs" => b.jobs(as_u64(key, value)? as usize),
            "deadline_ms" => b.deadline_ms(as_u64(key, value)?),
            "max_solver_iterations" => b.max_solver_iterations(as_u64(key, value)?),
            "max_poly_terms" => b.max_poly_terms(as_u64(key, value)? as usize),
            "fault" | "inject_panic" => {
                let o = value
                    .as_object()
                    .ok_or_else(|| bad(key, "an object {\"stage\", ...}"))?;
                let stage_label = o
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(key, "an object with a string `stage`"))?;
                let stage = Stage::ALL
                    .into_iter()
                    .find(|s| s.label() == stage_label)
                    .ok_or_else(|| {
                        ServeError::BadRequest(format!("unknown stage `{stage_label}`"))
                    })?;
                if key == "fault" {
                    let at = o
                        .get("at")
                        .map(|v| as_u64("fault.at", v))
                        .transpose()?
                        .unwrap_or(1);
                    b.fault(stage, at)
                } else {
                    let proc = o
                        .get("proc")
                        .map(|v| as_u64("inject_panic.proc", v))
                        .transpose()?
                        .unwrap_or(0);
                    b.inject_panic(stage, proc as usize)
                }
            }
            _ => {
                return Err(ServeError::BadRequest(format!(
                    "unknown config override `{key}`"
                )))
            }
        };
    }
    Ok(b.build()?)
}
