//! The content-hash-keyed summary cache and its transaction overlay.
//!
//! The daemon caches three kinds of per-procedure summaries across
//! requests, keyed by the [`summary keys`](ipcp_analysis::keys) derived
//! from normalized procedure text, the program shape, and the analysis
//! configuration:
//!
//! * MOD/REF direct effects (keyed by the procedure's *own* hash — the
//!   unit reads nothing else);
//! * return jump functions (keyed by the transitive-callee Merkle cone,
//!   with the governor charges the unit made recorded alongside, so a
//!   hit replays them — see [`crate::Governor::add_charges`]);
//! * the SSA + symbolic form feeding forward jump functions (cone-keyed;
//!   the unit makes no governor charges).
//!
//! Only *clean* units are cached: a unit that quarantined, tripped a
//! budget, or exhausted its step slice is recomputed on every request,
//! so a cached entry never freezes a degradation into the warm path (and
//! a crashing request "repairs" itself by simply never polluting the
//! cache — the next identical request recomputes from scratch).
//!
//! Writes never land directly: each request stages its inserts in a
//! [`CacheTxn`] and the engine commits the transaction only after the
//! request completed without a request-level panic — snapshot, validate,
//! commit. A dropped transaction provably leaves the cache untouched.
//!
//! The cache is bounded ([`SummaryCache::with_capacity`]) with FIFO
//! eviction: admission control bounds the request queue, this bounds the
//! memory a long-lived daemon accretes.

use crate::config::Stage;
use crate::jump::ProcSymbolic;
use crate::JumpFn;
use ipcp_analysis::ModSet;
use std::collections::{HashMap, VecDeque};

/// Recorded per-stage governor charges, in [`Stage::ALL`] order.
pub type Charges = [u64; Stage::ALL.len()];

/// Which summary family a key addresses. Part of the key so the three
/// families can never alias even under hash collision of the content
/// part.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SummaryStage {
    /// MOD/REF direct effects.
    ModRef,
    /// Return jump functions.
    RetJump,
    /// SSA + symbolic evaluation (the forward-jump-function input).
    Jump,
}

/// A cache key: the summary family plus the content digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Summary family.
    pub stage: SummaryStage,
    /// Content digest (own hash or Merkle cone, mixed with the program
    /// shape and configuration fingerprints).
    pub digest: u128,
}

/// One cached summary.
#[derive(Clone, Debug)]
pub enum CachedSummary {
    /// Direct MOD/REF effects of one procedure. The unit charges nothing
    /// (the per-procedure `Stage::ModRef` charge is made by the loop,
    /// hit or miss alike).
    ModRef {
        /// Directly modified slots.
        mods: ModSet,
        /// Directly referenced slots.
        refs: ModSet,
    },
    /// Return jump functions for every entry slot of one procedure, with
    /// the `Stage::RetJump` charges the clean unit made.
    RetJump {
        /// Per-slot functions.
        fns: Vec<JumpFn>,
        /// Recorded governor charges, replayed on a hit.
        charges: Charges,
    },
    /// The SSA + symbolic form of one procedure (charge-free).
    Jump {
        /// The cached symbolic form.
        sym: Box<ProcSymbolic>,
    },
}

/// Aggregate cache telemetry, surfaced by `health`/`stats` and the
/// telemetry tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Units served from cache (charges replayed cleanly).
    pub hits: u64,
    /// Units recomputed (absent, unreplayable, or forced live).
    pub misses: u64,
    /// Entries evicted by the FIFO bound.
    pub evictions: u64,
    /// Requests that bypassed the cache entirely (configurations whose
    /// units read prior-round state, e.g. gated jump functions).
    pub bypasses: u64,
    /// Entries restored from a persisted store at startup.
    pub recovered: u64,
    /// The subset of `hits` served by a restored entry — the payoff of
    /// persistence: work a *previous process* did and this one did not.
    pub persisted_hits: u64,
}

impl CacheStats {
    /// Hits as a fraction of lookups, `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One live entry: the summary plus whether it was restored from a
/// persisted store (rather than computed by this process) — restored
/// entries are counted separately on a hit so the payoff of persistence
/// is observable.
#[derive(Debug)]
struct CacheEntry {
    summary: CachedSummary,
    recovered: bool,
}

/// The daemon-lifetime summary cache. See the module docs.
#[derive(Debug)]
pub struct SummaryCache {
    entries: HashMap<CacheKey, CacheEntry>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    stats: CacheStats,
}

impl SummaryCache {
    /// Default entry bound: three families × a generous procedure count.
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// An empty cache with the default bound.
    pub fn new() -> SummaryCache {
        SummaryCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> SummaryCache {
        SummaryCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime telemetry.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a summary. Hit/miss accounting happens in the
    /// transaction (a present entry can still be treated as a miss when
    /// its recorded charges cannot be replayed bit-identically).
    pub fn get(&self, key: CacheKey) -> Option<&CachedSummary> {
        self.entries.get(&key).map(|e| &e.summary)
    }

    /// Like [`SummaryCache::get`], also reporting whether the entry was
    /// restored from a persisted store rather than computed live.
    pub fn get_with_origin(&self, key: CacheKey) -> Option<(&CachedSummary, bool)> {
        self.entries.get(&key).map(|e| (&e.summary, e.recovered))
    }

    /// Rebuilds a cache from entries decoded out of a persisted store,
    /// preserving their FIFO order and marking every entry recovered.
    /// Entries beyond the capacity evict oldest-first exactly as live
    /// inserts would (without counting as evictions — they were evicted
    /// by the *bound*, not by churn).
    pub fn restore(entries: Vec<(CacheKey, CachedSummary)>, capacity: usize) -> SummaryCache {
        let mut cache = SummaryCache::with_capacity(capacity);
        for (key, summary) in entries {
            cache.insert_entry(
                key,
                CacheEntry {
                    summary,
                    recovered: true,
                },
            );
        }
        cache.stats = CacheStats {
            recovered: cache.entries.len() as u64,
            ..CacheStats::default()
        };
        cache
    }

    /// The live entries in FIFO (insertion) order — the order a snapshot
    /// persists, so restore + re-encode is byte-identical.
    pub fn iter_fifo(&self) -> impl Iterator<Item = (CacheKey, &CachedSummary)> {
        self.order
            .iter()
            .filter_map(|k| self.entries.get(k).map(|e| (*k, &e.summary)))
    }

    fn insert(&mut self, key: CacheKey, value: CachedSummary) {
        self.insert_entry(
            key,
            CacheEntry {
                summary: value,
                recovered: false,
            },
        );
    }

    fn insert_entry(&mut self, key: CacheKey, entry: CacheEntry) {
        if self.entries.insert(key, entry).is_none() {
            self.order.push_back(key);
            while self.entries.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Commits a completed request's transaction: staged inserts land,
    /// per-request counters fold into the lifetime stats. Only called
    /// after the request ran to completion — a panicked request's
    /// transaction is dropped instead, leaving the cache untouched.
    pub fn commit(&mut self, txn: CacheTxn) {
        for (key, value) in txn.staged {
            self.insert(key, value);
        }
        self.stats.hits += txn.hits;
        self.stats.misses += txn.misses;
        self.stats.persisted_hits += txn.persisted_hits;
        self.stats.bypasses += txn.bypassed as u64;
    }
}

impl Default for SummaryCache {
    fn default() -> Self {
        SummaryCache::new()
    }
}

/// One request's staged view of the cache: reads go to the base cache,
/// writes stage here until [`SummaryCache::commit`].
#[derive(Debug, Default)]
pub struct CacheTxn {
    staged: Vec<(CacheKey, CachedSummary)>,
    /// Units served from cache during this request.
    pub hits: u64,
    /// Units recomputed during this request.
    pub misses: u64,
    /// The subset of `hits` served by entries restored from a persisted
    /// store.
    pub persisted_hits: u64,
    /// Whether this request's configuration bypassed the cache.
    pub bypassed: bool,
}

impl CacheTxn {
    /// A fresh, empty transaction.
    pub fn new() -> CacheTxn {
        CacheTxn::default()
    }

    /// Stages an insert for commit.
    pub fn stage(&mut self, key: CacheKey, value: CachedSummary) {
        self.staged.push((key, value));
    }

    /// Number of staged inserts.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_analysis::ModSet;

    fn key(d: u128) -> CacheKey {
        CacheKey {
            stage: SummaryStage::ModRef,
            digest: d,
        }
    }

    fn entry() -> CachedSummary {
        CachedSummary::ModRef {
            mods: ModSet::default(),
            refs: ModSet::default(),
        }
    }

    #[test]
    fn commit_lands_staged_entries_and_counters() {
        let mut cache = SummaryCache::new();
        let mut txn = CacheTxn::new();
        txn.stage(key(1), entry());
        txn.hits = 2;
        txn.misses = 1;
        assert!(cache.get(key(1)).is_none(), "staged, not visible");
        cache.commit(txn);
        assert!(cache.get(key(1)).is_some());
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn dropped_txn_leaves_cache_untouched() {
        let cache = SummaryCache::new();
        {
            let mut txn = CacheTxn::new();
            txn.stage(key(7), entry());
            txn.misses = 5;
            // Dropped without commit — the panic path.
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let mut cache = SummaryCache::with_capacity(2);
        for d in 0..5u128 {
            let mut txn = CacheTxn::new();
            txn.stage(key(d), entry());
            cache.commit(txn);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 3);
        assert!(cache.get(key(0)).is_none(), "oldest evicted");
        assert!(cache.get(key(4)).is_some(), "newest kept");
    }

    #[test]
    fn families_do_not_alias() {
        let mut cache = SummaryCache::new();
        let mut txn = CacheTxn::new();
        txn.stage(key(9), entry());
        cache.commit(txn);
        let other = CacheKey {
            stage: SummaryStage::Jump,
            digest: 9,
        };
        assert!(cache.get(other).is_none());
    }

    #[test]
    fn restore_preserves_fifo_order_and_marks_recovery() {
        let entries: Vec<(CacheKey, CachedSummary)> =
            (0..4u128).map(|d| (key(d), entry())).collect();
        let cache = SummaryCache::restore(entries, SummaryCache::DEFAULT_CAPACITY);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().recovered, 4);
        assert_eq!(cache.stats().evictions, 0);
        let order: Vec<u128> = cache.iter_fifo().map(|(k, _)| k.digest).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        for d in 0..4u128 {
            let (_, recovered) = cache.get_with_origin(key(d)).expect("restored");
            assert!(recovered);
        }
        // A live insert on top is not marked recovered.
        let mut cache = cache;
        let mut txn = CacheTxn::new();
        txn.stage(key(9), entry());
        cache.commit(txn);
        let (_, recovered) = cache.get_with_origin(key(9)).expect("inserted");
        assert!(!recovered);
    }

    #[test]
    fn restore_beyond_capacity_keeps_the_newest() {
        let entries: Vec<(CacheKey, CachedSummary)> =
            (0..5u128).map(|d| (key(d), entry())).collect();
        let cache = SummaryCache::restore(entries, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().recovered, 2);
        assert_eq!(cache.stats().evictions, 0, "bound, not churn");
        assert!(cache.get(key(3)).is_some());
        assert!(cache.get(key(4)).is_some());
    }

    #[test]
    fn persisted_hits_fold_into_lifetime_stats() {
        let mut cache = SummaryCache::new();
        let mut txn = CacheTxn::new();
        txn.hits = 3;
        txn.persisted_hits = 2;
        cache.commit(txn);
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().persisted_hits, 2);
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_order_queue() {
        let mut cache = SummaryCache::with_capacity(2);
        for _ in 0..10 {
            let mut txn = CacheTxn::new();
            txn.stage(key(1), entry());
            cache.commit(txn);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
    }
}
