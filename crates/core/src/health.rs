//! Degradation telemetry and the budget governor.
//!
//! Every analysis stage charges its work against the per-stage budgets in
//! [`AnalysisLimits`](crate::config::AnalysisLimits) through a [`Governor`].
//! When a budget is exhausted (for real, or via the deterministic
//! [`FaultInjection`](crate::config::FaultInjection) hook) the stage
//! degrades to a sound approximation — ⊥ is always a correct answer in
//! the Figure-1 lattice — and records a [`DegradationEvent`] here, so
//! callers can tell a full-precision result from a clipped one.

use crate::config::{Config, Stage};
use ipcp_ssa::DeadlineLatch;
use std::fmt;
use std::sync::Arc;

/// Why a degradation happened — the response ladder is the same (force
/// toward ⊥, stay sound), but callers triage the three causes
/// differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradationKind {
    /// A per-stage budget in `AnalysisLimits` ran out (or the
    /// deterministic `FaultInjection` hook mimicked that).
    Budget,
    /// A per-procedure unit of work panicked or exhausted its slice, and
    /// only that procedure was degraded. See `docs/ROBUSTNESS.md`.
    Quarantined,
    /// The wall-clock `Deadline` expired mid-stage.
    Deadline,
}

impl DegradationKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            DegradationKind::Budget => "budget",
            DegradationKind::Quarantined => "quarantined",
            DegradationKind::Deadline => "deadline",
        }
    }
}

impl fmt::Display for DegradationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One budget exhaustion and the response taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The stage whose budget ran out.
    pub stage: Stage,
    /// Why the stage degraded.
    pub kind: DegradationKind,
    /// What was weakened, in human terms (procedure/slot names where
    /// available).
    pub detail: String,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DegradationKind::Budget => write!(f, "[{}] {}", self.stage, self.detail),
            kind => write!(f, "[{}:{}] {}", self.stage, kind, self.detail),
        }
    }
}

/// Telemetry for one analysis (or transformation) run.
///
/// An empty event list means the run completed at full precision — the
/// default budgets guarantee this on the builtin suite. A non-empty list
/// means some values were soundly forced toward ⊥; the results are still
/// correct, just weaker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisHealth {
    /// Every degradation, in the order it occurred.
    pub events: Vec<DegradationEvent>,
}

impl AnalysisHealth {
    /// Whether any stage degraded.
    pub fn degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// Number of degradations recorded for one stage.
    pub fn count(&self, stage: Stage) -> usize {
        self.events.iter().filter(|e| e.stage == stage).count()
    }

    /// Number of degradations of one kind (any stage).
    pub fn count_kind(&self, kind: DegradationKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Records one budget degradation.
    pub fn record(&mut self, stage: Stage, detail: impl Into<String>) {
        self.record_kind(stage, DegradationKind::Budget, detail);
    }

    /// Records one degradation of an explicit kind.
    pub fn record_kind(&mut self, stage: Stage, kind: DegradationKind, detail: impl Into<String>) {
        self.events.push(DegradationEvent {
            stage,
            kind,
            detail: detail.into(),
        });
    }

    /// Merges another run's events into this one (used when a pipeline
    /// stage re-runs the analysis internally, and when parallel workers'
    /// shard telemetry is folded back in).
    ///
    /// `absorb` is order-preserving concatenation, **not** commutative:
    /// `a.absorb(b)` keeps `a`'s events before `b`'s, because event order
    /// is meaningful chronology (strict mode promotes the *first* event,
    /// and `ipcc` prints them in occurrence order). It *is* associative —
    /// `(a ++ b) ++ c == a ++ (b ++ c)` — which is the property sharded
    /// merges rely on: as long as every caller folds shards in the fixed
    /// sequential unit order, the merged telemetry is identical to the
    /// sequential run no matter how the folds are grouped. Tested by
    /// `absorb_is_associative_not_commutative`.
    pub fn absorb(&mut self, other: AnalysisHealth) {
        self.events.extend(other.events);
    }
}

impl fmt::Display for AnalysisHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return writeln!(f, "analysis health: ok (no degradations)");
        }
        writeln!(f, "analysis health: {} degradation(s)", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Budget accountant threaded through the analysis stages.
///
/// Each stage calls [`Governor::charge`] per unit of work; a `false`
/// return means the stage's budget (or an injected fault) tripped and the
/// stage must degrade. Counters are per-run — a fresh `Governor` is built
/// for every [`Analysis::run`](crate::Analysis::run).
///
/// Under `jobs > 1` each worker charges against its own *shard* (a
/// [`Governor::shard`] clone with zeroed counters), and the pipeline
/// folds the shards back into the master in the fixed sequential unit
/// order via [`Governor::can_absorb`] / [`Governor::absorb_shard`] —
/// see `docs/ROBUSTNESS.md` § "Concurrency contract". The wall-clock
/// deadline is the one piece of genuinely shared state: every shard
/// holds the same [`DeadlineLatch`] behind an `Arc`, so the first
/// cooperative check on any worker to observe expiry makes every later
/// check, on every worker, a single relaxed load.
#[derive(Clone, Debug)]
pub struct Governor {
    config: Config,
    counters: [u64; Stage::ALL.len()],
    latch: Arc<DeadlineLatch>,
    /// Accumulated telemetry; taken by the pipeline when the run ends.
    pub health: AnalysisHealth,
}

fn stage_index(stage: Stage) -> usize {
    match stage {
        Stage::ModRef => 0,
        Stage::Jump => 1,
        Stage::RetJump => 2,
        Stage::Solver => 3,
        Stage::Binding => 4,
        Stage::Cloning => 5,
        Stage::Inline => 6,
    }
}

impl Governor {
    /// A governor enforcing `config`'s limits and fault injection.
    pub fn new(config: &Config) -> Governor {
        Governor {
            config: *config,
            counters: [0; Stage::ALL.len()],
            latch: Arc::new(DeadlineLatch::new()),
            health: AnalysisHealth::default(),
        }
    }

    /// A worker's shard: same config and the *shared* deadline latch, but
    /// zeroed counters and empty telemetry. The worker runs its units
    /// against the shard optimistically; the pipeline then either absorbs
    /// the shard (when [`Governor::can_absorb`] proves the outcome is
    /// bit-identical to sequential charging) or replays the unit against
    /// the master.
    pub fn shard(&self) -> Governor {
        Governor {
            config: self.config,
            counters: [0; Stage::ALL.len()],
            latch: Arc::clone(&self.latch),
            health: AnalysisHealth::default(),
        }
    }

    /// Would folding `shard`'s charges into this governor reproduce the
    /// sequential outcome exactly?
    ///
    /// For each stage with `n > 0` shard charges on top of `c0` master
    /// charges, sequential execution would have charged `c0+1 ..= c0+n`.
    /// The shard saw `1 ..= n` — every charge clean (a shard that tripped
    /// is replayed, never absorbed). The outcomes agree iff no charge in
    /// `c0+1 ..= c0+n` trips either the cap (`c0 + n <= cap`) or an armed
    /// fault on that stage (`c0 + n < fault.at`). Since trip conditions
    /// are monotone in the counter, clean at offset `c0` implies every
    /// intermediate charge is clean too.
    ///
    /// This is the canonical fold's documented **fast path**: the check
    /// is `O(|stages|)` integer compares with no allocation, so in a
    /// healthy run (budgets not near a cap, no armed fault) every unit
    /// absorbs and the fold's cost is a handful of adds per unit —
    /// replay, which re-runs the unit against the master, is reserved
    /// for units whose charges genuinely cross a boundary. The split is
    /// observable: [`PhaseFold`](crate::PhaseFold) stamps
    /// absorbed/replayed counts into each phase's
    /// [`PhaseTime`](crate::PhaseTime).
    pub fn can_absorb(&self, shard: &Governor) -> bool {
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            let n = shard.counters[i];
            if n == 0 {
                continue;
            }
            let total = self.counters[i] + n;
            if total > self.cap(stage) {
                return false;
            }
            if let Some(fault) = self.config.fault_injection {
                if fault.stage == stage && total >= fault.at {
                    return false;
                }
            }
        }
        true
    }

    /// Folds a shard's charges and telemetry into this governor. Call in
    /// the fixed sequential unit order, only after [`Governor::can_absorb`]
    /// returned `true` (the caller replays the unit sequentially
    /// otherwise).
    pub fn absorb_shard(&mut self, shard: Governor) {
        for i in 0..Stage::ALL.len() {
            self.counters[i] += shard.counters[i];
        }
        self.health.absorb(shard.health);
    }

    /// The raw per-stage charge counters, in [`Stage::ALL`] order. The
    /// serve cache records a clean unit's shard counters alongside its
    /// summary, so a later cache hit can replay the charges bulk-wise
    /// (see [`Governor::add_charges`]) and stay bit-identical to a cold
    /// run even under budgets and fault injection.
    pub fn counters(&self) -> [u64; Stage::ALL.len()] {
        self.counters
    }

    /// Bulk-charges previously recorded counters onto this governor
    /// *without* trip checks — pair with [`Governor::can_absorb`] on a
    /// shard: record the counters into a fresh shard, prove the fold is
    /// clean, then absorb. Used by the serve cache's hit path.
    pub fn add_charges(&mut self, counts: &[u64; Stage::ALL.len()]) {
        for (counter, &charge) in self.counters.iter_mut().zip(counts) {
            *counter += charge;
        }
    }

    /// The shared deadline latch, for threading into symbolic-evaluation
    /// budgets ([`ipcp_ssa::symbolic::EvalBudget`]).
    pub fn latch(&self) -> &Arc<DeadlineLatch> {
        &self.latch
    }

    /// A governor that never trips — for callers that manage budgets
    /// themselves (unit tests of individual stages).
    pub fn unlimited() -> Governor {
        Governor::new(&Config::default())
    }

    /// The budget that applies to `stage`'s counter, if the stage is
    /// metered by a simple count (polynomial shape caps are checked
    /// separately, against the limits directly).
    fn cap(&self, stage: Stage) -> u64 {
        let l = &self.config.limits;
        match stage {
            // One charge per procedure's direct-effects pass; a runaway
            // here would mean a runaway procedure count, so the solver
            // iteration cap is the natural bound.
            Stage::ModRef => l.max_solver_iterations,
            Stage::Jump => l.max_symbolic_steps,
            Stage::RetJump => l.max_symbolic_steps,
            Stage::Solver => l.max_solver_iterations,
            Stage::Binding => l.max_solver_iterations,
            Stage::Cloning => l.max_clones as u64,
            Stage::Inline => l.max_inline_statements as u64,
        }
    }

    /// Charges one unit of work to `stage`. Returns `false` when the
    /// stage's budget is exhausted (or a fault trips) — the caller must
    /// then degrade and usually [`Governor::record`] what it weakened.
    #[must_use]
    pub fn charge(&mut self, stage: Stage) -> bool {
        let i = stage_index(stage);
        self.counters[i] += 1;
        if let Some(fault) = self.config.fault_injection {
            if fault.stage == stage && self.counters[i] >= fault.at {
                return false;
            }
        }
        self.counters[i] <= self.cap(stage)
    }

    /// Whether `stage` would trip right now, without charging.
    pub fn exhausted(&self, stage: Stage) -> bool {
        let i = stage_index(stage);
        if let Some(fault) = self.config.fault_injection {
            if fault.stage == stage && self.counters[i] + 1 >= fault.at {
                return true;
            }
        }
        self.counters[i] >= self.cap(stage)
    }

    /// The limits being enforced.
    pub fn limits(&self) -> &crate::config::AnalysisLimits {
        &self.config.limits
    }

    /// Records a budget degradation event.
    pub fn record(&mut self, stage: Stage, detail: impl Into<String>) {
        self.health.record(stage, detail);
    }

    /// Records a quarantine event (a per-procedure unit of work was
    /// contained).
    pub fn record_quarantine(&mut self, stage: Stage, detail: impl Into<String>) {
        self.health
            .record_kind(stage, DegradationKind::Quarantined, detail);
    }

    /// Records a deadline-expiry event.
    pub fn record_deadline(&mut self, stage: Stage, detail: impl Into<String>) {
        self.health
            .record_kind(stage, DegradationKind::Deadline, detail);
    }

    /// Whether the configured wall-clock deadline (if any) has expired.
    /// Cooperative loops check this once per iteration (or per
    /// `Deadline::CHECK_INTERVAL` steps) and degrade soundly when it
    /// fires. Routed through the shared latch: after the first expiry
    /// observed anywhere in the run, this is one relaxed load.
    pub fn deadline_expired(&self) -> bool {
        self.config
            .deadline
            .is_some_and(|d| self.latch.expired(d.instant()))
    }

    /// Consumes the governor, yielding the collected telemetry.
    pub fn into_health(self) -> AnalysisHealth {
        self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisLimits;

    #[test]
    fn charge_trips_at_the_cap() {
        let limits = AnalysisLimits {
            max_solver_iterations: 3,
            ..AnalysisLimits::default()
        };
        let mut gov = Governor::new(&Config::default().with_limits(limits));
        assert!(gov.charge(Stage::Solver));
        assert!(gov.charge(Stage::Solver));
        assert!(gov.charge(Stage::Solver));
        assert!(!gov.charge(Stage::Solver), "4th charge exceeds cap of 3");
        // Other stages are unaffected.
        assert!(gov.charge(Stage::Jump));
    }

    #[test]
    fn fault_injection_trips_exactly_at_n() {
        let mut gov = Governor::new(&Config::default().with_fault(Stage::RetJump, 2));
        assert!(gov.charge(Stage::RetJump));
        assert!(!gov.charge(Stage::RetJump), "2nd charge hits the fault");
        // A fault at one stage leaves the others alone.
        assert!(gov.charge(Stage::Solver));
    }

    #[test]
    fn exhausted_previews_without_charging() {
        let mut gov = Governor::new(&Config::default().with_fault(Stage::Cloning, 1));
        assert!(gov.exhausted(Stage::Cloning));
        assert!(!gov.exhausted(Stage::Inline));
        assert!(!gov.charge(Stage::Cloning));
    }

    #[test]
    fn health_counts_per_stage() {
        let mut h = AnalysisHealth::default();
        assert!(!h.degraded());
        h.record(Stage::Jump, "f cs0 slot a: poly too large");
        h.record(Stage::Jump, "g cs1 slot b: poly too large");
        h.record(Stage::Solver, "iteration cap");
        assert!(h.degraded());
        assert_eq!(h.count(Stage::Jump), 2);
        assert_eq!(h.count(Stage::Solver), 1);
        assert_eq!(h.count(Stage::Binding), 0);
        let text = h.to_string();
        assert!(text.contains("3 degradation(s)"), "{text}");
        assert!(text.contains("[jump]"), "{text}");
    }

    #[test]
    fn absorb_concatenates_events() {
        let mut a = AnalysisHealth::default();
        a.record(Stage::Cloning, "budget");
        let mut b = AnalysisHealth::default();
        b.record(Stage::Inline, "budget");
        a.absorb(b);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn kinds_are_counted_and_labelled() {
        let mut h = AnalysisHealth::default();
        h.record(Stage::Solver, "iteration cap");
        h.record_kind(Stage::Jump, DegradationKind::Quarantined, "f panicked");
        h.record_kind(Stage::Solver, DegradationKind::Deadline, "out of time");
        assert_eq!(h.count_kind(DegradationKind::Budget), 1);
        assert_eq!(h.count_kind(DegradationKind::Quarantined), 1);
        assert_eq!(h.count_kind(DegradationKind::Deadline), 1);
        let text = h.to_string();
        assert!(text.contains("[jump:quarantined] f panicked"), "{text}");
        assert!(text.contains("[solver:deadline] out of time"), "{text}");
        assert!(text.contains("[solver] iteration cap"), "{text}");
    }

    #[test]
    fn governor_tracks_the_deadline() {
        let gov = Governor::unlimited();
        assert!(!gov.deadline_expired(), "no deadline configured");
        let expired = Config::default()
            .with_deadline(crate::config::Deadline::after(std::time::Duration::ZERO));
        let mut gov = Governor::new(&expired);
        assert!(gov.deadline_expired());
        gov.record_deadline(Stage::Solver, "out of time");
        gov.record_quarantine(Stage::Jump, "f panicked");
        let h = gov.into_health();
        assert_eq!(h.count_kind(DegradationKind::Deadline), 1);
        assert_eq!(h.count_kind(DegradationKind::Quarantined), 1);
    }

    #[test]
    fn modref_stage_is_metered() {
        let limits = AnalysisLimits {
            max_solver_iterations: 2,
            ..AnalysisLimits::default()
        };
        let mut gov = Governor::new(&Config::default().with_limits(limits));
        assert!(gov.charge(Stage::ModRef));
        assert!(gov.charge(Stage::ModRef));
        assert!(!gov.charge(Stage::ModRef));
    }

    #[test]
    fn absorb_is_associative_not_commutative() {
        let ev = |stage: Stage, d: &str| {
            let mut h = AnalysisHealth::default();
            h.record(stage, d);
            h
        };
        let (a, b, c) = (
            ev(Stage::ModRef, "a"),
            ev(Stage::Jump, "b"),
            ev(Stage::Solver, "c"),
        );
        // (a ++ b) ++ c
        let mut left = a.clone();
        left.absorb(b.clone());
        left.absorb(c.clone());
        // a ++ (b ++ c)
        let mut bc = b.clone();
        bc.absorb(c.clone());
        let mut right = a.clone();
        right.absorb(bc);
        assert_eq!(left, right, "absorb is associative");
        // ...but NOT commutative: order is meaningful chronology.
        let mut ba = b;
        ba.absorb(a);
        let mut ab = ev(Stage::ModRef, "a");
        ab.absorb(ev(Stage::Jump, "b"));
        assert_ne!(ab, ba, "absorb preserves order");
    }

    #[test]
    fn shard_starts_clean_and_absorbs_back() {
        let limits = AnalysisLimits {
            max_solver_iterations: 10,
            ..AnalysisLimits::default()
        };
        let mut master = Governor::new(&Config::default().with_limits(limits));
        assert!(master.charge(Stage::Solver));
        let mut shard = master.shard();
        assert!(!shard.health.degraded());
        for _ in 0..4 {
            assert!(shard.charge(Stage::Solver));
        }
        shard.record(Stage::Solver, "from the shard");
        assert!(master.can_absorb(&shard));
        master.absorb_shard(shard);
        // 1 (master) + 4 (shard) charges so far; 5 more fit under cap 10.
        for _ in 0..5 {
            assert!(master.charge(Stage::Solver));
        }
        assert!(!master.charge(Stage::Solver), "11th charge exceeds cap");
        assert_eq!(master.health.events.len(), 1);
    }

    #[test]
    fn can_absorb_rejects_cap_overflow_and_fault_crossings() {
        let limits = AnalysisLimits {
            max_solver_iterations: 5,
            ..AnalysisLimits::default()
        };
        let mut master = Governor::new(&Config::default().with_limits(limits));
        for _ in 0..3 {
            assert!(master.charge(Stage::Solver));
        }
        let mut ok = master.shard();
        assert!(ok.charge(Stage::Solver));
        assert!(ok.charge(Stage::Solver));
        assert!(master.can_absorb(&ok), "3 + 2 = 5 = cap is clean");
        let mut over = master.shard();
        for _ in 0..3 {
            let _ = over.charge(Stage::Solver);
        }
        assert!(!master.can_absorb(&over), "3 + 3 = 6 > cap");

        // Fault crossing: master at 1 charge, fault at 3.
        let mut faulted = Governor::new(&Config::default().with_fault(Stage::RetJump, 3));
        assert!(faulted.charge(Stage::RetJump));
        let mut s1 = faulted.shard();
        assert!(s1.charge(Stage::RetJump));
        assert!(faulted.can_absorb(&s1), "1 + 1 = 2 < fault at 3");
        let mut s2 = faulted.shard();
        assert!(s2.charge(Stage::RetJump));
        assert!(s2.charge(Stage::RetJump));
        assert!(!faulted.can_absorb(&s2), "1 + 2 = 3 >= fault at 3");
        // An empty shard is always absorbable, even past a trip point.
        assert!(faulted.can_absorb(&faulted.shard()));
    }

    #[test]
    fn shards_share_the_deadline_latch() {
        let expired = Config::default()
            .with_deadline(crate::config::Deadline::after(std::time::Duration::ZERO));
        let master = Governor::new(&expired);
        let shard = master.shard();
        // The shard's check fires the shared latch...
        assert!(shard.deadline_expired());
        // ...which the master (and every other shard) then sees latched.
        assert!(master.latch().has_fired());
        assert!(master.deadline_expired());
    }

    #[test]
    fn default_governor_is_effectively_unlimited() {
        let mut gov = Governor::unlimited();
        for _ in 0..10_000 {
            assert!(gov.charge(Stage::Solver));
        }
        assert!(gov.into_health().events.is_empty());
    }
}
