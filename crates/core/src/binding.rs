//! The binding-multigraph formulation of the propagation step.
//!
//! §2 notes that besides the procedure-level worklist, "alternative
//! formulations based on the binding multi-graph are possible" (Cooper &
//! Kennedy's linear-time side-effect machinery): make each *entry slot* a
//! node, draw an edge from caller slot `v` to callee slot `s` whenever the
//! jump function for `s` reads `v`, and run the worklist over slots
//! instead of procedures. A slot is re-evaluated only when something in
//! its jump function's support actually changed — realizing the
//! `O(Σ_s Σ_y cost(J_s^y))` bound of §3.1.5 directly.
//!
//! [`solve_binding_graph`] computes exactly the same fixpoint as
//! [`crate::solver::solve`] (the lattice is finite-depth and both run the
//! same monotone equations to exhaustion); `tests` and the property suite
//! assert the equivalence, and the Criterion benches compare their costs.

use crate::config::Stage;
use crate::health::Governor;
use crate::jump::ForwardJumpFns;
use crate::solver::ValSets;
use ipcp_analysis::CallGraph;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::SlotLayout;
use ipcp_ssa::Lattice;
use std::collections::VecDeque;

/// A node of the binding graph: `(procedure index, slot index)`.
type Node = (usize, usize);

/// Solves the interprocedural propagation over the binding multigraph.
///
/// `entry_globals` plays the same role as in [`crate::solver::solve`], and
/// so does the governor: each slot re-evaluation charges one
/// [`Stage::Binding`] iteration, and on exhaustion every reachable
/// procedure's slots are soundly forced to ⊥.
pub fn solve_binding_graph(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    jump_fns: &ForwardJumpFns,
    entry_globals: Lattice,
    gov: &mut Governor,
) -> ValSets {
    let n_procs = mcfg.module.procs.len();
    let slots_of = |p: usize| layout.n_slots(mcfg.module.procs[p].arity());

    let mut vals: Vec<Vec<Lattice>> = (0..n_procs)
        .map(|p| vec![Lattice::Top; slots_of(p)])
        .collect();

    // Dependency edges: for every call edge and callee slot, the jump
    // function's support slots in the caller feed the callee slot.
    // `deps[caller][v]` lists (callee, slot, caller, site) tuples to
    // re-evaluate when `(caller, v)` changes.
    #[derive(Clone, Copy)]
    struct Target {
        callee: usize,
        slot: usize,
        caller: usize,
        site: ipcp_ir::cfg::CallSiteId,
    }
    let mut deps: Vec<Vec<Vec<Target>>> = (0..n_procs)
        .map(|p| vec![Vec::new(); slots_of(p)])
        .collect();
    // Support-free jump functions (constants, ⊥) are applied once at
    // start-up — they can never change.
    let mut initial: Vec<(Target, Lattice)> = Vec::new();

    let mut meets = 0usize;
    for edge in &cg.edges {
        let fns = jump_fns.at(edge.caller, edge.site);
        for (slot, jf) in fns.iter().enumerate() {
            let t = Target {
                callee: edge.callee.index(),
                slot,
                caller: edge.caller.index(),
                site: edge.site,
            };
            let support = jf.support();
            if support.is_empty() {
                initial.push((t, jf.eval(|_| Lattice::Bottom)));
            } else {
                for v in support {
                    deps[t.caller][v as usize].push(t);
                }
            }
        }
    }

    // Worklist of dirty nodes.
    let mut queued: Vec<Vec<bool>> = (0..n_procs).map(|p| vec![false; slots_of(p)]).collect();
    let mut work: VecDeque<Node> = VecDeque::new();
    let lower = |vals: &mut Vec<Vec<Lattice>>,
                 queued: &mut Vec<Vec<bool>>,
                 work: &mut VecDeque<Node>,
                 node: Node,
                 value: Lattice,
                 meets: &mut usize| {
        *meets += 1;
        if vals[node.0][node.1].meet_in(value) && !queued[node.0][node.1] {
            queued[node.0][node.1] = true;
            work.push_back(node);
        }
    };

    // Entry procedure: formals ⊥ (unknown environment), globals per config.
    let entry = mcfg.module.entry.index();
    let arity = mcfg.module.procs[entry].arity();
    for slot in 0..slots_of(entry) {
        let init = if slot < arity {
            Lattice::Bottom
        } else {
            entry_globals
        };
        lower(
            &mut vals,
            &mut queued,
            &mut work,
            (entry, slot),
            init,
            &mut meets,
        );
    }
    // Constant jump functions fire once.
    for (t, value) in initial {
        lower(
            &mut vals,
            &mut queued,
            &mut work,
            (t.callee, t.slot),
            value,
            &mut meets,
        );
    }

    let mut iterations = 0usize;
    while let Some(node) = work.pop_front() {
        if gov.deadline_expired() {
            gov.record_deadline(
                Stage::Binding,
                format!(
                    "deadline expired after {iterations} slot updates; \
                     all reachable entry slots forced to ⊥"
                ),
            );
            for (pi, v) in vals.iter_mut().enumerate() {
                if cg.reachable[pi] {
                    v.fill(Lattice::Bottom);
                }
            }
            break;
        }
        if !gov.charge(Stage::Binding) {
            gov.record(
                Stage::Binding,
                format!(
                    "iteration budget exhausted after {iterations} slot updates; \
                     all reachable entry slots forced to ⊥"
                ),
            );
            for (pi, v) in vals.iter_mut().enumerate() {
                if cg.reachable[pi] {
                    v.fill(Lattice::Bottom);
                }
            }
            break;
        }
        queued[node.0][node.1] = false;
        iterations += 1;
        // Re-evaluate every jump function that reads this slot.
        for &t in &deps[node.0][node.1] {
            let jf = &jump_fns.at(ipcp_ir::program::ProcId::from(t.caller), t.site)[t.slot];
            let caller_vals = &vals[t.caller];
            let incoming = jf.eval(|v| {
                caller_vals
                    .get(v as usize)
                    .copied()
                    .unwrap_or(Lattice::Bottom)
            });
            lower(
                &mut vals,
                &mut queued,
                &mut work,
                (t.callee, t.slot),
                incoming,
                &mut meets,
            );
        }
    }

    ValSets {
        vals,
        meets,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, JumpFnKind};
    use crate::pipeline::Analysis;
    use ipcp_ir::{lower_module, parse_and_resolve};
    use ipcp_suite::{generate, GenConfig, PROGRAMS};

    /// Runs both solvers on the same jump functions and compares the
    /// fixpoints.
    fn check_equivalence(mcfg: &ipcp_ir::ModuleCfg, config: &Config, label: &str) {
        let analysis = Analysis::run(mcfg, config);
        let entry_globals = if config.assume_zero_globals {
            Lattice::Const(0)
        } else {
            Lattice::Bottom
        };
        let binding = solve_binding_graph(
            mcfg,
            &analysis.cg,
            &analysis.layout,
            &analysis.jump_fns,
            entry_globals,
            &mut Governor::unlimited(),
        );
        // Compare only reachable procedures: the procedure-level solver
        // never touches unreachable ones, while the binding graph applies
        // support-free jump functions from unreachable callers eagerly —
        // both are fixpoints, but only reachable rows carry meaning.
        for (pi, (a, b)) in analysis.vals.vals.iter().zip(&binding.vals).enumerate() {
            if !analysis.cg.reachable[pi] {
                continue;
            }
            assert_eq!(a, b, "{label}: VAL sets diverge for proc {pi}");
        }
    }

    #[test]
    fn solvers_agree_on_the_suite() {
        for p in PROGRAMS {
            let mcfg = p.module_cfg();
            for kind in JumpFnKind::ALL {
                check_equivalence(
                    &mcfg,
                    &Config::default().with_jump_fn(kind),
                    &format!("{} {kind}", p.name),
                );
            }
            check_equivalence(&mcfg, &Config::polynomial().with_mod(false), p.name);
            check_equivalence(&mcfg, &Config::polynomial().with_return_jfs(false), p.name);
        }
    }

    #[test]
    fn solvers_agree_on_generated_programs() {
        for seed in 0..40 {
            let src = generate(&GenConfig::default(), seed);
            let mcfg = lower_module(&parse_and_resolve(&src).unwrap());
            check_equivalence(&mcfg, &Config::default(), &format!("seed {seed}"));
            check_equivalence(&mcfg, &Config::polynomial(), &format!("seed {seed}"));
        }
    }

    #[test]
    fn binding_graph_counts_work_by_support() {
        // A long pass-through chain: the binding solver touches each node
        // a bounded number of times.
        let mut src = String::from("proc main() { call p0(5); }\n");
        for i in 0..30 {
            if i < 29 {
                src.push_str(&format!("proc p{i}(x) {{ call p{}(x); }}\n", i + 1));
            } else {
                src.push_str(&format!("proc p{i}(x) {{ print x; }}\n"));
            }
        }
        let mcfg = lower_module(&parse_and_resolve(&src).unwrap());
        let analysis = Analysis::run(&mcfg, &Config::default());
        let binding = solve_binding_graph(
            &mcfg,
            &analysis.cg,
            &analysis.layout,
            &analysis.jump_fns,
            Lattice::Bottom,
            &mut Governor::unlimited(),
        );
        let last = mcfg.module.proc_named("p29").unwrap().id;
        assert_eq!(binding.of(last)[0], Lattice::Const(5));
        // Each slot lowers at most twice; the worklist re-queues a node
        // only on change, so iterations stay linear in the slot count.
        let total_slots: usize = mcfg
            .module
            .procs
            .iter()
            .map(|p| analysis.layout.n_slots(p.arity()))
            .sum();
        assert!(
            binding.iterations <= 2 * total_slots + 2,
            "iterations {} vs slots {total_slots}",
            binding.iterations
        );
    }
}
