//! Constant substitution — the study's effectiveness metric.
//!
//! Following Metzger and Stroud (and §4.1 "Recording the results"), the
//! number reported for a configuration is the number of constants the
//! analyzer could *textually substitute into the code*: every scalar
//! variable occurrence whose reaching value is a known constant is
//! replaced by that constant and counted. This measures useful constants
//! (a known-but-unreferenced global counts for nothing) and factors out
//! procedure length and modularity.
//!
//! The substitution pass seeds each procedure's SCCP with its
//! interprocedural `VAL` set, then walks the executable blocks rewriting
//! occurrences. The transformed program is returned alongside the counts
//! so tests can check behaviour is preserved.

use crate::pipeline::Analysis;
use ipcp_ir::cfg::{BlockId, CStmt, ModuleCfg, Terminator};
use ipcp_ir::program::{Expr, Module, ProcId, VarKind};
use ipcp_ir::span::Span;
use ipcp_ssa::sccp::{self, CallDefLattice, OpaqueCallsLattice, SccpResult, Seeds};
use ipcp_ssa::ssa::{build_ssa, ModKills, SsaProc, StmtInfo};
use ipcp_ssa::{Lattice, ValueId};

/// The outcome of a substitution pass.
#[derive(Debug)]
pub struct Substitution {
    /// Constants substituted per procedure.
    pub counts: Vec<usize>,
    /// Total across the program.
    pub total: usize,
    /// The transformed program (constants folded into expressions).
    pub module: ModuleCfg,
    /// The per-procedure SCCP fixpoints (reachable procedures only) —
    /// reused by the complete-propagation driver for branch pruning.
    pub sccps: Vec<Option<SccpResult>>,
    /// Source locations of the replaced occurrences with their values —
    /// the raw material for [`Substitution::to_source`].
    pub replacements: Vec<(Span, i64)>,
}

/// Maps a procedure's `VAL` vector (indexed by entry slot) onto SCCP
/// seeds (indexed by `VarId`).
pub(crate) fn seeds_from_vals(
    mcfg: &ModuleCfg,
    layout: &ipcp_ir::program::SlotLayout,
    p: ProcId,
    vals: &[Lattice],
) -> Seeds {
    let proc = mcfg.module.proc(p);
    let by_var = proc
        .vars
        .iter()
        .map(|info| match info.kind {
            VarKind::Formal(i) => vals.get(i).copied().unwrap_or(Lattice::Bottom),
            VarKind::Global(g) => layout
                .global_slot(proc.arity(), g)
                .and_then(|s| vals.get(s).copied())
                .unwrap_or(Lattice::Bottom),
            VarKind::Local => Lattice::Bottom,
        })
        .collect();
    Seeds::from_vars(by_var)
}

/// Seeds for procedure `p` taken from the analysis `VAL` sets.
fn seeds_for(analysis: &Analysis, mcfg: &ModuleCfg, p: ProcId) -> Seeds {
    seeds_from_vals(mcfg, &analysis.layout, p, analysis.vals.of(p))
}

/// Runs the seeded substitution for every reachable procedure.
pub fn substitute(mcfg: &ModuleCfg, analysis: &Analysis) -> Substitution {
    let oracle = analysis.sccp_oracle(mcfg);
    run_substitution(mcfg, analysis, oracle.as_ref(), |p| {
        seeds_for(analysis, mcfg, p)
    })
}

/// The purely intraprocedural baseline (Table 3, column 4): no seeds, no
/// return jump functions, but MOD-precise kill sets.
pub fn substitute_intraprocedural(mcfg: &ModuleCfg, analysis: &Analysis) -> Substitution {
    run_substitution(mcfg, analysis, &OpaqueCallsLattice, |p| {
        Seeds::none(mcfg.module.proc(p).vars.len())
    })
}

fn run_substitution(
    mcfg: &ModuleCfg,
    analysis: &Analysis,
    oracle: &dyn CallDefLattice,
    seeds_of: impl Fn(ProcId) -> Seeds,
) -> Substitution {
    let n = mcfg.module.procs.len();
    let mut counts = vec![0usize; n];
    let mut module = mcfg.clone();
    let mut sccps: Vec<Option<SccpResult>> = (0..n).map(|_| None).collect();
    let mut replacements = Vec::new();

    for pi in 0..n {
        let p = ProcId::from(pi);
        if !analysis.cg.reachable[pi] {
            continue;
        }
        // The substitution SSA must match the analysis call-effect world.
        let ssa = match analysis.symbolics[pi].as_ref() {
            Some(ps) => &ps.ssa,
            None => continue,
        };
        let res = sccp::run(mcfg, ssa, &seeds_of(p), oracle);
        counts[pi] = rewrite_proc(&mut module, mcfg, p, ssa, &res, &mut replacements);
        sccps[pi] = Some(res);
    }

    Substitution {
        total: counts.iter().sum(),
        counts,
        module,
        sccps,
        replacements,
    }
}

impl Substitution {
    /// §4.1's optional output: "a transformed version of the original
    /// source in which the interprocedural constants are textually
    /// substituted into the code". Every replaced occurrence carries its
    /// source span, so the structured (pre-lowering) bodies can be
    /// rewritten and pretty-printed.
    pub fn to_source(&self, original: &Module) -> String {
        apply_replacements(original, &self.replacements).to_source()
    }
}

/// Rewrites `module`'s structured bodies, replacing each scalar variable
/// occurrence whose span appears in `replacements` with its constant.
pub fn apply_replacements(module: &Module, replacements: &[(Span, i64)]) -> Module {
    use std::collections::HashMap;
    let map: HashMap<Span, i64> = replacements.iter().copied().collect();
    let mut out = module.clone();
    for proc in &mut out.procs {
        rewrite_ast_block(&mut proc.body, &map);
    }
    out
}

fn rewrite_ast_block(b: &mut ipcp_ir::program::Block, map: &std::collections::HashMap<Span, i64>) {
    use ipcp_ir::program::Stmt;
    for s in &mut b.stmts {
        match s {
            Stmt::Assign(_, e, _) | Stmt::Print(e, _) => rewrite_ast_expr(e, map),
            Stmt::Store(_, i, v, _) => {
                rewrite_ast_expr(i, map);
                rewrite_ast_expr(v, map);
            }
            Stmt::If(c, t, e, _) => {
                rewrite_ast_expr(c, map);
                rewrite_ast_block(t, map);
                rewrite_ast_block(e, map);
            }
            Stmt::While(c, body, _) => {
                rewrite_ast_expr(c, map);
                rewrite_ast_block(body, map);
            }
            Stmt::Do {
                lo, hi, step, body, ..
            } => {
                rewrite_ast_expr(lo, map);
                rewrite_ast_expr(hi, map);
                if let Some(st) = step {
                    rewrite_ast_expr(st, map);
                }
                rewrite_ast_block(body, map);
            }
            Stmt::Call(_, args, _) => {
                for a in args {
                    if let ipcp_ir::program::Arg::Value(e) = a {
                        rewrite_ast_expr(e, map);
                    }
                }
            }
            Stmt::Return(_) | Stmt::Read(_, _) => {}
        }
    }
}

fn rewrite_ast_expr(e: &mut Expr, map: &std::collections::HashMap<Span, i64>) {
    match e {
        Expr::Const(..) => {}
        Expr::Var(_, span) => {
            if let Some(&c) = map.get(span) {
                *e = Expr::Const(c, *span);
            }
        }
        Expr::Load(_, idx, _) => rewrite_ast_expr(idx, map),
        Expr::Unary(_, x, _) => rewrite_ast_expr(x, map),
        Expr::Binary(_, l, r, _) => {
            rewrite_ast_expr(l, map);
            rewrite_ast_expr(r, map);
        }
    }
}

/// Rewrites procedure `p` in `out`, returning the substitution count.
fn rewrite_proc(
    out: &mut ModuleCfg,
    mcfg: &ModuleCfg,
    p: ProcId,
    ssa: &SsaProc,
    res: &SccpResult,
    replacements: &mut Vec<(Span, i64)>,
) -> usize {
    let cfg = mcfg.cfg(p);
    let mut count = 0usize;
    for bi in 0..cfg.len() {
        if !res.block_exec[bi] {
            continue;
        }
        let b = BlockId::from(bi);
        let info = &ssa.blocks[bi];
        let out_block = &mut out.cfgs[p.index()].blocks[b.index()];
        for (si, stmt) in cfg.block(b).stmts.iter().enumerate() {
            let (new_stmt, n) = rewrite_stmt(stmt, &info.stmts[si], res, replacements);
            out_block.stmts[si] = new_stmt;
            count += n;
        }
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = &cfg.block(b).term
        {
            let mut idx = 0;
            let mut n = 0;
            let new_cond = rewrite_expr(
                cond,
                &info.term_use_vals,
                &mut idx,
                res,
                &mut n,
                replacements,
            );
            debug_assert_eq!(idx, info.term_use_vals.len());
            out_block.term = Terminator::Branch {
                cond: new_cond,
                then_bb: *then_bb,
                else_bb: *else_bb,
            };
            count += n;
        }
    }
    count
}

fn rewrite_stmt(
    stmt: &CStmt,
    info: &StmtInfo,
    res: &SccpResult,
    replacements: &mut Vec<(Span, i64)>,
) -> (CStmt, usize) {
    let mut n = 0usize;
    let mut idx = 0usize;
    let new =
        match (stmt, info) {
            (CStmt::Assign { dst, value }, StmtInfo::Assign { use_vals, .. }) => {
                let value = rewrite_expr(value, use_vals, &mut idx, res, &mut n, replacements);
                debug_assert_eq!(idx, use_vals.len());
                CStmt::Assign { dst: *dst, value }
            }
            (
                CStmt::Store {
                    array,
                    index,
                    value,
                },
                StmtInfo::Store { use_vals, .. },
            ) => {
                let index = rewrite_expr(index, use_vals, &mut idx, res, &mut n, replacements);
                let value = rewrite_expr(value, use_vals, &mut idx, res, &mut n, replacements);
                debug_assert_eq!(idx, use_vals.len());
                CStmt::Store {
                    array: *array,
                    index,
                    value,
                }
            }
            (CStmt::Print { value }, StmtInfo::Print { use_vals, .. }) => {
                let value = rewrite_expr(value, use_vals, &mut idx, res, &mut n, replacements);
                debug_assert_eq!(idx, use_vals.len());
                CStmt::Print { value }
            }
            (CStmt::Call { callee, args, site }, StmtInfo::Call { use_vals, .. }) => {
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    new_args.push(match a {
                        ipcp_ir::program::Arg::Value(e) => ipcp_ir::program::Arg::Value(
                            rewrite_expr(e, use_vals, &mut idx, res, &mut n, replacements),
                        ),
                        // By-reference actuals cannot be replaced by values.
                        other => other.clone(),
                    });
                }
                debug_assert_eq!(idx, use_vals.len());
                CStmt::Call {
                    callee: *callee,
                    args: new_args,
                    site: *site,
                }
            }
            (CStmt::Read { dst }, StmtInfo::Read { .. }) => CStmt::Read { dst: *dst },
            (stmt, info) => unreachable!("statement/annotation mismatch: {stmt:?} vs {info:?}"),
        };
    (new, n)
}

/// Rewrites an expression, replacing each scalar-variable occurrence whose
/// SSA value is constant. `use_vals[idx..]` supplies the occurrence values
/// in traversal order.
fn rewrite_expr(
    e: &Expr,
    use_vals: &[ValueId],
    idx: &mut usize,
    res: &SccpResult,
    count: &mut usize,
    replacements: &mut Vec<(Span, i64)>,
) -> Expr {
    match e {
        Expr::Const(c, s) => Expr::Const(*c, *s),
        Expr::Var(v, s) => {
            let val = use_vals[*idx];
            *idx += 1;
            match res.value(val) {
                Lattice::Const(c) => {
                    *count += 1;
                    if !s.is_empty() {
                        replacements.push((*s, c));
                    }
                    Expr::Const(c, *s)
                }
                _ => Expr::Var(*v, *s),
            }
        }
        Expr::Load(arr, index, s) => Expr::Load(
            *arr,
            Box::new(rewrite_expr(index, use_vals, idx, res, count, replacements)),
            *s,
        ),
        Expr::Unary(op, x, s) => Expr::Unary(
            *op,
            Box::new(rewrite_expr(x, use_vals, idx, res, count, replacements)),
            *s,
        ),
        Expr::Binary(op, l, r, s) => {
            let l = rewrite_expr(l, use_vals, idx, res, count, replacements);
            let r = rewrite_expr(r, use_vals, idx, res, count, replacements);
            Expr::Binary(*op, Box::new(l), Box::new(r), *s)
        }
    }
}

/// A standalone intraprocedural substitution count with MOD information
/// but no interprocedural constants at all — used when no [`Analysis`] is
/// wanted.
pub fn intraprocedural_count(mcfg: &ModuleCfg) -> usize {
    let cg = ipcp_analysis::build_call_graph(mcfg);
    let mr = ipcp_analysis::compute_modref(mcfg, &cg);
    let mut total = 0;
    for (pi, _) in mcfg.module.procs.iter().enumerate() {
        if !cg.reachable[pi] {
            continue;
        }
        let p = ProcId::from(pi);
        let ssa = build_ssa(mcfg, p, &ModKills(&mr));
        let res = sccp::run(
            mcfg,
            &ssa,
            &Seeds::none(mcfg.module.proc(p).vars.len()),
            &OpaqueCallsLattice,
        );
        let mut dummy = mcfg.clone();
        let mut replacements = Vec::new();
        total += rewrite_proc(&mut dummy, mcfg, p, &ssa, &res, &mut replacements);
    }
    total
}
