//! Process resource accounting: peak resident set size via POSIX
//! `getrusage(2)`, declared over the raw C ABI (the workspace is
//! dependency-free by policy, so there is no `libc` crate to lean on —
//! the same approach `ipcc serve` takes for `signal(2)`).
//!
//! The scale benchmark (`bench_scale`) runs each workload tier in a
//! child process and records the child's high-water mark from here;
//! `ci.sh scale-smoke` then enforces a ceiling on it. `ru_maxrss` is a
//! per-process *high-water* mark — it never goes down — which is exactly
//! why the benchmark isolates tiers in children instead of measuring
//! deltas in one process.

/// Peak resident set size of the calling process, in bytes.
///
/// Returns `None` on platforms without `getrusage` or if the call fails.
/// Linux reports `ru_maxrss` in kilobytes, macOS in bytes; both are
/// normalized to bytes here.
pub fn peak_rss_bytes() -> Option<u64> {
    imp::peak_rss_bytes()
}

#[cfg(unix)]
mod imp {
    /// `struct timeval` — two C longs on every LP64 unix.
    #[repr(C)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    /// `struct rusage` from POSIX: two timevals then 14 longs, of which
    /// the first (`ru_maxrss`) is the high-water mark. The glibc and
    /// macOS layouts agree on this prefix.
    #[repr(C)]
    struct Rusage {
        ru_utime: Timeval,
        ru_stime: Timeval,
        ru_maxrss: i64,
        ru_ixrss: i64,
        ru_idrss: i64,
        ru_isrss: i64,
        ru_minflt: i64,
        ru_majflt: i64,
        ru_nswap: i64,
        ru_inblock: i64,
        ru_oublock: i64,
        ru_msgsnd: i64,
        ru_msgrcv: i64,
        ru_nsignals: i64,
        ru_nvcsw: i64,
        ru_nivcsw: i64,
    }

    extern "C" {
        // POSIX getrusage(2) via the C ABI — no crates.
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }

    const RUSAGE_SELF: i32 = 0;

    pub fn peak_rss_bytes() -> Option<u64> {
        let mut usage = Rusage {
            ru_utime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            ru_stime: Timeval {
                tv_sec: 0,
                tv_usec: 0,
            },
            ru_maxrss: 0,
            ru_ixrss: 0,
            ru_idrss: 0,
            ru_isrss: 0,
            ru_minflt: 0,
            ru_majflt: 0,
            ru_nswap: 0,
            ru_inblock: 0,
            ru_oublock: 0,
            ru_msgsnd: 0,
            ru_msgrcv: 0,
            ru_nsignals: 0,
            ru_nvcsw: 0,
            ru_nivcsw: 0,
        };
        // SAFETY: `usage` is a valid, writable Rusage matching the ABI
        // layout; getrusage writes it and touches nothing else.
        let rc = unsafe { getrusage(RUSAGE_SELF, &mut usage) };
        if rc != 0 || usage.ru_maxrss <= 0 {
            return None;
        }
        let unit: u64 = if cfg!(target_os = "macos") { 1 } else { 1024 };
        Some(usage.ru_maxrss as u64 * unit)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn peak_rss_bytes() -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn peak_rss_is_plausible() {
        let rss = peak_rss_bytes().expect("getrusage works on unix");
        // A running test binary occupies somewhere between 100 KiB and
        // 100 GiB; anything outside that means a unit or layout bug.
        assert!(rss > 100 * 1024, "{rss}");
        assert!(rss < 100 * 1024 * 1024 * 1024, "{rss}");
    }

    #[test]
    #[cfg(unix)]
    fn peak_rss_is_monotonic() {
        let before = peak_rss_bytes().unwrap();
        // Touch a fresh 32 MiB so the high-water mark must move past it.
        let block = vec![7u8; 32 * 1024 * 1024];
        let sum: u64 = block.iter().map(|&b| b as u64).sum();
        assert_eq!(sum, 7 * 32 * 1024 * 1024);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "{after} < {before}");
    }
}
