//! A dependency-free scoped worker pool for the per-procedure phases.
//!
//! The repo is offline-vendored, so this is `std::thread::scope` plus an
//! atomic self-scheduling counter — no external crates, no channels, no
//! locks. Two drivers share that substrate:
//!
//! * [`run`] — the original spawn-per-call pool: workers pull unit
//!   indices from a shared [`AtomicUsize`] (`fetch_add` work stealing: a
//!   worker stuck on a heavy procedure simply claims fewer units), stash
//!   `(index, result)` pairs in a thread-local vector, and the results
//!   are merged back into input order after the join. Still used by the
//!   one-shot transformation drivers (`complete`, `cloning`, `inline`).
//! * [`with_pool`] / [`Pool`] — a **persistent** pool for the analysis
//!   pipeline: workers are spawned once per `Analysis::run` and parked
//!   between rounds, so a phase that dispatches one round per SCC level
//!   (the solver wavefront, return jump functions) pays a park/unpark
//!   per level instead of a full thread spawn + join. Each participant
//!   gets its own [`Scratch`] per round ([`Pool::run_with_scratch`]), so
//!   units reuse buffers instead of round-tripping the global allocator.
//!
//! Order of *execution* is nondeterministic; order of *results* is
//! not — which is all the deterministic fold in
//! [`pipeline`](crate::pipeline) needs.
//!
//! [`PhaseTime`] / [`Timings`] carry the wall-clock, per-worker busy
//! time, and governor-shard absorb/replay counts of each phase, feeding
//! the utilization columns of `ipcc tables`, `report_all`, and
//! `bench_par`.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Wall-clock and utilization accounting for one parallel (or sequential)
/// phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTime {
    /// Elapsed wall-clock time of the phase.
    pub wall: Duration,
    /// Summed busy time across workers (== `wall` when sequential).
    pub busy: Duration,
    /// Workers that participated (1 for the sequential path).
    pub workers: usize,
    /// Units of work (procedures, callers, or SCCs) processed.
    pub units: usize,
    /// Parallel-fold units whose optimistic governor shard merged
    /// cleanly (result kept as computed). 0 on the sequential path.
    pub absorbed: usize,
    /// Parallel-fold units discarded and replayed sequentially against
    /// the authoritative governor. 0 on the sequential path.
    pub replayed: usize,
}

impl PhaseTime {
    /// Accounting for a phase that ran on the sequential path.
    pub fn sequential(wall: Duration, units: usize) -> PhaseTime {
        PhaseTime {
            wall,
            busy: wall,
            workers: 1,
            units,
            absorbed: 0,
            replayed: 0,
        }
    }

    /// Fraction of worker capacity spent busy: `busy / (wall × workers)`.
    /// `1.0` for a perfectly balanced phase, lower when workers idle at
    /// the tail. `0.0` when the phase did not run.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / capacity).min(1.0)
    }

    /// Accumulates another measurement of the same phase (used when the
    /// gating loop re-runs the pipeline: times add, worker count takes
    /// the maximum).
    pub fn absorb(&mut self, other: PhaseTime) {
        self.wall += other.wall;
        self.busy += other.busy;
        self.workers = self.workers.max(other.workers);
        self.units += other.units;
        self.absorbed += other.absorbed;
        self.replayed += other.replayed;
    }
}

/// Per-stage timing for one analysis run, carried on
/// [`Analysis`](crate::Analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Timings {
    /// Worker threads the run actually used (`Config::effective_jobs`).
    pub jobs: usize,
    /// MOD/REF direct-effects collection (per-procedure).
    pub modref: PhaseTime,
    /// Return jump-function construction (per-SCC, level-scheduled).
    pub retjump: PhaseTime,
    /// SSA + symbolic evaluation and forward jump functions
    /// (per-procedure / per-caller).
    pub jump: PhaseTime,
    /// The interprocedural VAL solve (wavefront over the SCC levels of
    /// the call-graph condensation; parallel within each level).
    pub solve: PhaseTime,
    /// Whole `run_once`, wall clock.
    pub total: Duration,
}

impl Timings {
    /// Accumulates a later round's timings (the gating loop re-runs the
    /// pipeline up to four times; reported times cover all rounds).
    pub fn absorb(&mut self, other: Timings) {
        self.jobs = self.jobs.max(other.jobs);
        self.modref.absorb(other.modref);
        self.retjump.absorb(other.retjump);
        self.jump.absorb(other.jump);
        self.solve.absorb(other.solve);
        self.total += other.total;
    }

    /// Combined wall time of the three per-procedure phases — the part
    /// `--jobs` parallelizes.
    pub fn per_proc_wall(&self) -> Duration {
        self.modref.wall + self.retjump.wall + self.jump.wall
    }

    /// Busy-time-weighted utilization over the per-procedure phases.
    pub fn utilization(&self) -> f64 {
        let mut agg = self.modref;
        agg.absorb(self.retjump);
        agg.absorb(self.jump);
        agg.utilization()
    }

    /// The four phases as named rows in pipeline order — the shape the
    /// bench binaries serialize.
    pub fn stages(&self) -> [(&'static str, PhaseTime); 4] {
        [
            ("modref", self.modref),
            ("retjump", self.retjump),
            ("jump", self.jump),
            ("solve", self.solve),
        ]
    }
}

/// Runs `f(0) .. f(n - 1)` on up to `jobs` scoped workers and returns the
/// results **in index order**, plus the phase accounting.
///
/// * `jobs <= 1` or `n <= 1` short-circuits to a plain sequential loop on
///   the calling thread (no threads spawned, no atomics touched).
/// * Workers self-schedule via `fetch_add` on a shared counter, so load
///   balances at unit granularity without a queue or a lock.
/// * A panicking closure is **not** caught here: the panic is re-raised
///   on the calling thread after every worker has drained (the quarantine
///   layer inside `f` is what catches per-procedure panics; one escaping
///   it means quarantine was off, and then the contract is to propagate).
pub fn run<T, F>(jobs: usize, n: usize, f: F) -> (Vec<T>, PhaseTime)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    if jobs <= 1 || n <= 1 {
        let results: Vec<T> = (0..n).map(&f).collect();
        return (results, PhaseTime::sequential(start.elapsed(), n));
    }

    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<(Vec<(usize, T)>, Duration)> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let t0 = Instant::now();
                let mut mine: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    mine.push((i, f(i)));
                }
                (mine, t0.elapsed())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(out) => per_worker.push(out),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });

    let busy = per_worker.iter().map(|(_, d)| *d).sum();
    let mut indexed: Vec<(usize, T)> = per_worker
        .into_iter()
        .flat_map(|(results, _)| results)
        .collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    let results = indexed.into_iter().map(|(_, r)| r).collect();
    (
        results,
        PhaseTime {
            wall: start.elapsed(),
            busy,
            workers,
            units: n,
            absorbed: 0,
            replayed: 0,
        },
    )
}

/// Per-worker reusable scratch buffers, handed to each unit by
/// [`Pool::run_with_scratch`] (and threaded through the sequential folds)
/// so hot units stop allocating per-unit `Vec`s / `VecDeque`s.
///
/// The buffers are deliberately generic — a dense `bool` flag vector and
/// an index queue — because that is the working set of the wavefront
/// solver's per-SCC evaluation (`queued` + FIFO worklist). Units must
/// leave the buffers in a reusable state (cleared or fully popped); the
/// helpers below reset cheaply without releasing capacity.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Dense per-member flags (e.g. the solver's `queued` bits).
    pub flags: Vec<bool>,
    /// Index FIFO (e.g. the solver's intra-SCC worklist).
    pub queue: VecDeque<usize>,
}

impl Scratch {
    /// Clears and resizes `flags` to `n` `false`s, keeping capacity, and
    /// empties the queue.
    pub fn reset(&mut self, n: usize) {
        self.flags.clear();
        self.flags.resize(n, false);
        self.queue.clear();
    }
}

/// One in-flight round: a type-erased borrow of the caller's participate
/// closure. Workers only dereference it between the epoch bump that
/// publishes it and their check-in for the same round, and
/// [`Pool::run_with_scratch`] does not return (or unpublish) until every
/// spawned worker has checked in — that window is what makes the
/// lifetime erasure sound.
#[derive(Clone, Copy)]
struct Job {
    body: *const (dyn Fn() + Sync),
}

/// State shared between the round-dispatching caller and the parked
/// workers of a [`Pool`].
struct PoolShared {
    /// The published round, `None` between rounds. Written only by the
    /// caller while every worker is parked or checked in.
    job: UnsafeCell<Option<Job>>,
    /// Round counter; a bump publishes `job` to the workers.
    epoch: AtomicUsize,
    /// Workers that have finished the current round.
    finished: AtomicUsize,
    /// Summed worker busy time for the current round, nanoseconds.
    busy_ns: AtomicU64,
    /// Tells parked workers to exit (set once, by the shutdown guard).
    shutdown: AtomicBool,
    /// The round-dispatching thread, unparked on every worker check-in.
    caller: Thread,
    /// First panic payload caught in the round (`Box<Box<dyn Any>>`
    /// raw), re-raised on the caller after the round drains.
    panic: AtomicPtr<Box<dyn Any + Send>>,
}

// SAFETY: `job` is only written by the caller while no worker is between
// epoch-observe and check-in (workers are parked before the epoch bump
// and counted in `finished` after), and the raw `Job` pointer is only
// dereferenced inside that same window. All other fields are atomics or
// `Thread` (which is `Sync`).
unsafe impl Sync for PoolShared {}

impl PoolShared {
    fn new() -> PoolShared {
        PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            caller: std::thread::current(),
            panic: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Records the round's first panic payload; later ones are dropped
    /// (matching `std::thread::scope`, which re-raises one).
    fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let raw = Box::into_raw(Box::new(payload));
        if self
            .panic
            .compare_exchange(ptr::null_mut(), raw, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // SAFETY: `raw` came from `Box::into_raw` above and was not
            // published.
            drop(unsafe { Box::from_raw(raw) });
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        let raw = self.panic.swap(ptr::null_mut(), Ordering::SeqCst);
        if raw.is_null() {
            None
        } else {
            // SAFETY: a non-null pointer in `panic` is always a
            // published `Box::into_raw`, taken at most once (swap).
            Some(*unsafe { Box::from_raw(raw) })
        }
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Free a stored payload that was never re-raised (cannot happen
        // through `run_with_scratch`, but keeps the type leak-free).
        drop(self.take_panic());
    }
}

/// The parked-worker loop: wait for an epoch bump, run the published
/// round once, check in, park again. Exits when `shutdown` is set.
fn worker_loop(shared: &PoolShared) {
    let mut seen = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let epoch = shared.epoch.load(Ordering::SeqCst);
        if epoch == seen {
            std::thread::park();
            continue;
        }
        seen = epoch;
        // SAFETY: the caller published `job` before bumping the epoch
        // and will not unpublish it until this worker checks in below.
        let job = unsafe { *shared.job.get() };
        if let Some(job) = job {
            let t0 = Instant::now();
            // SAFETY: see `Job` — the pointee outlives the round.
            let body = unsafe { &*job.body };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                shared.store_panic(payload);
            }
            shared
                .busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
        }
        shared.finished.fetch_add(1, Ordering::SeqCst);
        shared.caller.unpark();
    }
}

/// Sets `shutdown` and wakes every worker — runs on scope exit even when
/// the `with_pool` closure panics, so the scope join cannot hang on
/// parked workers.
struct ShutdownGuard<'a> {
    shared: &'a PoolShared,
    workers: Vec<Thread>,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.unpark();
        }
    }
}

/// A persistent worker pool: `jobs - 1` scoped workers, parked between
/// rounds. Created by [`with_pool`]; `jobs <= 1` yields a pool with no
/// workers whose `run` methods degrade to the plain sequential loop.
pub struct Pool<'env> {
    shared: Option<&'env PoolShared>,
    workers: Vec<Thread>,
}

/// Runs `f` with a [`Pool`] of `jobs - 1` persistent workers (plus the
/// calling thread, which participates in every round). The workers are
/// spawned once and parked between rounds — a multi-round phase (one
/// round per SCC level) pays a park/unpark per round instead of a thread
/// spawn + join, which is what flipped the wavefront solver's parallel
/// path from slower-than-sequential to competitive.
///
/// Panics raised inside a round propagate to the caller of the `run`
/// method (after the round has fully drained); a panic in `f` itself
/// shuts the workers down cleanly before the scope joins.
pub fn with_pool<R>(jobs: usize, f: impl FnOnce(&Pool<'_>) -> R) -> R {
    if jobs <= 1 {
        return f(&Pool {
            shared: None,
            workers: Vec::new(),
        });
    }
    let shared = PoolShared::new();
    std::thread::scope(|scope| {
        let n_workers = jobs - 1;
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let sh = &shared;
            workers.push(scope.spawn(move || worker_loop(sh)).thread().clone());
        }
        let _guard = ShutdownGuard {
            shared: &shared,
            workers: workers.clone(),
        };
        f(&Pool {
            shared: Some(&shared),
            workers,
        })
    })
}

/// Marker wrapper making the per-unit result slots shareable across the
/// round's participants. Each slot index is claimed by exactly one
/// participant (the `fetch_add` ticket), so no slot is written twice.
struct ResultSlots<'a, T>(&'a [UnsafeCell<Option<T>>]);

// SAFETY: disjoint-index access only, guaranteed by the atomic ticket.
unsafe impl<T: Send> Sync for ResultSlots<'_, T> {}

impl<T> ResultSlots<'_, T> {
    /// Fills slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be claimed by exactly one participant per round (the
    /// `fetch_add` ticket guarantees this), so the cell is unaliased.
    unsafe fn fill(&self, i: usize, v: T) {
        *self.0[i].get() = Some(v);
    }
}

impl<'env> Pool<'env> {
    /// Whether rounds actually fan out to workers (false for the
    /// sequential `jobs <= 1` pool).
    pub fn parallel(&self) -> bool {
        self.shared.is_some()
    }

    /// Total participants per round: the caller plus the workers.
    pub fn participants(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0) .. f(n - 1)` across the pool, returning results in
    /// index order plus the phase accounting. See
    /// [`Pool::run_with_scratch`] for the scratch-buffer variant this
    /// forwards to.
    pub fn run<T, F>(&self, n: usize, f: F) -> (Vec<T>, PhaseTime)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with_scratch(n, Scratch::default, |_, i| f(i))
    }

    /// Runs `f(&mut scratch, 0) .. f(&mut scratch, n - 1)` across the
    /// pool, returning results **in index order** plus the accounting.
    ///
    /// Every participant builds one scratch value per round
    /// (`make_scratch`) and reuses it across all the units it claims, so
    /// per-unit buffers amortize to one allocation per worker per round.
    /// The sequential pool reuses a single scratch across all `n` units.
    ///
    /// Panics inside `f` are caught per participant, and the first one
    /// is re-raised on the calling thread **after** the round has fully
    /// drained (same contract as [`run`]).
    pub fn run_with_scratch<T, S, M, F>(
        &self,
        n: usize,
        make_scratch: M,
        f: F,
    ) -> (Vec<T>, PhaseTime)
    where
        T: Send,
        M: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let start = Instant::now();
        let shared = match self.shared {
            Some(shared) if n > 1 => shared,
            _ => {
                let mut scratch = make_scratch();
                let results: Vec<T> = (0..n).map(|i| f(&mut scratch, i)).collect();
                return (results, PhaseTime::sequential(start.elapsed(), n));
            }
        };

        let slots: Vec<UnsafeCell<Option<T>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
        let slots_ref = &ResultSlots(&slots);
        let next = AtomicUsize::new(0);
        let participate = || {
            let mut scratch = make_scratch();
            loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let v = f(&mut scratch, i);
                // SAFETY: index `i` was claimed by exactly this
                // participant (atomic ticket), so the slot is unaliased.
                unsafe { slots_ref.fill(i, v) };
            }
        };
        let body: &(dyn Fn() + Sync) = &participate;
        // SAFETY (lifetime erasure): workers only dereference the
        // pointer between the epoch bump below and their check-in, and
        // we block until all of them checked in — `participate` (and
        // everything it borrows) outlives that window.
        let job = Job {
            body: unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    body as *const (dyn Fn() + Sync),
                )
            },
        };
        shared.busy_ns.store(0, Ordering::SeqCst);
        shared.finished.store(0, Ordering::SeqCst);
        // SAFETY: every worker is parked or pre-epoch here (previous
        // round fully checked in), so the caller is the only accessor.
        unsafe { *shared.job.get() = Some(job) };
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        for w in &self.workers {
            w.unpark();
        }

        // The caller is a full participant.
        let t0 = Instant::now();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(&participate)) {
            shared.store_panic(payload);
        }
        let caller_busy = t0.elapsed();

        // Every spawned worker must check in before the round ends —
        // otherwise a straggler could observe a dangling job pointer.
        while shared.finished.load(Ordering::SeqCst) < self.workers.len() {
            std::thread::park_timeout(Duration::from_micros(100));
        }
        // SAFETY: all workers checked in; sole accessor again.
        unsafe { *shared.job.get() = None };

        if let Some(payload) = shared.take_panic() {
            panic::resume_unwind(payload);
        }

        let results: Vec<T> = slots
            .into_iter()
            .map(|cell| match cell.into_inner() {
                Some(v) => v,
                // Unreachable: every index < n is claimed by exactly one
                // participant, and a panicked claim re-raised above.
                None => unreachable!("pool round left an unfilled result slot"),
            })
            .collect();
        let busy = caller_busy + Duration::from_nanos(shared.busy_ns.load(Ordering::SeqCst));
        (
            results,
            PhaseTime {
                wall: start.elapsed(),
                busy,
                workers: self.participants().min(n.max(1)),
                units: n,
                absorbed: 0,
                replayed: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            let (out, pt) = run(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(pt.units, 100);
            assert!(pt.workers >= 1 && pt.workers <= jobs.max(1));
        }
    }

    #[test]
    fn sequential_path_spawns_no_workers() {
        let (out, pt) = run(1, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(pt.workers, 1);
        assert_eq!(pt.busy, pt.wall);
    }

    #[test]
    fn single_unit_stays_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let (out, _) = run(8, 1, |_| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, pt) = run(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(pt.units, 0);
        assert!((0.0..=1.0).contains(&pt.utilization()));
        assert_eq!(PhaseTime::default().utilization(), 0.0);
    }

    #[test]
    fn worker_count_never_exceeds_unit_count() {
        let (out, pt) = run(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(pt.workers <= 3);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let res = std::panic::catch_unwind(|| {
            run(4, 10, |i| {
                assert!(i != 7, "unit 7 exploded");
                i
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn utilization_is_bounded() {
        let (_, pt) = run(4, 64, |i| {
            // A little uneven work so busy time is non-trivial.
            (0..(i % 7) * 1000).fold(0u64, |a, b| a.wrapping_add(b as u64))
        });
        let u = pt.utilization();
        assert!((0.0..=1.0).contains(&u), "{u}");
    }

    #[test]
    fn pool_results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            with_pool(jobs, |pool| {
                assert_eq!(pool.parallel(), jobs > 1);
                // Several rounds through the same pool, like the
                // wavefront's one-round-per-level dispatch.
                for round in 0..5usize {
                    let (out, pt) = pool.run(100, |i| i * i + round);
                    assert_eq!(out, (0..100).map(|i| i * i + round).collect::<Vec<_>>());
                    assert_eq!(pt.units, 100);
                    assert!(pt.workers >= 1 && pt.workers <= jobs.max(1));
                }
            });
        }
    }

    #[test]
    fn pool_scratch_is_reused_across_units() {
        with_pool(2, |pool| {
            let (out, _) = pool.run_with_scratch(64, Scratch::default, |scratch, i| {
                scratch.reset(8);
                scratch.queue.push_back(i);
                scratch.flags[i % 8] = true;
                scratch.queue.pop_front().map(|v| v * 2)
            });
            assert_eq!(out, (0..64).map(|i| Some(i * 2)).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pool_empty_and_tiny_rounds_stay_on_the_caller() {
        with_pool(4, |pool| {
            let caller = std::thread::current().id();
            let (out, pt) = pool.run(0, |i| i);
            assert!(out.is_empty());
            assert_eq!(pt.units, 0);
            let (out, _) = pool.run(1, |_| std::thread::current().id());
            assert_eq!(out, vec![caller]);
        });
    }

    #[test]
    fn pool_panics_propagate_after_the_round_drains() {
        let res = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                pool.run(10, |i| {
                    assert!(i != 7, "unit 7 exploded");
                    i
                })
            })
        });
        assert!(res.is_err());
        // A panic in the closure itself still shuts workers down.
        let res =
            std::panic::catch_unwind(|| with_pool(4, |_pool| -> () { panic!("driver exploded") }));
        assert!(res.is_err());
    }

    #[test]
    fn pool_matches_spawn_per_call_results() {
        with_pool(3, |pool| {
            let (a, _) = pool.run(41, |i| i as u64 * 3 + 1);
            let (b, _) = run(3, 41, |i| i as u64 * 3 + 1);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn timings_absorb_accumulates() {
        let mut t = Timings {
            jobs: 2,
            ..Timings::default()
        };
        t.modref = PhaseTime::sequential(Duration::from_millis(2), 4);
        let mut other = Timings {
            jobs: 4,
            ..Timings::default()
        };
        other.modref = PhaseTime::sequential(Duration::from_millis(3), 4);
        other.total = Duration::from_millis(10);
        t.absorb(other);
        assert_eq!(t.jobs, 4);
        assert_eq!(t.modref.wall, Duration::from_millis(5));
        assert_eq!(t.modref.units, 8);
        assert_eq!(t.total, Duration::from_millis(10));
        assert!(t.per_proc_wall() >= Duration::from_millis(5));
    }
}
