//! A dependency-free scoped worker pool for the per-procedure phases.
//!
//! The repo is offline-vendored, so this is `std::thread::scope` plus an
//! atomic self-scheduling counter — no external crates, no channels, no
//! locks. Workers pull unit indices from a shared [`AtomicUsize`]
//! (`fetch_add` work stealing: a worker stuck on a heavy procedure simply
//! claims fewer units), stash `(index, result)` pairs in a thread-local
//! vector, and the results are merged back into input order after the
//! join. Order of *execution* is nondeterministic; order of *results* is
//! not — which is all the deterministic fold in
//! [`pipeline`](crate::pipeline) needs.
//!
//! [`PhaseTime`] / [`Timings`] carry the wall-clock and per-worker busy
//! time of each phase, feeding the utilization columns of `ipcc tables`,
//! `report_all`, and `bench_par`.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Wall-clock and utilization accounting for one parallel (or sequential)
/// phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTime {
    /// Elapsed wall-clock time of the phase.
    pub wall: Duration,
    /// Summed busy time across workers (== `wall` when sequential).
    pub busy: Duration,
    /// Workers that participated (1 for the sequential path).
    pub workers: usize,
    /// Units of work (procedures, callers, or SCCs) processed.
    pub units: usize,
}

impl PhaseTime {
    /// Accounting for a phase that ran on the sequential path.
    pub fn sequential(wall: Duration, units: usize) -> PhaseTime {
        PhaseTime {
            wall,
            busy: wall,
            workers: 1,
            units,
        }
    }

    /// Fraction of worker capacity spent busy: `busy / (wall × workers)`.
    /// `1.0` for a perfectly balanced phase, lower when workers idle at
    /// the tail. `0.0` when the phase did not run.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / capacity).min(1.0)
    }

    /// Accumulates another measurement of the same phase (used when the
    /// gating loop re-runs the pipeline: times add, worker count takes
    /// the maximum).
    pub fn absorb(&mut self, other: PhaseTime) {
        self.wall += other.wall;
        self.busy += other.busy;
        self.workers = self.workers.max(other.workers);
        self.units += other.units;
    }
}

/// Per-stage timing for one analysis run, carried on
/// [`Analysis`](crate::Analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Timings {
    /// Worker threads the run actually used (`Config::effective_jobs`).
    pub jobs: usize,
    /// MOD/REF direct-effects collection (per-procedure).
    pub modref: PhaseTime,
    /// Return jump-function construction (per-SCC, level-scheduled).
    pub retjump: PhaseTime,
    /// SSA + symbolic evaluation and forward jump functions
    /// (per-procedure / per-caller).
    pub jump: PhaseTime,
    /// The interprocedural VAL solve (wavefront over the SCC levels of
    /// the call-graph condensation; parallel within each level).
    pub solve: PhaseTime,
    /// Whole `run_once`, wall clock.
    pub total: Duration,
}

impl Timings {
    /// Accumulates a later round's timings (the gating loop re-runs the
    /// pipeline up to four times; reported times cover all rounds).
    pub fn absorb(&mut self, other: Timings) {
        self.jobs = self.jobs.max(other.jobs);
        self.modref.absorb(other.modref);
        self.retjump.absorb(other.retjump);
        self.jump.absorb(other.jump);
        self.solve.absorb(other.solve);
        self.total += other.total;
    }

    /// Combined wall time of the three per-procedure phases — the part
    /// `--jobs` parallelizes.
    pub fn per_proc_wall(&self) -> Duration {
        self.modref.wall + self.retjump.wall + self.jump.wall
    }

    /// Busy-time-weighted utilization over the per-procedure phases.
    pub fn utilization(&self) -> f64 {
        let mut agg = self.modref;
        agg.absorb(self.retjump);
        agg.absorb(self.jump);
        agg.utilization()
    }
}

/// Runs `f(0) .. f(n - 1)` on up to `jobs` scoped workers and returns the
/// results **in index order**, plus the phase accounting.
///
/// * `jobs <= 1` or `n <= 1` short-circuits to a plain sequential loop on
///   the calling thread (no threads spawned, no atomics touched).
/// * Workers self-schedule via `fetch_add` on a shared counter, so load
///   balances at unit granularity without a queue or a lock.
/// * A panicking closure is **not** caught here: the panic is re-raised
///   on the calling thread after every worker has drained (the quarantine
///   layer inside `f` is what catches per-procedure panics; one escaping
///   it means quarantine was off, and then the contract is to propagate).
pub fn run<T, F>(jobs: usize, n: usize, f: F) -> (Vec<T>, PhaseTime)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    if jobs <= 1 || n <= 1 {
        let results: Vec<T> = (0..n).map(&f).collect();
        return (results, PhaseTime::sequential(start.elapsed(), n));
    }

    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<(Vec<(usize, T)>, Duration)> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let t0 = Instant::now();
                let mut mine: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    mine.push((i, f(i)));
                }
                (mine, t0.elapsed())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(out) => per_worker.push(out),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });

    let busy = per_worker.iter().map(|(_, d)| *d).sum();
    let mut indexed: Vec<(usize, T)> = per_worker
        .into_iter()
        .flat_map(|(results, _)| results)
        .collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    let results = indexed.into_iter().map(|(_, r)| r).collect();
    (
        results,
        PhaseTime {
            wall: start.elapsed(),
            busy,
            workers,
            units: n,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            let (out, pt) = run(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(pt.units, 100);
            assert!(pt.workers >= 1 && pt.workers <= jobs.max(1));
        }
    }

    #[test]
    fn sequential_path_spawns_no_workers() {
        let (out, pt) = run(1, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(pt.workers, 1);
        assert_eq!(pt.busy, pt.wall);
    }

    #[test]
    fn single_unit_stays_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let (out, _) = run(8, 1, |_| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, pt) = run(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(pt.units, 0);
        assert!((0.0..=1.0).contains(&pt.utilization()));
        assert_eq!(PhaseTime::default().utilization(), 0.0);
    }

    #[test]
    fn worker_count_never_exceeds_unit_count() {
        let (out, pt) = run(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(pt.workers <= 3);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let res = std::panic::catch_unwind(|| {
            run(4, 10, |i| {
                assert!(i != 7, "unit 7 exploded");
                i
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn utilization_is_bounded() {
        let (_, pt) = run(4, 64, |i| {
            // A little uneven work so busy time is non-trivial.
            (0..(i % 7) * 1000).fold(0u64, |a, b| a.wrapping_add(b as u64))
        });
        let u = pt.utilization();
        assert!((0.0..=1.0).contains(&u), "{u}");
    }

    #[test]
    fn timings_absorb_accumulates() {
        let mut t = Timings {
            jobs: 2,
            ..Timings::default()
        };
        t.modref = PhaseTime::sequential(Duration::from_millis(2), 4);
        let mut other = Timings {
            jobs: 4,
            ..Timings::default()
        };
        other.modref = PhaseTime::sequential(Duration::from_millis(3), 4);
        other.total = Duration::from_millis(10);
        t.absorb(other);
        assert_eq!(t.jobs, 4);
        assert_eq!(t.modref.wall, Duration::from_millis(5));
        assert_eq!(t.modref.units, 8);
        assert_eq!(t.total, Duration::from_millis(10));
        assert!(t.per_proc_wall() >= Duration::from_millis(5));
    }
}
