//! Return jump functions (§3.2): modelling constants transmitted *back*
//! from a callee through modified reference parameters and globals.
//!
//! For every procedure `p` and every entry slot `x` (formal or scalar
//! global), `R_p^x` approximates the value `x` holds **on return from
//! `p`** as a function of `p`'s entry values — the same polynomial
//! representation as forward jump functions. Construction is a bottom-up
//! walk over the call graph: each procedure is evaluated symbolically
//! using the return jump functions of the procedures it calls (recursive
//! cycles degrade to ⊥, which is sound; FORTRAN 77 had no recursion).
//!
//! Evaluation at a call site follows the paper's §3.2 limitation by
//! default: a return jump function contributes only when it evaluates to a
//! **constant** under the values known at the call — "return jump
//! functions that depend on parameters to the calling procedure can never
//! be evaluated as constant". The `compose_return_jfs` extension lifts
//! this by substituting the actual-argument polynomials symbolically.

use crate::config::{Config, Stage};
use crate::health::Governor;
use crate::jump::JumpFn;
use crate::par::Pool;
use crate::pipeline::{PhaseFold, PhaseUnit};
use crate::quarantine::run_unit;
use ipcp_analysis::CallGraph;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::{ProcId, SlotLayout, VarId};
use ipcp_ssa::lattice::Lattice;
use ipcp_ssa::poly::Poly;
use ipcp_ssa::sccp::CallDefLattice;
use ipcp_ssa::ssa::{build_ssa, CallKills};
use ipcp_ssa::symbolic::{evaluate_budgeted, CallDefEval, RetTarget, SymVal};

/// The return jump functions of a whole program: `fns[p][slot]`.
///
/// Every reachable procedure gets one entry per entry slot. A slot the
/// procedure provably leaves untouched holds the identity pass-through of
/// itself; a slot it may set unpredictably holds ⊥.
#[derive(Clone, Debug, Default)]
pub struct ReturnJumpFns {
    /// Per procedure, per entry slot (`None` for unreachable procedures).
    pub fns: Vec<Option<Vec<JumpFn>>>,
    /// Whether evaluation composes polynomials (extension) or applies the
    /// paper's constant-only limitation.
    pub compose: bool,
}

impl ReturnJumpFns {
    /// The return jump function for `slot` of `proc`, if computed.
    pub fn get(&self, proc: ProcId, slot: usize) -> Option<&JumpFn> {
        self.fns[proc.index()].as_ref().and_then(|v| v.get(slot))
    }

    fn target_slot(
        &self,
        mcfg: &ModuleCfg,
        callee: ProcId,
        target: RetTarget,
        layout: &SlotLayout,
    ) -> Option<usize> {
        let arity = mcfg.module.proc(callee).arity();
        match target {
            RetTarget::Formal(i) => (i < arity).then_some(i),
            RetTarget::Global(g) => layout.global_slot(arity, g),
        }
    }
}

/// The `ipcp` oracle plugged into symbolic evaluation and SCCP: resolves
/// call-modified values through return jump functions.
#[derive(Debug)]
pub struct RetOracle<'a> {
    /// The (partially built) table.
    pub table: &'a ReturnJumpFns,
    /// Module under analysis.
    pub mcfg: &'a ModuleCfg,
    /// Slot layout.
    pub layout: &'a SlotLayout,
}

impl RetOracle<'_> {
    fn jf_for(&self, callee: ProcId, target: RetTarget) -> Option<&JumpFn> {
        let slot = self
            .table
            .target_slot(self.mcfg, callee, target, self.layout)?;
        self.table.get(callee, slot)
    }

    /// The value of callee entry slot `v` at the call, over the caller's
    /// symbolic values.
    fn slot_sym<'s>(
        arg_syms: &'s [SymVal],
        global_syms: &'s [SymVal],
        arity: usize,
        v: u32,
    ) -> &'s SymVal {
        let v = v as usize;
        if v < arity {
            arg_syms.get(v).unwrap_or(&SymVal::Bottom)
        } else {
            global_syms.get(v - arity).unwrap_or(&SymVal::Bottom)
        }
    }
}

impl CallDefEval for RetOracle<'_> {
    fn eval_call_def(
        &self,
        callee: ProcId,
        target: RetTarget,
        arg_syms: &[SymVal],
        global_syms: &[SymVal],
    ) -> SymVal {
        let Some(jf) = self.jf_for(callee, target) else {
            return SymVal::Bottom;
        };
        let arity = self.mcfg.module.proc(callee).arity();
        match jf {
            JumpFn::Bottom => SymVal::Bottom,
            JumpFn::Const(c) => SymVal::constant(*c),
            JumpFn::PassThrough(_) | JumpFn::Poly(_) if self.table.compose => {
                // Extension: substitute the caller-side polynomials for the
                // callee's entry slots.
                let poly = match jf {
                    JumpFn::PassThrough(v) => Poly::var(*v),
                    JumpFn::Poly(p) => p.clone(),
                    _ => unreachable!("outer match"),
                };
                let mut any_top = false;
                for s in poly.support() {
                    match Self::slot_sym(arg_syms, global_syms, arity, s) {
                        SymVal::Top => any_top = true,
                        SymVal::Bottom => return SymVal::Bottom,
                        SymVal::Poly(_) => {}
                    }
                }
                if any_top {
                    return SymVal::Top;
                }
                match poly.substitute(|s| {
                    Self::slot_sym(arg_syms, global_syms, arity, s)
                        .as_poly()
                        .cloned()
                }) {
                    Some(p) => SymVal::Poly(p),
                    None => SymVal::Bottom,
                }
            }
            JumpFn::PassThrough(_) | JumpFn::Poly(_) => {
                // Paper limitation: evaluate to a constant or give up.
                let result = jf.eval(|s| {
                    match Self::slot_sym(arg_syms, global_syms, arity, s) {
                        SymVal::Top => Lattice::Top,
                        SymVal::Bottom => Lattice::Bottom,
                        SymVal::Poly(p) => match p.as_const() {
                            Some(c) => Lattice::Const(c),
                            None => Lattice::Bottom, // §3.2 limitation
                        },
                    }
                });
                match result {
                    Lattice::Top => SymVal::Top,
                    Lattice::Const(c) => SymVal::constant(c),
                    Lattice::Bottom => SymVal::Bottom,
                }
            }
        }
    }
}

impl CallDefLattice for RetOracle<'_> {
    fn eval_call_def(
        &self,
        callee: ProcId,
        target: RetTarget,
        arg_lats: &[Lattice],
        global_lats: &[Lattice],
    ) -> Lattice {
        let Some(jf) = self.jf_for(callee, target) else {
            return Lattice::Bottom;
        };
        let arity = self.mcfg.module.proc(callee).arity();
        jf.eval(|s| {
            let s = s as usize;
            if s < arity {
                arg_lats.get(s).copied().unwrap_or(Lattice::Bottom)
            } else {
                global_lats
                    .get(s - arity)
                    .copied()
                    .unwrap_or(Lattice::Bottom)
            }
        })
    }
}

/// Builds return jump functions for every reachable procedure, bottom-up
/// over the call graph SCCs.
///
/// `kills` supplies the call-effect assumption (MOD-precise or worst-case)
/// — the same oracle later used for forward jump functions, so both layers
/// see one consistent world.
///
/// Each procedure's slice (SSA build, symbolic evaluation, slot
/// classification) is a quarantine unit: a panic or a per-unit budget
/// exhaustion degrades only that procedure's return jump functions to ⊥
/// (marking it in `quarantined`), while every other procedure keeps full
/// precision. Procedures already quarantined by an earlier phase get ⊥
/// immediately, without re-running their unit.
pub fn build_return_jfs(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    kills: &(dyn CallKills + Sync),
    config: &Config,
    quarantined: &mut [bool],
    gov: &mut Governor,
) -> ReturnJumpFns {
    let mut table = ReturnJumpFns {
        fns: vec![None; mcfg.module.procs.len()],
        compose: config.compose_return_jfs,
    };
    for p in cg.bottom_up() {
        let (fns, newly_quarantined) = run_scc_member(
            mcfg,
            &table,
            layout,
            kills,
            config,
            p,
            quarantined[p.index()],
            gov,
        );
        if newly_quarantined {
            quarantined[p.index()] = true;
        }
        table.fns[p.index()] = Some(fns);
    }
    table
}

/// Parallel [`build_return_jfs`].
///
/// Return jump functions are the one per-procedure phase with *data*
/// dependences: a procedure's construction reads the (already built)
/// tables of its callees. The schedule follows the call-graph
/// condensation: each SCC is one unit (members may read each other's
/// fresh entries, so they stay sequential inside the unit), and units run
/// level by level — level 0 is the leaf SCCs, level `k` depends only on
/// levels `< k` — with each unit charging a governor shard
/// optimistically. Between levels the optimistic tables are committed so
/// the next level can read them.
///
/// The fold then walks SCCs in the exact bottom-up (Tarjan emission)
/// order the sequential driver uses. A unit is absorbed as-is when (a) no
/// callee SCC's committed table differs from the optimistic one its run
/// saw, and (b) [`Governor::can_absorb`] proves its charges land exactly
/// where sequential charging would have. Otherwise the unit is replayed
/// sequentially against the final table and master governor, and the
/// difference (if any) propagates to its dependents through `changed`.
/// Results, telemetry, and quarantine flags are bit-identical to the
/// sequential driver.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_return_jfs_par(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    layout: &SlotLayout,
    kills: &(dyn CallKills + Sync),
    config: &Config,
    quarantined: &mut [bool],
    gov: &mut Governor,
    pool: &Pool<'_>,
) -> (ReturnJumpFns, crate::par::PhaseTime) {
    let n_procs = mcfg.module.procs.len();
    let n_sccs = cg.sccs.len();
    let snapshot: Vec<bool> = quarantined.to_vec();
    let proto = gov.shard();
    let compose = config.compose_return_jfs;

    // One SCC unit's optimistic result: per-member `(ret_jfs,
    // newly_quarantined)` pairs, with the governor shard it charged.
    type SccOut = Vec<(Vec<JumpFn>, bool)>;

    // Optimistic phase: run each level's SCC units in parallel, committing
    // their tables before the next level starts.
    let mut opt_table = ReturnJumpFns {
        fns: vec![None; n_procs],
        compose,
    };
    let mut units: Vec<Option<PhaseUnit<SccOut>>> = (0..n_sccs).map(|_| None).collect();
    let mut time = crate::par::PhaseTime::default();
    for level in scc_levels(cg) {
        let (level_units, pt) = pool.run(level.len(), |k| {
            let si = level[k];
            let members = &cg.sccs[si];
            let mut shard = proto.shard();
            // Members of a multi-procedure SCC read each other's fresh
            // entries, so they get a private overlay of the table.
            let mut overlay: Option<ReturnJumpFns> = (members.len() > 1).then(|| opt_table.clone());
            let mut outs = Vec::with_capacity(members.len());
            for &p in members {
                let visible = overlay.as_ref().unwrap_or(&opt_table);
                let (fns, newly) = run_scc_member(
                    mcfg,
                    visible,
                    layout,
                    kills,
                    config,
                    p,
                    snapshot[p.index()],
                    &mut shard,
                );
                if let Some(o) = overlay.as_mut() {
                    o.fns[p.index()] = Some(fns.clone());
                }
                outs.push((fns, newly));
            }
            PhaseUnit::new(si, Ok(outs), shard)
        });
        time.absorb(pt);
        for (k, unit) in level_units.into_iter().enumerate() {
            let si = level[k];
            if let Ok(outs) = &unit.outcome {
                for (m, &p) in cg.sccs[si].iter().enumerate() {
                    opt_table.fns[p.index()] = Some(outs[m].0.clone());
                }
            }
            units[si] = Some(unit);
        }
    }

    // Deterministic fold, in the sequential driver's SCC order.
    let mut table = ReturnJumpFns {
        fns: vec![None; n_procs],
        compose,
    };
    let mut fold = PhaseFold::default();
    let mut changed = vec![false; n_sccs];
    for si in 0..n_sccs {
        let Some(pu) = units[si].take() else {
            continue; // unreachable SCC: never built, exactly as sequential
        };
        let members = &cg.sccs[si];
        let dep_changed = members.iter().any(|&p| {
            cg.calls_from(p).iter().any(|e| {
                let cs = cg.scc_of[e.callee.index()];
                cs != si && changed[cs]
            })
        });
        match fold.try_absorb(gov, pu, !dep_changed) {
            Some(Ok(outs)) => {
                for ((fns, newly), &p) in outs.into_iter().zip(members) {
                    quarantined[p.index()] = snapshot[p.index()] || newly;
                    table.fns[p.index()] = Some(fns);
                }
                // Committed == optimistic, so `changed[si]` stays false.
            }
            Some(Err(e)) => {
                // Units catch their own panics inside `run_scc_member`
                // and report degradation through the result pair.
                unreachable!("return-JF units never fail the outcome: {e}")
            }
            None => {
                let mut any_diff = false;
                for &p in members {
                    let (fns, newly) = run_scc_member(
                        mcfg,
                        &table,
                        layout,
                        kills,
                        config,
                        p,
                        snapshot[p.index()],
                        gov,
                    );
                    if opt_table.fns[p.index()].as_ref() != Some(&fns) {
                        any_diff = true;
                    }
                    quarantined[p.index()] = snapshot[p.index()] || newly;
                    table.fns[p.index()] = Some(fns);
                }
                changed[si] = any_diff;
            }
        }
    }
    fold.stamp(&mut time);
    (table, time)
}

/// Groups the call graph's reachable SCCs into dependency levels: level 0
/// has no cross-SCC callees, level `k` calls only into levels `< k`.
/// Within a level, SCC indices ascend (their relative bottom-up order).
/// All SCCs of one level can be built concurrently once the previous
/// levels' tables are committed.
fn scc_levels(cg: &CallGraph) -> Vec<Vec<usize>> {
    let mut level = vec![0usize; cg.sccs.len()];
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for (si, members) in cg.sccs.iter().enumerate() {
        // Reachability is uniform across an SCC (it is strongly
        // connected), so the first member decides.
        if !members.first().is_some_and(|p| cg.reachable[p.index()]) {
            continue;
        }
        let mut lv = 0;
        for &p in members {
            for e in cg.calls_from(p) {
                let cs = cg.scc_of[e.callee.index()];
                if cs != si {
                    // Tarjan emits callee SCCs first, so level[cs] is final.
                    lv = lv.max(level[cs] + 1);
                }
            }
        }
        level[si] = lv;
        while levels.len() <= lv {
            levels.push(Vec::new());
        }
        levels[lv].push(si);
    }
    levels
}

/// One procedure's slice of the bottom-up walk: the quarantine
/// short-circuit, the quarantined unit, and the panic containment —
/// shared verbatim by the sequential driver, the optimistic parallel
/// units, and the fold's replay path. Returns the slot functions and
/// whether the procedure was *newly* quarantined here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scc_member(
    mcfg: &ModuleCfg,
    table: &ReturnJumpFns,
    layout: &SlotLayout,
    kills: &(dyn CallKills + Sync),
    config: &Config,
    p: ProcId,
    already_quarantined: bool,
    gov: &mut Governor,
) -> (Vec<JumpFn>, bool) {
    let proc = mcfg.module.proc(p);
    let n_slots = layout.n_slots(proc.arity());
    if already_quarantined {
        return (vec![JumpFn::Bottom; n_slots], false);
    }
    let unit = run_unit(config, Stage::RetJump, p.index(), || {
        build_proc_ret_jfs(mcfg, table, layout, kills, p, n_slots, gov)
    });
    match unit {
        Ok(fns) => (fns, false),
        Err(e) => {
            gov.record_quarantine(
                Stage::RetJump,
                format!(
                    "{}: panic contained ({}); return jump functions forced to ⊥",
                    proc.name, e.message
                ),
            );
            (vec![JumpFn::Bottom; n_slots], true)
        }
    }
}

/// One procedure's slice of return-jump-function construction — the unit
/// of work [`build_return_jfs`] runs under quarantine.
fn build_proc_ret_jfs(
    mcfg: &ModuleCfg,
    table: &ReturnJumpFns,
    layout: &SlotLayout,
    kills: &(dyn CallKills + Sync),
    p: ProcId,
    n_slots: usize,
    gov: &mut Governor,
) -> Vec<JumpFn> {
    let ssa = build_ssa(mcfg, p, kills);
    let max_steps = gov.limits().max_symbolic_steps;
    let (sym, steps_exhausted) = {
        let oracle = RetOracle {
            table,
            mcfg,
            layout,
        };
        evaluate_budgeted(mcfg, &ssa, layout, &oracle, None, max_steps)
    };
    let proc = mcfg.module.proc(p);
    if steps_exhausted {
        gov.record_quarantine(
            Stage::RetJump,
            format!(
                "{}: symbolic evaluation step slice exhausted; \
                 pending values forced to ⊥",
                proc.name
            ),
        );
    }
    let mut fns = Vec::with_capacity(n_slots);
    for slot in 0..n_slots {
        let var: Option<VarId> = if slot < proc.arity() {
            Some(proc.formals[slot])
        } else {
            proc.var_for_global(layout.scalar_globals[slot - proc.arity()])
        };
        let jf = match var {
            Some(v) if !proc.var(v).is_array => {
                let mut acc = SymVal::Top;
                for (_, snapshot) in &ssa.exits {
                    let at_exit = snapshot[v.index()]
                        .map(|val| sym.value(val).clone())
                        .unwrap_or(SymVal::Bottom);
                    acc = acc.meet(&at_exit);
                }
                match acc {
                    // No reachable exit (infinite loop): the value is
                    // never observed after the call; ⊥ is safe.
                    SymVal::Top => JumpFn::Bottom,
                    SymVal::Bottom => JumpFn::Bottom,
                    SymVal::Poly(p) => match (p.as_const(), p.as_var()) {
                        (Some(c), _) => JumpFn::Const(c),
                        (None, Some(v)) => JumpFn::PassThrough(v),
                        _ => JumpFn::Poly(p),
                    },
                }
            }
            _ => JumpFn::Bottom,
        };
        // Each slot classification charges the return-jump budget, and
        // the result is clamped to the polynomial shape limits.
        let jf = if gov.charge(Stage::RetJump) {
            let limits = *gov.limits();
            let (clamped, degraded) = jf.clamp(&limits);
            if degraded {
                gov.record(
                    Stage::RetJump,
                    format!(
                        "{}: slot {slot}: polynomial exceeds shape limits; \
                         degraded to {clamped}",
                        proc.name
                    ),
                );
            }
            clamped
        } else {
            if !jf.is_bottom() {
                gov.record(
                    Stage::RetJump,
                    format!(
                        "{}: slot {slot}: classification budget exhausted; forced to ⊥",
                        proc.name
                    ),
                );
            }
            JumpFn::Bottom
        };
        fns.push(jf);
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_analysis::{build_call_graph, compute_modref};
    use ipcp_ir::{lower_module, parse_and_resolve};
    use ipcp_ssa::ssa::ModKills;

    fn ret_jfs(src: &str) -> (ipcp_ir::ModuleCfg, CallGraph, SlotLayout, ReturnJumpFns) {
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = build_call_graph(&m);
        let mr = compute_modref(&m, &cg);
        let layout = SlotLayout::new(&m.module);
        let mut quarantined = vec![false; m.module.procs.len()];
        let table = build_return_jfs(
            &m,
            &cg,
            &layout,
            &ModKills(&mr),
            &Config::default(),
            &mut quarantined,
            &mut Governor::unlimited(),
        );
        (m, cg, layout, table)
    }

    fn pid(m: &ipcp_ir::ModuleCfg, name: &str) -> ProcId {
        m.module.proc_named(name).unwrap().id
    }

    #[test]
    fn constant_assignment_yields_const_ret_jf() {
        let (m, _, _, t) =
            ret_jfs("proc main() { x = 0; call setx(x); print x; } proc setx(a) { a = 42; }");
        assert_eq!(t.get(pid(&m, "setx"), 0), Some(&JumpFn::Const(42)));
    }

    #[test]
    fn untouched_formal_is_identity() {
        let (m, _, _, t) =
            ret_jfs("proc main() { x = 0; call f(x, 1); } proc f(a, b) { a = b + 1; }");
        let f = pid(&m, "f");
        // a = b + 1 → polynomial x1 + 1; b untouched → identity x1.
        match t.get(f, 0) {
            Some(JumpFn::Poly(p)) => assert_eq!(p.eval(&[0, 5]), Some(6)),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.get(f, 1), Some(&JumpFn::PassThrough(1)));
    }

    #[test]
    fn polynomial_of_entries() {
        let (m, _, _, t) =
            ret_jfs("proc main() { x = 0; call f(x, 3, 4); } proc f(a, b, c) { a = b * c + 1; }");
        match t.get(pid(&m, "f"), 0) {
            Some(JumpFn::Poly(p)) => {
                assert_eq!(p.eval(&[0, 3, 4]), Some(13));
                assert_eq!(p.support(), vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn global_init_routine_exposes_constants() {
        // The `ocean` pattern: an init procedure assigns constant globals.
        let (m, _, layout, t) = ret_jfs(
            "global nx; global ny; \
             proc main() { call init(); } \
             proc init() { nx = 128; ny = 64; }",
        );
        let init = pid(&m, "init");
        let arity = 0;
        let nx_slot = layout
            .global_slot(arity, ipcp_ir::program::GlobalId(0))
            .unwrap();
        let ny_slot = layout
            .global_slot(arity, ipcp_ir::program::GlobalId(1))
            .unwrap();
        assert_eq!(t.get(init, nx_slot), Some(&JumpFn::Const(128)));
        assert_eq!(t.get(init, ny_slot), Some(&JumpFn::Const(64)));
    }

    #[test]
    fn data_dependent_exit_is_bottom() {
        let (m, _, _, t) = ret_jfs("proc main() { x = 0; call f(x); } proc f(a) { read a; }");
        assert_eq!(t.get(pid(&m, "f"), 0), Some(&JumpFn::Bottom));
    }

    #[test]
    fn divergent_exits_meet_to_bottom() {
        let (m, _, _, t) = ret_jfs(
            "proc main() { x = 0; call f(x); } \
             proc f(a) { if (a) { a = 1; return; } a = 2; }",
        );
        assert_eq!(t.get(pid(&m, "f"), 0), Some(&JumpFn::Bottom));
    }

    #[test]
    fn agreeing_exits_stay_constant() {
        let (m, _, _, t) = ret_jfs(
            "proc main() { x = 0; call f(x); } \
             proc f(a) { if (a) { a = 7; return; } a = 7; }",
        );
        assert_eq!(t.get(pid(&m, "f"), 0), Some(&JumpFn::Const(7)));
    }

    #[test]
    fn ret_jfs_chain_through_callees() {
        // mid's ret JF uses leaf's: a = 5 via leaf, then +1.
        let (m, _, _, t) = ret_jfs(
            "proc main() { x = 0; call mid(x); } \
             proc mid(a) { call leaf(a); a = a + 1; } \
             proc leaf(b) { b = 5; }",
        );
        assert_eq!(t.get(pid(&m, "mid"), 0), Some(&JumpFn::Const(6)));
    }

    #[test]
    fn recursive_procedures_degrade_to_bottom() {
        let (m, _, _, t) = ret_jfs(
            "proc main() { x = 0; call f(x); } \
             proc f(a) { if (a > 0) { a = a - 1; call f(a); } }",
        );
        assert_eq!(t.get(pid(&m, "f"), 0), Some(&JumpFn::Bottom));
    }

    #[test]
    fn limitation_vs_composition_at_evaluation() {
        // g's ret JF in `twice` is x0 (identity of the formal) + 1 … i.e.
        // depends on the caller's argument. Under the paper limitation the
        // oracle yields ⊥ unless the argument is constant; with
        // composition it stays symbolic.
        let src = "proc main() { x = 0; call add1(x); } proc add1(a) { a = a + 1; }";
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = build_call_graph(&m);
        let mr = compute_modref(&m, &cg);
        let layout = SlotLayout::new(&m.module);
        for (compose, expect_poly) in [(false, false), (true, true)] {
            let config = Config::builder()
                .compose_return_jfs(compose)
                .build()
                .expect("valid combination");
            let mut quarantined = vec![false; m.module.procs.len()];
            let t = build_return_jfs(
                &m,
                &cg,
                &layout,
                &ModKills(&mr),
                &config,
                &mut quarantined,
                &mut Governor::unlimited(),
            );
            let oracle = RetOracle {
                table: &t,
                mcfg: &m,
                layout: &layout,
            };
            let add1 = m.module.proc_named("add1").unwrap().id;
            // Argument symbolically = caller's formal-like poly var 0.
            let arg = SymVal::Poly(Poly::var(0));
            let got = CallDefEval::eval_call_def(&oracle, add1, RetTarget::Formal(0), &[arg], &[]);
            if expect_poly {
                let p = got.as_poly().expect("composed polynomial");
                assert_eq!(p.eval(&[9]), Some(10));
            } else {
                assert_eq!(got, SymVal::Bottom);
            }
            // With a constant argument both modes give the constant.
            let got = CallDefEval::eval_call_def(
                &oracle,
                add1,
                RetTarget::Formal(0),
                &[SymVal::constant(9)],
                &[],
            );
            assert_eq!(got.as_const(), Some(10));
        }
    }
}
