//! "Complete propagation" (Table 3, column 3): alternate interprocedural
//! constant propagation and dead-code elimination to a fixpoint.
//!
//! Substituted constants can prove branches dead; removing the dead arms
//! can eliminate conflicting definitions of variables and expose more
//! constants, so after each pruning round "the propagation was performed
//! again from scratch — all of the values in CONSTANTS sets were reset to
//! ⊤". The paper found a single round of dead-code elimination sufficed on
//! its suite; [`complete_propagation`] reports the rounds it needed.

use crate::config::Config;
use crate::pipeline::Analysis;
use crate::substitute::Substitution;
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::ProcId;
use ipcp_ssa::dce::{live_statements, prune_constant_branches};

/// Result of the iterated propagate-then-prune process.
#[derive(Debug)]
pub struct CompleteResult {
    /// The final substitution (counts + transformed program).
    pub substitution: Substitution,
    /// The final analysis.
    pub analysis: Analysis,
    /// The pruned module the final round ran on.
    pub module: ModuleCfg,
    /// Number of dead-code-elimination rounds that found something
    /// (0 = nothing was ever dead).
    pub dce_rounds: usize,
    /// Statements removed from live code across all rounds.
    pub statements_removed: usize,
    /// Substituted occurrences that lived in the conditions of branches
    /// later folded away. They were substituted before their test was
    /// deleted, so they are included in `substitution.total`.
    pub carried_substitutions: usize,
}

/// Runs propagation and dead-code elimination to a fixpoint.
///
/// Each round: analyze, substitute (seeded SCCP), fold every branch whose
/// condition is constant, and — if anything folded — restart from ⊤ on the
/// pruned program.
pub fn complete_propagation(mcfg: &ModuleCfg, config: &Config) -> CompleteResult {
    let mut module = mcfg.clone();
    let mut dce_rounds = 0usize;
    let mut statements_removed = 0usize;
    let mut carried_substitutions = 0usize;
    // Each round must remove at least one branch, and there are finitely
    // many, so this terminates; the cap is belt-and-braces.
    let max_rounds = 2 + module.cfgs.iter().map(|c| c.len()).sum::<usize>();

    for _ in 0..max_rounds {
        let analysis = Analysis::run(&module, config);
        let mut substitution = analysis.substitute(&module);

        let live_before: usize = module.cfgs.iter().map(live_statements).sum();
        // Each procedure's prune (SCCP verdicts → folded branches) is pure
        // given the round's analysis, so the scan runs on the worker pool;
        // the fold below applies results in procedure order, keeping the
        // counts and the pruned module identical to a sequential round.
        let (units, _pt) = crate::par::run(config.effective_jobs(), module.cfgs.len(), |pi| {
            let sccp = substitution.sccps[pi].as_ref()?;
            let ps = analysis.symbolics[pi].as_ref()?;
            let p = ProcId::from(pi);
            let cfg = module.cfg(p);
            let pruned = prune_constant_branches(cfg, &ps.ssa, sccp)?;
            // The occurrences substituted inside the folded conditions
            // disappear with the test; remember them so the final count
            // reflects every substitution the analyzer performed.
            let mut carried = 0usize;
            for bi in 0..cfg.len() {
                let b = ipcp_ir::cfg::BlockId::from(bi);
                if sccp.folded_branch(cfg, b, &ps.ssa).is_some() {
                    carried += ps.ssa.blocks[bi]
                        .term_use_vals
                        .iter()
                        .filter(|&&v| sccp.value(v).is_const())
                        .count();
                }
            }
            Some((pruned, carried))
        });
        let mut pruned_any = false;
        let mut next = module.clone();
        for (pi, unit) in units.into_iter().enumerate() {
            let Some((pruned, carried)) = unit else {
                continue;
            };
            carried_substitutions += carried;
            next.cfgs[pi] = pruned;
            pruned_any = true;
        }

        if !pruned_any {
            substitution.total += carried_substitutions;
            return CompleteResult {
                substitution,
                analysis,
                module,
                dce_rounds,
                statements_removed,
                carried_substitutions,
            };
        }
        let live_after: usize = next.cfgs.iter().map(live_statements).sum();
        statements_removed += live_before.saturating_sub(live_after);
        dce_rounds += 1;
        module = next;
    }
    unreachable!("complete propagation failed to reach a fixpoint");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::interp::{exec_cfg, ExecLimits};
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn run(src: &str, config: &Config) -> (ModuleCfg, CompleteResult) {
        let mcfg = lower_module(&parse_and_resolve(src).unwrap());
        let r = complete_propagation(&mcfg, config);
        (mcfg, r)
    }

    #[test]
    fn no_dead_code_means_zero_rounds() {
        let (_, r) = run("proc main() { read x; print x; }", &Config::default());
        assert_eq!(r.dce_rounds, 0);
        assert_eq!(r.statements_removed, 0);
    }

    #[test]
    fn dead_call_site_stops_polluting_val_sets() {
        // The benefit SCCP alone cannot deliver: a call site on a dead
        // branch meets a conflicting constant into the callee's VAL set.
        // Removing the branch removes the edge from the call graph, and a
        // from-scratch propagation recovers the constant.
        let src = "global debug; \
                   proc main() { debug = 0; if (debug != 0) { call f(99); } call f(10); } \
                   proc f(a) { print a; print a * 2; }";
        let (mcfg, r) = run(src, &Config::polynomial());
        assert_eq!(r.dce_rounds, 1);
        assert!(r.statements_removed >= 1);
        let plain = Analysis::run(&mcfg, &Config::polynomial())
            .substitute(&mcfg)
            .total;
        assert!(
            r.substitution.total > plain,
            "complete {} !> plain {plain}",
            r.substitution.total
        );
    }

    #[test]
    fn dead_assignment_stops_blocking_jump_functions() {
        // The jump-function generator's symbolic evaluation is not
        // path-sensitive: a dead `read t` merges ⊥ into t's value at the
        // call. Pruning the branch restores the pass-through.
        let src = "global debug; global t; \
                   proc main() { debug = 0; t = 10; if (debug != 0) { read t; } call g(t); } \
                   proc g(x) { print x; print x + 1; }";
        let (mcfg, r) = run(src, &Config::polynomial());
        assert_eq!(r.dce_rounds, 1);
        let plain = Analysis::run(&mcfg, &Config::polynomial())
            .substitute(&mcfg)
            .total;
        assert!(
            r.substitution.total > plain,
            "complete {} !> plain {plain}",
            r.substitution.total
        );
    }

    #[test]
    fn complete_propagation_preserves_behaviour() {
        let src = "global mode; \
                   proc main() { mode = 1; read v; call f(v); } \
                   proc f(x) { if (mode == 1) { print x + 1; } else { print x - 1; } }";
        let (mcfg, r) = run(src, &Config::default());
        for input in [&[0][..], &[9], &[-4]] {
            let a = exec_cfg(&mcfg, input, &ExecLimits::default()).unwrap();
            let b = exec_cfg(&r.module, input, &ExecLimits::default()).unwrap();
            assert_eq!(a.output, b.output);
        }
        assert_eq!(r.dce_rounds, 1);
    }

    #[test]
    fn cascading_rounds_converge() {
        // Removing one dead branch exposes a constant that kills another.
        let src = "global a; global b; \
                   proc main() { a = 0; b = 5; call f(); } \
                   proc f() { if (a != 0) { read b; } if (b != 5) { read c; print c; } print b; }";
        let (_, r) = run(src, &Config::polynomial());
        assert!(r.dce_rounds >= 1);
        assert!(r.substitution.total >= 1);
    }

    #[test]
    fn complete_never_finds_fewer_than_plain() {
        for src in [
            "proc main() { read x; if (x) { print 1; } }",
            "global k; proc main() { k = 3; call f(); } proc f() { if (k == 3) { print k; } else { print 0 - k; } }",
            "proc main() { n = 4; do i = 1, n { print i; } }",
        ] {
            let mcfg = lower_module(&parse_and_resolve(src).unwrap());
            let plain = Analysis::run(&mcfg, &Config::polynomial())
                .substitute(&mcfg)
                .total;
            let complete = complete_propagation(&mcfg, &Config::polynomial())
                .substitution
                .total;
            assert!(complete >= plain, "{src}: {complete} < {plain}");
        }
    }
}
