//! The four-stage pipeline of §4.1: generate return jump functions,
//! generate forward jump functions, propagate interprocedurally, record
//! the results.

use crate::config::{Config, Stage};
use crate::error::IpcpError;
use crate::health::{AnalysisHealth, Governor};
use crate::jump::{
    build_forward_jump_fns, build_forward_jump_fns_par, ForwardJumpFns, ProcSymbolic,
};
use crate::par::{PhaseTime, Timings};
use crate::retjump::{build_return_jfs, build_return_jfs_par, RetOracle, ReturnJumpFns};
use crate::solver::ValSets;
use crate::substitute::{self, Substitution};
use ipcp_analysis::{
    build_call_graph, direct_effects, propagate_modref, CallGraph, ModRef, ModSet,
};
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::program::{ProcId, SlotLayout};
use ipcp_ssa::sccp::{CallDefLattice, OpaqueCallsLattice};
use ipcp_ssa::ssa::{build_ssa, build_ssa_pruned, CallKills, ModKills, WorstCaseKills};
use ipcp_ssa::symbolic::{EvalBudget, OpaqueCalls};
use ipcp_ssa::Lattice;
use std::fmt;
use std::time::Instant;

/// A typed phase-unit failure: which [`Stage`] faulted, which unit, and
/// the contained panic (or exhaustion) message.
///
/// `unit` is the index in the phase's own unit space — a procedure index
/// for the per-procedure phases (MOD/REF, symbolic, forward and return
/// jump functions), an SCC index for solver units. This replaces the
/// stringly `Result<_, String>` contract the drivers used to share:
/// quarantine widening, the parallel folds, and serve's incremental path
/// all see the same structured error, and strict-mode promotion can carry
/// it through [`IpcpError`](crate::IpcpError) without string matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitError {
    /// The stage whose unit faulted.
    pub stage: Stage,
    /// The unit's index (procedure index, or SCC index for the solver).
    pub unit: usize,
    /// The contained panic message.
    pub message: String,
}

impl UnitError {
    /// Builds a unit error for `stage` / `unit`.
    pub fn new(stage: Stage, unit: usize, message: impl Into<String>) -> Self {
        UnitError {
            stage,
            unit,
            message: message.into(),
        }
    }
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} unit #{} faulted: {}",
            self.stage.label(),
            self.unit,
            self.message
        )
    }
}

/// One parallel phase unit's outcome, as handed to the canonical fold:
/// its index in the phase's unit space, its result (or typed failure),
/// and the optimistic [`Governor`] shard it charged while running.
///
/// This is the contract every parallel driver shares: workers produce
/// `PhaseUnit`s out of order, and the fold walks them **in index order**,
/// absorbing each unit's shard into the authoritative governor when
/// [`Governor::can_absorb`] proves the merged counters land exactly where
/// a sequential run's would — otherwise the unit is discarded and
/// replayed sequentially ([`PhaseFold::try_absorb`]). Serve's incremental
/// path replays recorded shards through the same gate.
#[derive(Clone, Debug)]
pub struct PhaseUnit<T> {
    /// Index in the phase's unit space (procedure or SCC index).
    pub index: usize,
    /// The unit's computed result, or its typed quarantine failure.
    pub outcome: Result<T, UnitError>,
    /// The optimistic governor shard the unit charged.
    pub shard: Governor,
}

impl<T> PhaseUnit<T> {
    /// Wraps a unit outcome with the shard it charged.
    pub fn new(index: usize, outcome: Result<T, UnitError>, shard: Governor) -> Self {
        PhaseUnit {
            index,
            outcome,
            shard,
        }
    }
}

/// Absorb/replay accounting for one phase's canonical fold.
///
/// Every parallel driver folds its [`PhaseUnit`]s through
/// [`PhaseFold::try_absorb`]; the counters are stamped into the phase's
/// [`PhaseTime`] so `Timings` reports how often the optimistic path paid
/// off (absorb is O(stages); replay re-runs the unit sequentially).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseFold {
    /// Units whose shard merged cleanly (result kept).
    pub absorbed: usize,
    /// Units discarded and re-run against the authoritative governor.
    pub replayed: usize,
}

impl PhaseFold {
    /// Attempts to absorb `unit`: when `absorbable` holds and the shard
    /// merges without crossing a budget or fault boundary
    /// ([`Governor::can_absorb`] — the documented fast path), the shard
    /// is folded into `gov` and the unit's outcome is returned. Otherwise
    /// returns `None`; the caller must replay the unit sequentially.
    pub fn try_absorb<T>(
        &mut self,
        gov: &mut Governor,
        unit: PhaseUnit<T>,
        absorbable: bool,
    ) -> Option<Result<T, UnitError>> {
        if absorbable && gov.can_absorb(&unit.shard) {
            gov.absorb_shard(unit.shard);
            self.absorbed += 1;
            Some(unit.outcome)
        } else {
            self.replayed += 1;
            None
        }
    }

    /// Stamps the fold's counters into a phase's [`PhaseTime`].
    pub fn stamp(self, pt: &mut PhaseTime) {
        pt.absorbed += self.absorbed;
        pt.replayed += self.replayed;
    }
}

/// Everything the interprocedural constant propagation computed for one
/// module under one [`Config`].
#[derive(Debug)]
pub struct Analysis {
    /// The configuration used.
    pub config: Config,
    /// Call graph.
    pub cg: CallGraph,
    /// MOD/REF summaries (always computed; consulted only when
    /// `config.use_mod`).
    pub modref: ModRef,
    /// Entry-slot layout shared by every table.
    pub layout: SlotLayout,
    /// Return jump functions (an empty table when disabled).
    pub ret_jfs: ReturnJumpFns,
    /// Per-procedure SSA + polynomial evaluation (reachable procedures).
    pub symbolics: Vec<Option<ProcSymbolic>>,
    /// Forward jump functions for every reachable call site.
    pub jump_fns: ForwardJumpFns,
    /// The fixpoint `VAL` sets.
    pub vals: ValSets,
    /// Degradation telemetry: empty when every stage ran to completion
    /// within its [`AnalysisLimits`](crate::config::AnalysisLimits); the
    /// results stay sound either way.
    pub health: AnalysisHealth,
    /// `quarantined[p]` — procedure `p`'s unit of work panicked or
    /// exhausted its slice in some per-procedure phase, so its summaries
    /// were degraded to their sound worst case (jump functions ⊥, MOD/REF
    /// everything). Every other procedure kept full precision.
    pub quarantined: Vec<bool>,
    /// Per-stage wall-clock and worker-utilization accounting (summed
    /// across gating rounds). Purely observational: timings never feed
    /// back into results.
    pub timings: Timings,
}

impl Analysis {
    /// Runs the full pipeline over a lowered module.
    ///
    /// With [`Config::gated_jump_fns`] the pipeline iterates: each round's
    /// `VAL` sets seed the next round's gating SCCP, so branches (and call
    /// sites) proved dead by *interprocedural* constants stop polluting
    /// jump-function generation — the in-place equivalent of "complete
    /// propagation". The iteration stops at a fixpoint (or after a small
    /// bound; one extra round almost always suffices).
    pub fn run(mcfg: &ModuleCfg, config: &Config) -> Analysis {
        // One pool for the whole analysis: workers are spawned here once
        // and parked between rounds, so every phase (and every gating
        // round) reuses them instead of paying a spawn/join per level.
        crate::par::with_pool(config.effective_jobs(), |pool| {
            Self::run_on(mcfg, config, pool)
        })
    }

    fn run_on(mcfg: &ModuleCfg, config: &Config, pool: &crate::par::Pool<'_>) -> Analysis {
        let mut analysis = Self::run_once_on(mcfg, config, None, pool);
        if config.gated_jump_fns {
            for _ in 0..4 {
                let vals = analysis.vals.vals.clone();
                let mut next = Self::run_once_on(mcfg, config, Some(&vals), pool);
                let stable = next.vals.vals == analysis.vals.vals;
                // Telemetry accumulates across gating rounds. `absorb` is
                // order-preserving concatenation (associative, documented
                // on `AnalysisHealth::absorb`): round order is chronology.
                let mut health = std::mem::take(&mut analysis.health);
                health.absorb(std::mem::take(&mut next.health));
                next.health = health;
                let mut timings = analysis.timings;
                timings.absorb(next.timings);
                next.timings = timings;
                analysis = next;
                if stable {
                    break;
                }
            }
        }
        analysis
    }

    pub(crate) fn run_once_on(
        mcfg: &ModuleCfg,
        config: &Config,
        gate_seeds: Option<&Vec<Vec<Lattice>>>,
        pool: &crate::par::Pool<'_>,
    ) -> Analysis {
        let t_run = Instant::now();
        let jobs = config.effective_jobs();
        let cg = build_call_graph(mcfg);
        let layout = SlotLayout::new(&mcfg.module);
        let mut gov = Governor::new(config);
        let n_procs = mcfg.module.procs.len();
        let mut quarantined = vec![false; n_procs];
        let mut timings = Timings {
            jobs,
            ..Timings::default()
        };

        // Stage 0: per-procedure MOD/REF direct effects (under
        // quarantine), then call-edge propagation. A contained failure
        // widens only that procedure's summary to "touches everything
        // visible"; the fixpoint spreads the widening to callers exactly
        // as far as reference bindings demand.
        //
        // `jobs == 1` takes the original sequential loop verbatim (charge,
        // then run the unit only if the charge succeeded — the path
        // `--no-quarantine` debugging relies on). `jobs > 1` runs every
        // unit optimistically (units are pure and make no charges) and
        // folds in procedure order, charging the master governor exactly
        // where the sequential loop would; a charge that fails discards
        // the unit's result, reproducing the sequential skip bit for bit.
        let n_globals = mcfg.module.globals.len();
        let t0 = Instant::now();
        let mut mods = Vec::with_capacity(n_procs);
        let mut refs = Vec::with_capacity(n_procs);
        if !pool.parallel() {
            for (pi, p) in mcfg.module.procs.iter().enumerate() {
                let (m, r) = if !gov.charge(Stage::ModRef) {
                    quarantined[pi] = true;
                    gov.record_quarantine(
                        Stage::ModRef,
                        format!(
                            "{}: direct-effects budget exhausted; \
                             summary widened to everything visible",
                            p.name
                        ),
                    );
                    widen_modref(p.arity(), n_globals)
                } else {
                    let pid = ProcId::from(pi);
                    let unit = crate::quarantine::run_unit(config, Stage::ModRef, pi, || {
                        direct_effects(mcfg, pid)
                    });
                    commit_modref_unit(
                        &p.name,
                        unit,
                        p.arity(),
                        n_globals,
                        pi,
                        &mut quarantined,
                        &mut gov,
                    )
                };
                mods.push(m);
                refs.push(r);
            }
            timings.modref = PhaseTime::sequential(t0.elapsed(), n_procs);
        } else {
            let (units, pt) = pool.run(n_procs, |pi| {
                crate::quarantine::run_unit(config, Stage::ModRef, pi, || {
                    direct_effects(mcfg, ProcId::from(pi))
                })
            });
            for (pi, unit) in units.into_iter().enumerate() {
                let p = &mcfg.module.procs[pi];
                let (m, r) = if !gov.charge(Stage::ModRef) {
                    quarantined[pi] = true;
                    gov.record_quarantine(
                        Stage::ModRef,
                        format!(
                            "{}: direct-effects budget exhausted; \
                             summary widened to everything visible",
                            p.name
                        ),
                    );
                    widen_modref(p.arity(), n_globals)
                } else {
                    commit_modref_unit(
                        &p.name,
                        unit,
                        p.arity(),
                        n_globals,
                        pi,
                        &mut quarantined,
                        &mut gov,
                    )
                };
                mods.push(m);
                refs.push(r);
            }
            timings.modref = pt;
        }
        let modref = propagate_modref(mcfg, &cg, mods, refs);

        let mod_kills = ModKills(&modref);
        let kills: &(dyn CallKills + Sync) = if config.use_mod {
            &mod_kills
        } else {
            &WorstCaseKills
        };

        // Stage 1: return jump functions (bottom-up over the call graph;
        // parallel over the SCC levels of the condensation).
        let t1 = Instant::now();
        let ret_jfs = if !config.use_return_jfs {
            ReturnJumpFns {
                fns: vec![None; n_procs],
                compose: false,
            }
        } else if !pool.parallel() {
            let t = build_return_jfs(
                mcfg,
                &cg,
                &layout,
                kills,
                config,
                &mut quarantined,
                &mut gov,
            );
            timings.retjump = PhaseTime::sequential(t1.elapsed(), cg.bottom_up().count());
            t
        } else {
            let (t, pt) = build_return_jfs_par(
                mcfg,
                &cg,
                &layout,
                kills,
                config,
                &mut quarantined,
                &mut gov,
                pool,
            );
            timings.retjump = pt;
            t
        };

        // Stage 2: per-procedure SSA + symbolic evaluation, then forward
        // jump functions (top-down conceptually; order is irrelevant since
        // return jump functions are already fixed). The symbolic units
        // charge nothing — step budgets are enforced inside the evaluator
        // — so the parallel fold only replays the *recording* of outcomes
        // in procedure order.
        let t2 = Instant::now();
        let latch = std::sync::Arc::clone(gov.latch());
        let max_steps = gov.limits().max_symbolic_steps;
        let deadline = config.deadline.map(|d| d.instant());
        let mut symbolics: Vec<Option<ProcSymbolic>> = Vec::new();
        if !pool.parallel() {
            for pi in 0..n_procs {
                // A procedure quarantined by an earlier phase contributes
                // no symbolic form: its call sites get explicit all-⊥ jump
                // functions below, and re-running its unit here would fire
                // the same fault twice.
                if !cg.reachable[pi] || quarantined[pi] {
                    symbolics.push(None);
                    continue;
                }
                let budget = EvalBudget {
                    max_steps,
                    deadline,
                    latch: Some(&latch),
                };
                let unit = crate::quarantine::run_unit(config, Stage::Jump, pi, || {
                    build_proc_symbolic(
                        mcfg, config, &layout, kills, &ret_jfs, gate_seeds, pi, &budget,
                    )
                });
                commit_symbolic_unit(mcfg, pi, unit, &mut symbolics, &mut quarantined, &mut gov);
            }
            let jump_fns = build_forward_jump_fns(
                mcfg,
                &cg,
                &layout,
                config,
                &symbolics,
                &mut quarantined,
                &mut gov,
            );
            timings.jump = PhaseTime::sequential(t2.elapsed(), n_procs);
            return Self::finish_on(
                mcfg,
                config,
                cg,
                modref,
                layout,
                ret_jfs,
                symbolics,
                jump_fns,
                gov,
                quarantined,
                timings,
                t_run,
                pool,
            );
        }
        let (units, mut pt) = pool.run(n_procs, |pi| {
            if !cg.reachable[pi] || quarantined[pi] {
                return None;
            }
            let budget = EvalBudget {
                max_steps,
                deadline,
                latch: Some(&latch),
            };
            Some(crate::quarantine::run_unit(config, Stage::Jump, pi, || {
                build_proc_symbolic(
                    mcfg, config, &layout, kills, &ret_jfs, gate_seeds, pi, &budget,
                )
            }))
        });
        for (pi, unit) in units.into_iter().enumerate() {
            match unit {
                None => symbolics.push(None),
                Some(u) => {
                    commit_symbolic_unit(mcfg, pi, u, &mut symbolics, &mut quarantined, &mut gov);
                }
            }
        }
        let (jump_fns, pt_fwd) = build_forward_jump_fns_par(
            mcfg,
            &cg,
            &layout,
            config,
            &symbolics,
            &mut quarantined,
            &mut gov,
            pool,
        );
        pt.absorb(pt_fwd);
        timings.jump = pt;
        Self::finish_on(
            mcfg,
            config,
            cg,
            modref,
            layout,
            ret_jfs,
            symbolics,
            jump_fns,
            gov,
            quarantined,
            timings,
            t_run,
            pool,
        )
    }

    /// [`Analysis::finish_on`] without a caller-provided pool: used by
    /// serve's incremental path, whose phases upstream of the solve are
    /// cache replays (sequential by construction).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        mcfg: &ModuleCfg,
        config: &Config,
        cg: CallGraph,
        modref: ModRef,
        layout: SlotLayout,
        ret_jfs: ReturnJumpFns,
        symbolics: Vec<Option<ProcSymbolic>>,
        jump_fns: ForwardJumpFns,
        gov: Governor,
        quarantined: Vec<bool>,
        timings: Timings,
        t_run: Instant,
    ) -> Analysis {
        crate::par::with_pool(timings.jobs, |pool| {
            Self::finish_on(
                mcfg,
                config,
                cg,
                modref,
                layout,
                ret_jfs,
                symbolics,
                jump_fns,
                gov,
                quarantined,
                timings,
                t_run,
                pool,
            )
        })
    }

    /// Stage 3 (the interprocedural wavefront solve, parallel over the
    /// SCC levels when the pool is) and assembly — shared tail of both
    /// `run_once_on` paths.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_on(
        mcfg: &ModuleCfg,
        config: &Config,
        cg: CallGraph,
        modref: ModRef,
        layout: SlotLayout,
        ret_jfs: ReturnJumpFns,
        symbolics: Vec<Option<ProcSymbolic>>,
        jump_fns: ForwardJumpFns,
        mut gov: Governor,
        mut quarantined: Vec<bool>,
        mut timings: Timings,
        t_run: Instant,
        pool: &crate::par::Pool<'_>,
    ) -> Analysis {
        let entry_globals = if config.assume_zero_globals {
            Lattice::Const(0)
        } else {
            Lattice::Bottom
        };
        let (vals, solve_time) = crate::solver::solve_on(
            mcfg,
            &cg,
            &layout,
            &jump_fns,
            entry_globals,
            config,
            &mut gov,
            &mut quarantined,
            pool,
        );
        timings.solve = solve_time;
        timings.total = t_run.elapsed();

        Analysis {
            config: *config,
            cg,
            modref,
            layout,
            ret_jfs,
            symbolics,
            jump_fns,
            vals,
            health: gov.into_health(),
            quarantined,
            timings,
        }
    }

    /// The SCCP call oracle consistent with this analysis's configuration.
    pub fn sccp_oracle<'a>(&'a self, mcfg: &'a ModuleCfg) -> Box<dyn CallDefLattice + 'a> {
        if self.config.use_return_jfs {
            Box::new(RetOracle {
                table: &self.ret_jfs,
                mcfg,
                layout: &self.layout,
            })
        } else {
            Box::new(OpaqueCallsLattice)
        }
    }

    /// `CONSTANTS(p)` as `(slot name, value)` pairs.
    pub fn constants_of(&self, mcfg: &ModuleCfg, p: ProcId) -> Vec<(String, i64)> {
        self.vals
            .constants(p)
            .into_iter()
            .map(|(slot, c)| (self.layout.slot_name(&mcfg.module, p, slot).to_string(), c))
            .collect()
    }

    /// Stage 4: record the results — run the substitution metric.
    pub fn substitute(&self, mcfg: &ModuleCfg) -> Substitution {
        substitute::substitute(mcfg, self)
    }
}

/// The worst-case MOD/REF pair a quarantined procedure is widened to.
pub(crate) fn widen_modref(arity: usize, n_globals: usize) -> (ModSet, ModSet) {
    (
        ModSet::everything(arity, n_globals),
        ModSet::everything(arity, n_globals),
    )
}

/// Commits one MOD/REF unit outcome: the pair on success, the sound
/// widening (plus a quarantine event) on a contained panic. Shared by the
/// sequential loop and the parallel fold so both record byte-identical
/// telemetry.
pub(crate) fn commit_modref_unit(
    name: &str,
    unit: Result<(ModSet, ModSet), UnitError>,
    arity: usize,
    n_globals: usize,
    pi: usize,
    quarantined: &mut [bool],
    gov: &mut Governor,
) -> (ModSet, ModSet) {
    match unit {
        Ok(pair) => pair,
        Err(e) => {
            quarantined[pi] = true;
            gov.record_quarantine(
                Stage::ModRef,
                format!(
                    "{name}: panic contained ({}); \
                     summary widened to everything visible",
                    e.message
                ),
            );
            widen_modref(arity, n_globals)
        }
    }
}

/// One procedure's SSA + gate + symbolic evaluation — the Stage::Jump
/// unit of work, shared by the sequential loop and the parallel workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_proc_symbolic(
    mcfg: &ModuleCfg,
    config: &Config,
    layout: &SlotLayout,
    kills: &(dyn CallKills + Sync),
    ret_jfs: &ReturnJumpFns,
    gate_seeds: Option<&Vec<Vec<Lattice>>>,
    pi: usize,
    budget: &EvalBudget<'_>,
) -> (ProcSymbolic, bool) {
    let p = ProcId::from(pi);
    let ssa = if config.pruned_ssa {
        build_ssa_pruned(mcfg, p, kills)
    } else {
        build_ssa(mcfg, p, kills)
    };
    // Gate (extension): an unseeded SCCP pass whose executability
    // facts prune phi inputs and dead call sites, approximating
    // jump-function generation over gated single-assignment form.
    let gate = if config.gated_jump_fns {
        let n_vars = mcfg.module.proc(p).vars.len();
        let seeds = match gate_seeds {
            Some(vals) => crate::substitute::seeds_from_vals(mcfg, layout, p, &vals[pi]),
            None => ipcp_ssa::Seeds::none(n_vars),
        };
        let res = if config.use_return_jfs {
            let oracle = RetOracle {
                table: ret_jfs,
                mcfg,
                layout,
            };
            ipcp_ssa::sccp::run(mcfg, &ssa, &seeds, &oracle)
        } else {
            ipcp_ssa::sccp::run(mcfg, &ssa, &seeds, &OpaqueCallsLattice)
        };
        Some(res)
    } else {
        None
    };
    let (sym, steps_exhausted) = if config.use_return_jfs {
        let oracle = RetOracle {
            table: ret_jfs,
            mcfg,
            layout,
        };
        ipcp_ssa::symbolic::evaluate_under(mcfg, &ssa, layout, &oracle, gate.as_ref(), budget)
    } else {
        ipcp_ssa::symbolic::evaluate_under(mcfg, &ssa, layout, &OpaqueCalls, gate.as_ref(), budget)
    };
    (ProcSymbolic { ssa, sym, gate }, steps_exhausted)
}

/// Commits one symbolic unit outcome into `symbolics`, recording the
/// deadline/step-slice/panic events exactly as the sequential loop would.
pub(crate) fn commit_symbolic_unit(
    mcfg: &ModuleCfg,
    pi: usize,
    unit: Result<(ProcSymbolic, bool), UnitError>,
    symbolics: &mut Vec<Option<ProcSymbolic>>,
    quarantined: &mut [bool],
    gov: &mut Governor,
) {
    let name = &mcfg.module.procs[pi].name;
    match unit {
        Ok((ps, steps_exhausted)) => {
            if steps_exhausted {
                if gov.deadline_expired() {
                    gov.record_deadline(
                        Stage::Jump,
                        format!(
                            "{name}: deadline expired during symbolic \
                             evaluation; pending values forced to ⊥"
                        ),
                    );
                } else {
                    gov.record_quarantine(
                        Stage::Jump,
                        format!(
                            "{name}: symbolic evaluation step slice \
                             exhausted; pending values forced to ⊥"
                        ),
                    );
                }
            }
            symbolics.push(Some(ps));
        }
        Err(e) => {
            quarantined[pi] = true;
            gov.record_quarantine(
                Stage::Jump,
                format!(
                    "{name}: panic contained ({}); procedure \
                     quarantined, jump functions forced to ⊥",
                    e.message
                ),
            );
            symbolics.push(None);
        }
    }
}

/// The façade entry point: runs the full pipeline and applies strict-mode
/// promotion, so library callers get the same semantics as `ipcc`
/// (`--strict` → exit code 3) without reimplementing the health check.
///
/// # Errors
///
/// [`IpcpError::ResourceExhausted`] when [`Config::strict`] is set and
/// any stage degraded. Without strict mode this never fails — degraded
/// runs stay sound and report what happened in [`Analysis::health`].
///
/// ```
/// use ipcp::{analyze, Config};
/// let module = ipcp_ir::parse_and_resolve(
///     "proc main() { call f(6); } proc f(a) { print a; }",
/// )?;
/// let mcfg = ipcp_ir::lower_module(&module);
/// let analysis = analyze(&mcfg, &Config::builder().strict(true).build()?)?;
/// let f = mcfg.module.proc_named("f").unwrap().id;
/// assert_eq!(analysis.constants_of(&mcfg, f), vec![("a".to_string(), 6)]);
/// # Ok::<(), ipcp::IpcpError>(())
/// ```
pub fn analyze(mcfg: &ModuleCfg, config: &Config) -> Result<Analysis, IpcpError> {
    let analysis = Analysis::run(mcfg, config);
    IpcpError::check_strict(config.strict, &analysis.health)?;
    Ok(analysis)
}

/// Parses, resolves, lowers, and analyzes FT source in one call.
///
/// # Errors
///
/// [`IpcpError::Frontend`] if the source is malformed. Budget exhaustion
/// is **not** an error here — the analysis degrades soundly and reports
/// what happened in [`Analysis::health`]; callers that demand full
/// precision can promote degradations with [`IpcpError::check_strict`].
///
/// ```
/// use ipcp::{analyze_source, Config};
/// let (mcfg, analysis) = analyze_source(
///     "proc main() { call f(6, 7); } proc f(a, b) { print a * b; }",
///     &Config::default(),
/// )?;
/// let f = mcfg.module.proc_named("f").unwrap().id;
/// let consts = analysis.constants_of(&mcfg, f);
/// assert_eq!(consts, vec![("a".to_string(), 6), ("b".to_string(), 7)]);
/// assert!(!analysis.health.degraded());
/// # Ok::<(), ipcp::IpcpError>(())
/// ```
pub fn analyze_source(src: &str, config: &Config) -> Result<(ModuleCfg, Analysis), IpcpError> {
    let module = ipcp_ir::parse_and_resolve(src)?;
    let mcfg = ipcp_ir::lower_module(&module);
    let analysis = Analysis::run(&mcfg, config);
    Ok((mcfg, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JumpFnKind;

    #[test]
    fn pipeline_stages_hang_together() {
        let (mcfg, a) = analyze_source(
            "global size; \
             proc main() { size = 100; call setup(); call kernel(10); } \
             proc setup() { } \
             proc kernel(k) { do i = 1, k { print i * size; } }",
            &Config::default(),
        )
        .unwrap();
        let kernel = mcfg.module.proc_named("kernel").unwrap().id;
        let consts = a.constants_of(&mcfg, kernel);
        assert!(consts.contains(&("k".to_string(), 10)), "{consts:?}");
        assert!(consts.contains(&("size".to_string(), 100)), "{consts:?}");
    }

    #[test]
    fn substitution_counts_occurrences_not_slots() {
        let (mcfg, a) = analyze_source(
            "proc main() { call f(3); } proc f(a) { print a; print a + a; }",
            &Config::default(),
        )
        .unwrap();
        let sub = a.substitute(&mcfg);
        // Three occurrences of `a` replaced.
        assert_eq!(sub.total, 3);
    }

    #[test]
    fn substituted_program_behaves_identically() {
        use ipcp_ir::interp::{exec_cfg, ExecLimits};
        let src = "global g; \
                   proc main() { g = 2; read x; call f(5, x); } \
                   proc f(k, n) { do i = 1, k { print i * g + n; } }";
        let (mcfg, a) = analyze_source(src, &Config::polynomial()).unwrap();
        let sub = a.substitute(&mcfg);
        assert!(sub.total > 0);
        for input in [&[0][..], &[7], &[-3]] {
            let before = exec_cfg(&mcfg, input, &ExecLimits::default()).unwrap();
            let after = exec_cfg(&sub.module, input, &ExecLimits::default()).unwrap();
            assert_eq!(before.output, after.output, "behaviour changed");
        }
    }

    #[test]
    fn jump_fn_hierarchy_is_monotone_on_counts() {
        let src = "global g; \
                   proc main() { g = 4; n = 6; call a(n, 3); } \
                   proc a(x, y) { call b(x, y + 1); } \
                   proc b(p, q) { print p * q * g; }";
        let mcfg = ipcp_ir::lower_module(&ipcp_ir::parse_and_resolve(src).unwrap());
        let mut last = 0;
        for kind in JumpFnKind::ALL {
            let a = Analysis::run(&mcfg, &Config::default().with_jump_fn(kind));
            let count = a.substitute(&mcfg).total;
            assert!(count >= last, "{kind} found {count} < previous {last}");
            last = count;
        }
    }

    #[test]
    fn removing_mod_never_helps() {
        let src = "global g; \
                   proc main() { g = 1; x = 2; call f(x); print g + x; } \
                   proc f(a) { print a; }";
        let mcfg = ipcp_ir::lower_module(&ipcp_ir::parse_and_resolve(src).unwrap());
        let with_mod = Analysis::run(&mcfg, &Config::polynomial())
            .substitute(&mcfg)
            .total;
        let without = Analysis::run(&mcfg, &Config::polynomial().with_mod(false))
            .substitute(&mcfg)
            .total;
        assert!(without <= with_mod);
        assert!(with_mod > 0);
    }

    #[test]
    fn return_jfs_recover_constants_after_calls() {
        let src = "global g; \
                   proc main() { call init(); call use(); } \
                   proc init() { g = 8; } \
                   proc use() { print g; }";
        let mcfg = ipcp_ir::lower_module(&ipcp_ir::parse_and_resolve(src).unwrap());
        let with_ret = Analysis::run(&mcfg, &Config::default());
        let use_p = mcfg.module.proc_named("use").unwrap().id;
        assert_eq!(
            with_ret.constants_of(&mcfg, use_p),
            vec![("g".to_string(), 8)]
        );
        let without = Analysis::run(&mcfg, &Config::default().with_return_jfs(false));
        assert!(without.constants_of(&mcfg, use_p).is_empty());
    }

    #[test]
    fn intraprocedural_baseline_is_weaker() {
        let src = "proc main() { call f(9); } proc f(a) { print a; print 3 * 2; }";
        let (mcfg, a) = analyze_source(src, &Config::default()).unwrap();
        let inter = a.substitute(&mcfg).total;
        let intra = crate::substitute::substitute_intraprocedural(&mcfg, &a).total;
        assert!(intra < inter, "intra {intra} !< inter {inter}");
        assert_eq!(intra, 0); // `3 * 2` has no variable occurrence
        assert_eq!(inter, 1);
    }
}
