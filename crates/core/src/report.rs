//! Analysis statistics: the concrete counterpart of the paper's §3.1.5
//! cost discussion.
//!
//! The paper argues costs in terms of (a) how many jump functions of each
//! shape get built, (b) how large their support sets are (pass-through
//! support is always a singleton, so lowering a value re-evaluates at most
//! one function per use), and (c) how many meet operations the
//! interprocedural solver performs. [`CostReport::collect`] extracts those
//! quantities from a finished [`Analysis`].

use crate::jump::JumpFn;
use crate::par::{PhaseTime, Timings};
use crate::pipeline::Analysis;
use ipcp_ir::cfg::ModuleCfg;
use std::fmt;
use std::time::Duration;

/// Aggregated statistics for one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Procedures reachable from the entry.
    pub reachable_procs: usize,
    /// Call sites (edges of the call multigraph).
    pub call_sites: usize,
    /// Jump functions by shape: constant.
    pub jf_const: usize,
    /// Jump functions by shape: pass-through.
    pub jf_pass_through: usize,
    /// Jump functions by shape: non-trivial polynomial.
    pub jf_polynomial: usize,
    /// Jump functions by shape: ⊥.
    pub jf_bottom: usize,
    /// Sum of support-set sizes over all jump functions.
    pub total_support: usize,
    /// Largest single support set.
    pub max_support: usize,
    /// Return jump functions that are constants.
    pub ret_jf_const: usize,
    /// Return jump functions that are the identity of their own slot.
    pub ret_jf_identity: usize,
    /// Return jump functions that are other pass-throughs or polynomials.
    pub ret_jf_symbolic: usize,
    /// Return jump functions that are ⊥.
    pub ret_jf_bottom: usize,
    /// Meet operations the solver performed.
    pub solver_meets: usize,
    /// Worklist iterations (procedure re-evaluations).
    pub solver_iterations: usize,
    /// Total SSA values across reachable procedures.
    pub ssa_values: usize,
    /// Constant entry slots across reachable procedures.
    pub constant_slots: usize,
    /// Degradation events recorded by the budget governor (0 means the
    /// run completed at full precision).
    pub degradations: usize,
    /// Procedures quarantined by the fault-isolation layer (their
    /// summaries were forced to worst-case; everything else kept full
    /// precision).
    pub quarantined: usize,
}

impl CostReport {
    /// Gathers the report from a finished analysis.
    pub fn collect(mcfg: &ModuleCfg, analysis: &Analysis) -> CostReport {
        let mut r = CostReport {
            reachable_procs: analysis.cg.reachable.iter().filter(|&&b| b).count(),
            call_sites: analysis.cg.n_edges(),
            solver_meets: analysis.vals.meets,
            solver_iterations: analysis.vals.iterations,
            constant_slots: analysis.vals.n_constants(),
            degradations: analysis.health.events.len(),
            quarantined: analysis.quarantined.iter().filter(|&&q| q).count(),
            ..CostReport::default()
        };
        for sites in &analysis.jump_fns.sites {
            for fns in sites {
                for jf in fns {
                    let support = jf.support().len();
                    r.total_support += support;
                    r.max_support = r.max_support.max(support);
                    match jf {
                        JumpFn::Const(_) => r.jf_const += 1,
                        JumpFn::PassThrough(_) => r.jf_pass_through += 1,
                        JumpFn::Poly(_) => r.jf_polynomial += 1,
                        JumpFn::Bottom => r.jf_bottom += 1,
                    }
                }
            }
        }
        for (pi, fns) in analysis.ret_jfs.fns.iter().enumerate() {
            let Some(fns) = fns else { continue };
            for (slot, jf) in fns.iter().enumerate() {
                match jf {
                    JumpFn::Const(_) => r.ret_jf_const += 1,
                    JumpFn::PassThrough(v) if *v as usize == slot => r.ret_jf_identity += 1,
                    JumpFn::PassThrough(_) | JumpFn::Poly(_) => r.ret_jf_symbolic += 1,
                    JumpFn::Bottom => r.ret_jf_bottom += 1,
                }
            }
            let _ = pi;
        }
        for ps in analysis.symbolics.iter().flatten() {
            r.ssa_values += ps.ssa.len();
        }
        let _ = mcfg;
        r
    }

    /// Total jump functions constructed.
    pub fn jf_total(&self) -> usize {
        self.jf_const + self.jf_pass_through + self.jf_polynomial + self.jf_bottom
    }

    /// Mean support size over all jump functions — the paper's observation
    /// is that this approaches ≤ 1 in practice even for the polynomial
    /// implementation.
    pub fn mean_support(&self) -> f64 {
        if self.jf_total() == 0 {
            0.0
        } else {
            self.total_support as f64 / self.jf_total() as f64
        }
    }
}

/// One stage's line in a [`PhaseReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Stage label (`modref`, `retjump`, `jump`, `solve`).
    pub stage: &'static str,
    /// Wall-clock time of the stage, summed across gating rounds.
    pub wall: Duration,
    /// Units the stage processed (procedures, or SCCs for the solver).
    pub units: usize,
    /// Parallel-fold units whose optimistic governor shard merged cleanly.
    pub absorbed: usize,
    /// Parallel-fold units discarded and replayed against the master.
    pub replayed: usize,
}

/// The per-stage timing and absorb/replay census of one analysis run —
/// the typed table both `ipcc tables` and the bench `report_all` binary
/// render, so the two never drift apart column by column.
///
/// Collect with [`PhaseReport::collect`], render a header once with
/// [`PhaseReport::header`] and one line per run with
/// [`PhaseReport::render_row`]. All quantities are observational: they
/// come from [`Timings`] and never feed back into results.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Worker threads the run was configured with.
    pub jobs: usize,
    /// One row per pipeline stage, in pipeline order.
    pub rows: Vec<PhaseRow>,
    /// Whole-run wall clock.
    pub total: Duration,
    /// Busy-time utilization across `jobs` workers in `[0, 1]`.
    pub utilization: f64,
}

impl PhaseReport {
    /// Gathers the report from a finished run's timings.
    pub fn collect(t: &Timings) -> PhaseReport {
        let row = |stage: &'static str, pt: &PhaseTime| PhaseRow {
            stage,
            wall: pt.wall,
            units: pt.units,
            absorbed: pt.absorbed,
            replayed: pt.replayed,
        };
        PhaseReport {
            jobs: t.jobs,
            rows: vec![
                row("modref", &t.modref),
                row("retjump", &t.retjump),
                row("jump", &t.jump),
                row("solve", &t.solve),
            ],
            total: t.total,
            utilization: t.utilization(),
        }
    }

    /// Total units absorbed by the parallel folds (0 when sequential).
    pub fn absorbed(&self) -> usize {
        self.rows.iter().map(|r| r.absorbed).sum()
    }

    /// Total units replayed by the parallel folds.
    pub fn replayed(&self) -> usize {
        self.rows.iter().map(|r| r.replayed).sum()
    }

    /// The column header matching [`PhaseReport::render_row`].
    pub fn header() -> String {
        format!(
            "{:<10} {:>4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6} {:>6} {:>6}",
            "program",
            "jobs",
            "modref_us",
            "retjf_us",
            "jump_us",
            "solve_us",
            "total_us",
            "absorb",
            "replay",
            "util"
        )
    }

    /// One table line for this run, labelled `program`.
    pub fn render_row(&self, program: &str) -> String {
        let us = |i: usize| self.rows[i].wall.as_micros();
        format!(
            "{:<10} {:>4} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6} {:>6} {:>5.0}%",
            program,
            self.jobs,
            us(0),
            us(1),
            us(2),
            us(3),
            self.total.as_micros(),
            self.absorbed(),
            self.replayed(),
            100.0 * self.utilization,
        )
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reachable procedures     {}", self.reachable_procs)?;
        writeln!(f, "call sites               {}", self.call_sites)?;
        writeln!(
            f,
            "forward jump functions   {} (const {}, pass-through {}, polynomial {}, ⊥ {})",
            self.jf_total(),
            self.jf_const,
            self.jf_pass_through,
            self.jf_polynomial,
            self.jf_bottom
        )?;
        writeln!(
            f,
            "support sizes            mean {:.2}, max {}",
            self.mean_support(),
            self.max_support
        )?;
        writeln!(
            f,
            "return jump functions    const {}, identity {}, symbolic {}, ⊥ {}",
            self.ret_jf_const, self.ret_jf_identity, self.ret_jf_symbolic, self.ret_jf_bottom
        )?;
        writeln!(
            f,
            "solver                   {} meets in {} iterations",
            self.solver_meets, self.solver_iterations
        )?;
        writeln!(f, "ssa values               {}", self.ssa_values)?;
        writeln!(f, "constant entry slots     {}", self.constant_slots)?;
        writeln!(f, "degradations             {}", self.degradations)?;
        writeln!(f, "quarantined procedures   {}", self.quarantined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, JumpFnKind};
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn report(src: &str, config: &Config) -> CostReport {
        let mcfg = lower_module(&parse_and_resolve(src).unwrap());
        let analysis = Analysis::run(&mcfg, config);
        CostReport::collect(&mcfg, &analysis)
    }

    const SRC: &str = "global g; \
        proc main() { g = 2; n = 10; call f(n, 3); } \
        proc f(a, b) { call h(a); print a * b * g; } \
        proc h(x) { print x; }";

    #[test]
    fn counts_shapes_per_kind() {
        let pass = report(SRC, &Config::default());
        assert!(pass.jf_pass_through >= 1, "{pass:?}");
        assert_eq!(pass.jf_polynomial, 0, "pass-through never builds polys");
        let lit = report(SRC, &Config::default().with_jump_fn(JumpFnKind::Literal));
        assert_eq!(lit.jf_pass_through, 0);
        assert!(lit.jf_bottom > pass.jf_bottom);
        assert_eq!(lit.jf_total(), pass.jf_total());
    }

    #[test]
    fn support_stays_singleton_for_pass_through() {
        let r = report(SRC, &Config::default());
        assert!(r.max_support <= 1);
        assert!(r.mean_support() <= 1.0);
    }

    #[test]
    fn return_jf_shapes_are_classified() {
        let r = report(SRC, &Config::default());
        // h leaves g untouched → identity; f modifies nothing either.
        assert!(r.ret_jf_identity > 0, "{r:?}");
        let none = report(SRC, &Config::default().with_return_jfs(false));
        assert_eq!(
            none.ret_jf_const + none.ret_jf_identity + none.ret_jf_symbolic,
            0
        );
    }

    #[test]
    fn solver_counters_are_plausible() {
        let r = report(SRC, &Config::default());
        assert!(r.solver_iterations >= r.reachable_procs);
        assert!(r.solver_meets >= r.jf_total());
        assert!(r.ssa_values > 0);
        assert!(r.constant_slots >= 4, "{r:?}"); // a, b, x, g (×procs)
    }

    #[test]
    fn display_is_complete() {
        let text = report(SRC, &Config::default()).to_string();
        for needle in [
            "call sites",
            "support",
            "solver",
            "constant entry slots",
            "degradations",
        ] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn quarantined_procedures_are_counted() {
        use crate::config::Stage;
        let clean = report(SRC, &Config::default());
        assert_eq!(clean.quarantined, 0);
        let hurt = report(SRC, &Config::default().with_panic(Stage::Jump, 1));
        assert_eq!(hurt.quarantined, 1, "{hurt:?}");
        assert!(hurt.degradations > 0);
        assert!(hurt.to_string().contains("quarantined procedures   1"));
    }

    #[test]
    fn phase_report_rows_follow_pipeline_order() {
        let mcfg = lower_module(&parse_and_resolve(SRC).unwrap());
        // Pin jobs=1: Config::default() auto-resolves through IPCP_JOBS,
        // which the parallel test lane sets.
        let seq = Analysis::run(&mcfg, &Config::default().with_jobs(1));
        let pr = PhaseReport::collect(&seq.timings);
        let stages: Vec<&str> = pr.rows.iter().map(|r| r.stage).collect();
        assert_eq!(stages, ["modref", "retjump", "jump", "solve"]);
        assert_eq!(pr.jobs, 1);
        // Sequential runs never touch the optimistic fold.
        assert_eq!(pr.absorbed(), 0);
        assert_eq!(pr.replayed(), 0);
        let line = pr.render_row("probe");
        assert!(line.starts_with("probe"), "{line}");
        // Header and rows agree column-for-column (same widths, so the
        // rendered line is never wider than the header's last column).
        assert!(PhaseReport::header().contains("absorb"));
        assert!(PhaseReport::header().contains("replay"));
    }

    #[test]
    fn phase_report_counts_parallel_folds() {
        let mcfg = lower_module(&parse_and_resolve(SRC).unwrap());
        let par = Analysis::run(&mcfg, &Config::default().with_jobs(2));
        let pr = PhaseReport::collect(&par.timings);
        // Every optimistically-run unit is accounted exactly once.
        assert!(pr.absorbed() + pr.replayed() > 0, "{pr:?}");
        // A healthy run absorbs everything: replay only fires on budget
        // or fault boundaries.
        assert_eq!(pr.replayed(), 0, "{pr:?}");
    }

    #[test]
    fn degradations_counted_from_health() {
        let full = report(SRC, &Config::default());
        assert_eq!(full.degradations, 0, "default limits never degrade");
        let limits = crate::config::AnalysisLimits {
            max_solver_iterations: 1,
            ..crate::config::AnalysisLimits::default()
        };
        let clipped = report(SRC, &Config::default().with_limits(limits));
        assert!(clipped.degradations > 0, "{clipped:?}");
        assert!(clipped.constant_slots <= full.constant_slots);
    }
}
