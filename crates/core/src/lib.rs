//! # ipcp — Interprocedural Constant Propagation with Jump Functions
//!
//! A from-scratch implementation of the interprocedural constant
//! propagation framework of Callahan, Cooper, Kennedy, and Torczon
//! (SIGPLAN '86), evaluated the way Grove and Torczon's PLDI 1993 study
//! did: four forward jump-function implementations, polynomial return jump
//! functions, MOD-information ablation, and the iterated
//! propagate-and-prune "complete propagation".
//!
//! The analysis computes, for every procedure `p` of an FT program, the
//! set `CONSTANTS(p)` of `(name, value)` pairs that hold on **every**
//! entry to `p`, and measures usefulness by textually substituting those
//! constants into the code.
//!
//! ## Quick start
//!
//! ```
//! use ipcp::{analyze_source, Config, JumpFnKind};
//!
//! let src = r#"
//!     global size;
//!     proc main() {
//!         size = 128;
//!         call smooth(size / 2, 3);
//!     }
//!     proc smooth(n, passes) {
//!         do p = 1, passes {
//!             do i = 1, n { print i * p; }
//!         }
//!     }
//! "#;
//! let (mcfg, analysis) = analyze_source(src, &Config::default())?;
//! let smooth = mcfg.module.proc_named("smooth").unwrap().id;
//! let consts = analysis.constants_of(&mcfg, smooth);
//! assert!(consts.contains(&("n".to_string(), 64)));
//! assert!(consts.contains(&("passes".to_string(), 3)));
//! assert!(consts.contains(&("size".to_string(), 128)));
//!
//! // The Metzger–Stroud usefulness metric: constants substituted.
//! let substituted = analysis.substitute(&mcfg);
//! assert!(substituted.total > 0);
//! # Ok::<(), ipcp::IpcpError>(())
//! ```
//!
//! ## Crate map
//!
//! * [`config`] — the experimental axes: [`JumpFnKind`], MOD on/off,
//!   return jump functions on/off, composition extension;
//! * [`jump`] — forward jump functions and their construction;
//! * [`retjump`] — return jump functions (bottom-up generation and the
//!   §3.2 evaluation limitation);
//! * [`solver`] — the wavefront propagation of `VAL` sets over the
//!   levels of the call-graph SCC condensation, parallel within a level
//!   when `jobs > 1`, plus the classic §4.1 worklist retained as a
//!   reference oracle (lattice re-exported as [`lattice`], the paper's
//!   Figure 1);
//! * [`mod@substitute`] — the constants-substituted metric and program
//!   transformation;
//! * [`complete`] — propagate ⇄ dead-code-eliminate to fixpoint;
//! * [`cloning`] — procedure cloning driven by incoming constant vectors
//!   (the application pursued by Metzger–Stroud and Cooper–Hall–Kennedy);
//! * [`health`] — analysis budgets, the degradation governor, and run
//!   telemetry (see `docs/ROBUSTNESS.md`);
//! * [`serve`] — the crash-isolated incremental analysis service behind
//!   `ipcc serve`: content-hash-keyed summary cache, transactional
//!   commits, and the typed request engine (see `docs/SERVE.md`);
//! * [`error`] — the unified [`IpcpError`] taxonomy over front-end
//!   diagnostics, interpreter faults, and exhausted budgets.

pub mod binding;
pub mod cloning;
pub mod complete;
pub mod config;
pub mod error;
pub mod explain;
pub mod health;
pub mod inline;
pub mod jump;
pub mod par;
pub mod pipeline;
pub mod quarantine;
pub mod reduce;
pub mod report;
pub mod resource;
pub mod retjump;
pub mod serve;
pub mod solver;
pub mod substitute;

/// The constant-propagation lattice of the paper's Figure 1 (re-exported
/// from the SSA layer, which shares it).
pub mod lattice {
    pub use ipcp_ssa::lattice::Lattice;
}

pub use binding::solve_binding_graph;
pub use cloning::{clone_by_constants, cloning_gain, CloneResult};
pub use complete::{complete_propagation, CompleteResult};
pub use config::{
    AnalysisLimits, Config, ConfigBuilder, Deadline, FaultInjection, JumpFnKind, PanicInjection,
    Stage,
};
pub use error::IpcpError;
pub use explain::{explain, Explanation};
pub use health::{AnalysisHealth, DegradationEvent, DegradationKind, Governor};
pub use inline::{inline_leaf_calls, integrate_and_count, InlineResult};
pub use ipcp_ssa::DeadlineLatch;
pub use jump::{ForwardJumpFns, JumpFn};
pub use lattice::Lattice;
pub use par::{PhaseTime, Timings};
pub use pipeline::{analyze, analyze_source, Analysis, PhaseFold, PhaseUnit, UnitError};
pub use reduce::{
    ddmin_text, is_interesting, reduce, reduce_with_prepass, soundness_violation, ReduceCheck,
    ReduceOutcome, StructuralPass,
};
pub use report::{CostReport, PhaseReport, PhaseRow};
pub use resource::peak_rss_bytes;
pub use retjump::{build_return_jfs, ReturnJumpFns};
pub use serve::{ServeEngine, ServeError, SummaryCache};
pub use solver::{solve, solve_worklist_reference, ValSets};
pub use substitute::{substitute, substitute_intraprocedural, Substitution};
