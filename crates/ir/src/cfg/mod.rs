//! Per-procedure control-flow graphs and the AST-to-CFG lowering.
//!
//! Every analysis in the workspace (MOD/REF, SSA construction, SCCP,
//! symbolic evaluation, jump-function generation) works on the [`ModuleCfg`]
//! produced by [`lower_module`]. The CFG is also executable — see
//! [`crate::interp::exec_cfg`] — which lets the test suite check that CFG
//! transformations (constant substitution, dead-code elimination,
//! procedure cloning) preserve program behaviour.

mod lower;

pub use lower::lower_module;

use crate::program::{Arg, Expr, Module, ProcId, VarId};
use std::fmt;

/// Index of a basic block within its procedure's [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl From<usize> for BlockId {
    fn from(i: usize) -> Self {
        match u32::try_from(i) {
            Ok(n) => BlockId(n),
            Err(_) => unreachable!("block id overflow"),
        }
    }
}

/// Index of a call site within its procedure (dense, in lowering order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

impl CallSiteId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs{}", self.0)
    }
}

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs{}", self.0)
    }
}

impl From<usize> for CallSiteId {
    fn from(i: usize) -> Self {
        match u32::try_from(i) {
            Ok(n) => CallSiteId(n),
            Err(_) => unreachable!("call site id overflow"),
        }
    }
}

/// A straight-line CFG statement. Expressions are pure; all side effects
/// are statement-level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CStmt {
    /// `dst = value`
    Assign {
        /// Target scalar.
        dst: VarId,
        /// Stored value.
        value: Expr,
    },
    /// `array[index] = value`
    Store {
        /// Target array.
        array: VarId,
        /// Cell index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `read dst`
    Read {
        /// Target scalar.
        dst: VarId,
    },
    /// `print value`
    Print {
        /// Printed value.
        value: Expr,
    },
    /// `call callee(args...)`
    Call {
        /// Callee procedure.
        callee: ProcId,
        /// Actual arguments.
        args: Vec<Arg>,
        /// This call's dense id within the enclosing procedure.
        site: CallSiteId,
    },
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way conditional edge; nonzero condition takes `then_bb`.
    Branch {
        /// Branch condition.
        cond: Expr,
        /// Successor when the condition is nonzero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Procedure exit.
    Return,
}

impl Terminator {
    /// The successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => Vec::new(),
        }
    }
}

/// A basic block: straight-line statements plus one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// The statements, in execution order.
    pub stmts: Vec<CStmt>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// An empty block ending in `Return` (placeholder during construction).
    pub fn new() -> Self {
        BasicBlock {
            stmts: Vec::new(),
            term: Terminator::Return,
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// The control-flow graph of one procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    /// All blocks; unreachable blocks may exist (e.g. code after `return`).
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// Number of call sites lowered into this CFG (dense `CallSiteId`s).
    pub n_call_sites: usize,
}

impl Cfg {
    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.index()]
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true for lowered procedures).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Successors of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).term.successors()
    }

    /// Predecessor lists for every block (indexed by block id).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, blk) in self.blocks.iter().enumerate() {
            for s in blk.term.successors() {
                preds[s.index()].push(BlockId::from(i));
            }
        }
        preds
    }

    /// Blocks reachable from the entry, as a bitmap indexed by block id.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.index()], true) {
                continue;
            }
            stack.extend(self.successors(b));
        }
        seen
    }

    /// Reverse postorder over reachable blocks, starting at the entry.
    ///
    /// Every reachable block appears exactly once; for a reducible CFG all
    /// of a block's forward-edge predecessors appear before it.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut state = vec![0u8; self.blocks.len()]; // 0=unseen 1=open 2=done
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        state[self.entry.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Renders the CFG as indented text (for snapshots and debugging).
    pub fn display<'a>(&'a self, module: &'a Module, proc: ProcId) -> CfgDisplay<'a> {
        CfgDisplay {
            cfg: self,
            module,
            proc,
        }
    }
}

/// Pretty display adapter returned by [`Cfg::display`].
#[derive(Debug)]
pub struct CfgDisplay<'a> {
    cfg: &'a Cfg,
    module: &'a Module,
    proc: ProcId,
}

impl fmt::Display for CfgDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.module.proc(self.proc);
        let name = |v: VarId| p.var(v).name.clone();
        let expr = |e: &Expr| display_expr(e, p);
        writeln!(f, "proc {} {{", p.name)?;
        for (i, blk) in self.cfg.blocks.iter().enumerate() {
            let tag = if BlockId::from(i) == self.cfg.entry {
                " (entry)"
            } else {
                ""
            };
            writeln!(f, "  bb{i}{tag}:")?;
            for s in &blk.stmts {
                match s {
                    CStmt::Assign { dst, value } => {
                        writeln!(f, "    {} = {}", name(*dst), expr(value))?
                    }
                    CStmt::Store {
                        array,
                        index,
                        value,
                    } => writeln!(f, "    {}[{}] = {}", name(*array), expr(index), expr(value))?,
                    CStmt::Read { dst } => writeln!(f, "    read {}", name(*dst))?,
                    CStmt::Print { value } => writeln!(f, "    print {}", expr(value))?,
                    CStmt::Call { callee, args, site } => {
                        let rendered: Vec<String> = args
                            .iter()
                            .map(|a| match a {
                                Arg::Scalar(v, _) => format!("&{}", name(*v)),
                                Arg::Array(v, _) => format!("&{}[]", name(*v)),
                                Arg::Value(e) => expr(e),
                            })
                            .collect();
                        writeln!(
                            f,
                            "    call {}({})  ; {site}",
                            self.module.proc(*callee).name,
                            rendered.join(", ")
                        )?
                    }
                }
            }
            match &blk.term {
                Terminator::Jump(b) => writeln!(f, "    jump {b}")?,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "    branch {} ? {then_bb} : {else_bb}", expr(cond))?,
                Terminator::Return => writeln!(f, "    return")?,
            }
        }
        writeln!(f, "}}")
    }
}

fn display_expr(e: &Expr, p: &crate::program::Proc) -> String {
    let ast = {
        // Reuse the surface pretty-printer via unresolution of just this expr.
        use crate::lang::ast;
        fn go(e: &Expr, p: &crate::program::Proc) -> ast::Expr {
            match e {
                Expr::Const(v, s) => ast::Expr::Const {
                    value: *v,
                    span: *s,
                },
                Expr::Var(v, s) => ast::Expr::Var {
                    name: p.var(*v).name.clone(),
                    span: *s,
                },
                Expr::Load(v, i, s) => ast::Expr::Load {
                    name: p.var(*v).name.clone(),
                    index: Box::new(go(i, p)),
                    span: *s,
                },
                Expr::Unary(op, e, s) => ast::Expr::Unary {
                    op: *op,
                    operand: Box::new(go(e, p)),
                    span: *s,
                },
                Expr::Binary(op, l, r, s) => ast::Expr::Binary {
                    op: *op,
                    lhs: Box::new(go(l, p)),
                    rhs: Box::new(go(r, p)),
                    span: *s,
                },
            }
        }
        go(e, p)
    };
    crate::lang::pretty::expr(&ast)
}

/// A lowered module: the resolved symbol information plus one [`Cfg`] per
/// procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleCfg {
    /// Symbol tables and (original) structured bodies.
    ///
    /// Lowering may append compiler temporaries to procedure symbol tables,
    /// so use this module (not the one passed to [`lower_module`]) when
    /// mapping `VarId`s to names.
    pub module: Module,
    /// One CFG per procedure, indexed by [`ProcId`].
    pub cfgs: Vec<Cfg>,
}

impl ModuleCfg {
    /// The CFG of procedure `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn cfg(&self, p: ProcId) -> &Cfg {
        &self.cfgs[p.index()]
    }

    /// Iterates over `(ProcId, &Cfg)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &Cfg)> {
        self.cfgs
            .iter()
            .enumerate()
            .map(|(i, c)| (ProcId::from(i), c))
    }

    /// Visits every call statement in procedure `p`.
    pub fn each_call_in(&self, p: ProcId, mut f: impl FnMut(BlockId, CallSiteId, ProcId, &[Arg])) {
        for (bi, blk) in self.cfg(p).blocks.iter().enumerate() {
            for s in &blk.stmts {
                if let CStmt::Call { callee, args, site } = s {
                    f(BlockId::from(bi), *site, *callee, args);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower_module, parse_and_resolve};

    fn lower(src: &str) -> ModuleCfg {
        lower_module(&parse_and_resolve(src).unwrap())
    }

    #[test]
    fn display_renders_every_construct() {
        let m = lower(
            "global g; \
             proc main() { array t[2]; read x; t[x % 2] = x; \
                           if (x > 0) { call f(x, 3, t); } print g; } \
             proc f(a, b, arr) { a = b; arr[0] = a; }",
        );
        let text = m
            .cfg(m.module.entry)
            .display(&m.module, m.module.entry)
            .to_string();
        assert!(text.contains("proc main {"), "{text}");
        assert!(text.contains("(entry)"), "{text}");
        assert!(text.contains("read x"), "{text}");
        assert!(text.contains("t[x % 2] = x"), "{text}");
        assert!(text.contains("branch x > 0 ?"), "{text}");
        assert!(text.contains("call f(&x, 3, &t[])  ; cs0"), "{text}");
        assert!(text.contains("print g"), "{text}");
        assert!(text.contains("return"), "{text}");
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_covers_reachable() {
        let m = lower(
            "proc main() { read x; while (x > 0) { if (x % 2 == 0) { print 0; } x = x - 1; } return; print 99; }",
        );
        let cfg = m.cfg(m.module.entry);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        let n_reach = cfg.reachable().iter().filter(|&&r| r).count();
        assert_eq!(rpo.len(), n_reach);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        assert!(rpo.iter().all(|b| seen.insert(*b)));
    }

    #[test]
    fn module_iter_pairs_ids_with_cfgs() {
        let m = lower("proc main() { call a(); } proc a() { } proc b() { }");
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs.len(), 3);
        for (i, (pid, _)) in pairs.iter().enumerate() {
            assert_eq!(pid.index(), i);
        }
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Return.successors(), Vec::<BlockId>::new());
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        let b = Terminator::Branch {
            cond: crate::program::Expr::Const(1, crate::span::Span::dummy()),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn predecessors_are_complete_and_exact() {
        let m = lower("proc main() { read x; if (x) { print 1; } else { print 2; } print 3; }");
        let cfg = m.cfg(m.module.entry);
        let preds = cfg.predecessors();
        // Inverse consistency with successors.
        for (bi, _) in cfg.blocks.iter().enumerate() {
            let b = BlockId::from(bi);
            for s in cfg.successors(b) {
                assert!(preds[s.index()].contains(&b));
            }
        }
        let total_edges: usize = preds.iter().map(|p| p.len()).sum();
        let total_succs: usize = (0..cfg.len())
            .map(|b| cfg.successors(BlockId::from(b)).len())
            .sum();
        assert_eq!(total_edges, total_succs);
    }

    #[test]
    fn each_call_in_reports_blocks_and_sites() {
        let m = lower("proc main() { call f(); if (1) { call g(); } } proc f() { } proc g() { }");
        let mut seen = Vec::new();
        m.each_call_in(m.module.entry, |block, site, callee, args| {
            assert!(args.is_empty());
            seen.push((block, site, callee));
        });
        assert_eq!(seen.len(), 2);
        assert_ne!(seen[0].0, seen[1].0); // different blocks
        assert_ne!(seen[0].1, seen[1].1); // different sites
    }
}
