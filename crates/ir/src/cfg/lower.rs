//! Lowering from the structured resolved AST to the basic-block CFG.

use super::{BasicBlock, BlockId, CStmt, CallSiteId, Cfg, ModuleCfg, Terminator};
use crate::lang::ast::BinOp;
use crate::program::{Block, Expr, Module, Proc, Stmt, VarId, VarInfo, VarKind};
use crate::span::Span;

/// Lowers every procedure of `module` to a CFG.
///
/// `do` loops are lowered FORTRAN-style: the bound and step are copied into
/// compiler temporaries on entry (they are evaluated exactly once), and the
/// loop is pre-tested. When the step is a syntactic constant the direction
/// test is folded away. Statements after a `return` land in unreachable
/// blocks, which later phases ignore.
///
/// ```
/// use ipcp_ir::{parse_and_resolve, lower_module};
/// let m = parse_and_resolve("proc main() { do i = 1, 3 { print i; } }")?;
/// let mcfg = lower_module(&m);
/// assert!(mcfg.cfg(m.entry).len() >= 3); // preheader, header, body, exit
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn lower_module(module: &Module) -> ModuleCfg {
    let mut module = module.clone();
    let cfgs = module
        .procs
        .iter_mut()
        .map(|p| Lowerer::new(p).run())
        .collect();
    ModuleCfg { module, cfgs }
}

struct Lowerer<'a> {
    proc: &'a mut Proc,
    blocks: Vec<BasicBlock>,
    current: BlockId,
    n_call_sites: usize,
    n_temps: usize,
}

impl<'a> Lowerer<'a> {
    fn new(proc: &'a mut Proc) -> Self {
        Lowerer {
            proc,
            blocks: vec![BasicBlock::new()],
            current: BlockId(0),
            n_call_sites: 0,
            n_temps: 0,
        }
    }

    fn run(mut self) -> Cfg {
        let body = std::mem::take(&mut self.proc.body.stmts);
        self.lower_stmts(&body);
        self.proc.body.stmts = body;
        self.terminate(Terminator::Return);
        Cfg {
            blocks: self.blocks,
            entry: BlockId(0),
            n_call_sites: self.n_call_sites,
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId::from(self.blocks.len());
        self.blocks.push(BasicBlock::new());
        id
    }

    fn push(&mut self, s: CStmt) {
        self.blocks[self.current.index()].stmts.push(s);
    }

    /// Sets the current block's terminator (it is `Return` by default).
    fn terminate(&mut self, t: Terminator) {
        self.blocks[self.current.index()].term = t;
    }

    /// Creates a fresh compiler temporary scalar in the procedure.
    fn fresh_temp(&mut self, hint: &str) -> VarId {
        let id = VarId::from(self.proc.vars.len());
        self.proc.vars.push(VarInfo {
            name: format!("${hint}{}", self.n_temps),
            kind: VarKind::Local,
            is_array: false,
            array_len: None,
        });
        self.n_temps += 1;
        id
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(dst, value, _) => self.push(CStmt::Assign {
                dst: *dst,
                value: value.clone(),
            }),
            Stmt::Store(array, index, value, _) => self.push(CStmt::Store {
                array: *array,
                index: index.clone(),
                value: value.clone(),
            }),
            Stmt::Read(dst, _) => self.push(CStmt::Read { dst: *dst }),
            Stmt::Print(value, _) => self.push(CStmt::Print {
                value: value.clone(),
            }),
            Stmt::Call(callee, args, _) => {
                let site = CallSiteId::from(self.n_call_sites);
                self.n_call_sites += 1;
                self.push(CStmt::Call {
                    callee: *callee,
                    args: args.clone(),
                    site,
                });
            }
            Stmt::Return(_) => {
                self.terminate(Terminator::Return);
                // Anything lowered after this is unreachable; give it its
                // own block so the reachable part stays well formed.
                self.current = self.new_block();
            }
            Stmt::If(cond, then_blk, else_blk, _) => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: cond.clone(),
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                self.lower_stmts(&then_blk.stmts);
                self.terminate(Terminator::Jump(join_bb));
                self.current = else_bb;
                self.lower_stmts(&else_blk.stmts);
                self.terminate(Terminator::Jump(join_bb));
                self.current = join_bb;
            }
            Stmt::While(cond, body, _) => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(header));
                self.current = header;
                self.terminate(Terminator::Branch {
                    cond: cond.clone(),
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.current = body_bb;
                self.lower_stmts(&body.stmts);
                self.terminate(Terminator::Jump(header));
                self.current = exit;
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                self.lower_do(*var, lo, hi, step.as_ref(), body, *span);
            }
        }
    }

    fn lower_do(
        &mut self,
        var: VarId,
        lo: &Expr,
        hi: &Expr,
        step: Option<&Expr>,
        body: &Block,
        span: Span,
    ) {
        // Preheader: var = lo; $hi = hi; [$step = step]
        self.push(CStmt::Assign {
            dst: var,
            value: lo.clone(),
        });
        let hi_tmp = self.fresh_temp("do_hi");
        self.push(CStmt::Assign {
            dst: hi_tmp,
            value: hi.clone(),
        });

        // Step handling. `None` means the step is the literal 1; a constant
        // step fixes the loop direction at compile time.
        enum StepKind {
            One,
            Const(i64, VarId),
            Dynamic(VarId),
        }
        let step_kind = match step {
            None => StepKind::One,
            Some(Expr::Const(c, _)) => {
                let t = self.fresh_temp("do_step");
                self.push(CStmt::Assign {
                    dst: t,
                    value: Expr::Const(*c, span),
                });
                StepKind::Const(*c, t)
            }
            Some(e) => {
                let t = self.fresh_temp("do_step");
                self.push(CStmt::Assign {
                    dst: t,
                    value: e.clone(),
                });
                StepKind::Dynamic(t)
            }
        };

        let var_e = Expr::Var(var, span);
        let hi_e = Expr::Var(hi_tmp, span);
        let bin = |op, l: Expr, r: Expr| Expr::Binary(op, Box::new(l), Box::new(r), span);
        let cond = match &step_kind {
            StepKind::One => bin(BinOp::Le, var_e.clone(), hi_e.clone()),
            StepKind::Const(c, _) if *c > 0 => bin(BinOp::Le, var_e.clone(), hi_e.clone()),
            StepKind::Const(c, _) if *c < 0 => bin(BinOp::Ge, var_e.clone(), hi_e.clone()),
            StepKind::Const(_, t) | StepKind::Dynamic(t) => {
                // (step > 0 && var <= hi) || (step < 0 && var >= hi)
                let step_e = Expr::Var(*t, span);
                bin(
                    BinOp::Or,
                    bin(
                        BinOp::And,
                        bin(BinOp::Gt, step_e.clone(), Expr::Const(0, span)),
                        bin(BinOp::Le, var_e.clone(), hi_e.clone()),
                    ),
                    bin(
                        BinOp::And,
                        bin(BinOp::Lt, step_e, Expr::Const(0, span)),
                        bin(BinOp::Ge, var_e.clone(), hi_e.clone()),
                    ),
                )
            }
        };

        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.terminate(Terminator::Jump(header));
        self.current = header;
        self.terminate(Terminator::Branch {
            cond,
            then_bb: body_bb,
            else_bb: exit,
        });
        self.current = body_bb;
        self.lower_stmts(&body.stmts);
        let incr = match &step_kind {
            StepKind::One => Expr::Const(1, span),
            StepKind::Const(_, t) | StepKind::Dynamic(t) => Expr::Var(*t, span),
        };
        self.push(CStmt::Assign {
            dst: var,
            value: bin(BinOp::Add, var_e, incr),
        });
        self.terminate(Terminator::Jump(header));
        self.current = exit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_resolve;

    fn lower(src: &str) -> ModuleCfg {
        lower_module(&parse_and_resolve(src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let m = lower("proc main() { x = 1; y = x + 2; print y; }");
        let cfg = m.cfg(m.module.entry);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.block(BlockId(0)).stmts.len(), 3);
        assert_eq!(cfg.block(BlockId(0)).term, Terminator::Return);
    }

    #[test]
    fn if_produces_diamond() {
        let m = lower("proc main() { read x; if (x > 0) { print 1; } else { print 2; } print 3; }");
        let cfg = m.cfg(m.module.entry);
        assert_eq!(cfg.len(), 4);
        let preds = cfg.predecessors();
        // Join block has two predecessors.
        let join = preds.iter().position(|p| p.len() == 2).unwrap();
        assert_eq!(cfg.block(BlockId::from(join)).stmts.len(), 1);
    }

    #[test]
    fn while_produces_back_edge() {
        let m = lower("proc main() { read x; while (x > 0) { x = x - 1; } }");
        let cfg = m.cfg(m.module.entry);
        let preds = cfg.predecessors();
        // The loop header has two predecessors: preheader and latch.
        assert!(preds.iter().any(|p| p.len() == 2));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        assert_eq!(rpo.len(), cfg.reachable().iter().filter(|&&r| r).count());
    }

    #[test]
    fn do_loop_with_constant_step_folds_direction_test() {
        let m = lower("proc main() { do i = 1, 10 { print i; } }");
        let cfg = m.cfg(m.module.entry);
        let header = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Terminator::Branch { cond, .. } => Some(cond.clone()),
                _ => None,
            })
            .unwrap();
        // Simple `i <= $hi` — no direction test.
        assert!(matches!(header, Expr::Binary(BinOp::Le, _, _, _)));
    }

    #[test]
    fn do_loop_with_dynamic_step_keeps_direction_test() {
        let m = lower("proc main() { read s; do i = 1, 10, s { print i; } }");
        let cfg = m.cfg(m.module.entry);
        let header = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Terminator::Branch { cond, .. } => Some(cond.clone()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(header, Expr::Binary(BinOp::Or, _, _, _)));
    }

    #[test]
    fn negative_constant_step_uses_ge() {
        let m = lower("proc main() { do i = 10, 1, 0 - 2 { print i; } }");
        // `0 - 2` is not a syntactic constant; use a true literal instead.
        let m2 = lower_module(
            &parse_and_resolve("proc main() { do i = 10, 1, 2 { print i; } }").unwrap(),
        );
        drop(m2);
        let cfg = m.cfg(m.module.entry);
        // Dynamic step: direction test present.
        let has_or = cfg.blocks.iter().any(|b| {
            matches!(
                &b.term,
                Terminator::Branch {
                    cond: Expr::Binary(BinOp::Or, _, _, _),
                    ..
                }
            )
        });
        assert!(has_or);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let m = lower("proc main() { return; print 1; }");
        let cfg = m.cfg(m.module.entry);
        let reach = cfg.reachable();
        assert!(reach.iter().any(|r| !r), "expected an unreachable block");
        // The print must live in an unreachable block.
        for (i, blk) in cfg.blocks.iter().enumerate() {
            if blk.stmts.iter().any(|s| matches!(s, CStmt::Print { .. })) {
                assert!(!reach[i]);
            }
        }
    }

    #[test]
    fn call_sites_are_dense_and_ordered() {
        let m = lower(
            "proc main() { call f(); if (1) { call f(); } else { call f(); } call f(); } proc f() { }",
        );
        let cfg = m.cfg(m.module.entry);
        assert_eq!(cfg.n_call_sites, 4);
        let mut seen = Vec::new();
        m.each_call_in(m.module.entry, |_, site, _, _| seen.push(site.index()));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn do_loop_temps_are_appended_to_symbol_table() {
        let m = lower("proc main() { do i = 1, 10, 3 { } }");
        let p = m.module.proc(m.module.entry);
        assert!(p.vars.iter().any(|v| v.name.starts_with("$do_hi")));
        assert!(p.vars.iter().any(|v| v.name.starts_with("$do_step")));
    }
}
