//! Token definitions for the FT lexer.

use crate::span::Span;
use std::fmt;

/// Reserved words of FT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `proc` — procedure definition.
    Proc,
    /// `global` — module-level variable declaration.
    Global,
    /// `array` — local array declaration.
    Array,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do` — FORTRAN-style counted loop.
    Do,
    /// `call`
    Call,
    /// `return`
    Return,
    /// `read` — consume one integer from the input stream.
    Read,
    /// `print` — append one integer to the output stream.
    Print,
}

impl Keyword {
    /// Parses an identifier-like word into a keyword, if it is one.
    // Not `FromStr`: absence of a keyword is the normal case (it's an
    // identifier), not an error.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "proc" => Keyword::Proc,
            "global" => Keyword::Global,
            "array" => Keyword::Array,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "call" => Keyword::Call,
            "return" => Keyword::Return,
            "read" => Keyword::Read,
            "print" => Keyword::Print,
            _ => return None,
        })
    }

    /// The surface spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Proc => "proc",
            Keyword::Global => "global",
            Keyword::Array => "array",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Call => "call",
            Keyword::Return => "return",
            Keyword::Read => "read",
            Keyword::Print => "print",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An integer literal; the value is stored pre-parsed.
    Int(i64),
    /// An identifier (not a keyword).
    Ident(String),
    /// A reserved word.
    Keyword(Keyword),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trips_through_spelling() {
        for kw in [
            Keyword::Proc,
            Keyword::Global,
            Keyword::Array,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::Do,
            Keyword::Call,
            Keyword::Return,
            Keyword::Read,
            Keyword::Print,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("banana"), None);
    }

    #[test]
    fn token_kinds_display_their_spelling() {
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::Int(-3).to_string(), "-3");
        assert_eq!(TokenKind::Ident("x1".into()).to_string(), "x1");
    }
}
