//! Hand-written lexer for FT.

use super::token::{Keyword, Token, TokenKind};
use crate::error::{Diagnostic, Diagnostics};
use crate::span::Span;

/// Streaming lexer over FT source text.
///
/// Usually used through the convenience function [`lex`], which drains the
/// lexer into a token vector ending in [`TokenKind::Eof`].
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'#') => self.skip_line(),
                Some(b'/') if self.peek2() == Some(b'/') => self.skip_line(),
                _ => break,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    /// Lexes the next token, or a diagnostic for an unrecognized character
    /// or malformed literal.
    pub fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia();
        let start = self.pos as u32;
        let Some(b) = self.bump() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(start, start)));
        };
        let simple =
            |kind: TokenKind, end: usize| Ok(Token::new(kind, Span::new(start, end as u32)));
        match b {
            b'0'..=b'9' => self.lex_int(start as usize),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => Ok(self.lex_word(start as usize)),
            b'+' => simple(TokenKind::Plus, self.pos),
            b'-' => simple(TokenKind::Minus, self.pos),
            b'*' => simple(TokenKind::Star, self.pos),
            b'/' => simple(TokenKind::Slash, self.pos),
            b'%' => simple(TokenKind::Percent, self.pos),
            b'(' => simple(TokenKind::LParen, self.pos),
            b')' => simple(TokenKind::RParen, self.pos),
            b'{' => simple(TokenKind::LBrace, self.pos),
            b'}' => simple(TokenKind::RBrace, self.pos),
            b'[' => simple(TokenKind::LBracket, self.pos),
            b']' => simple(TokenKind::RBracket, self.pos),
            b',' => simple(TokenKind::Comma, self.pos),
            b';' => simple(TokenKind::Semi, self.pos),
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    simple(TokenKind::Eq, self.pos)
                } else {
                    simple(TokenKind::Assign, self.pos)
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    simple(TokenKind::Ne, self.pos)
                } else {
                    simple(TokenKind::Not, self.pos)
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    simple(TokenKind::Le, self.pos)
                } else {
                    simple(TokenKind::Lt, self.pos)
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    simple(TokenKind::Ge, self.pos)
                } else {
                    simple(TokenKind::Gt, self.pos)
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    simple(TokenKind::AndAnd, self.pos)
                } else {
                    Err(Diagnostic::error(
                        "expected `&&` (single `&` is not an operator)",
                        Span::new(start, self.pos as u32),
                    ))
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    simple(TokenKind::OrOr, self.pos)
                } else {
                    Err(Diagnostic::error(
                        "expected `||` (single `|` is not an operator)",
                        Span::new(start, self.pos as u32),
                    ))
                }
            }
            other => Err(Diagnostic::error(
                format!("unrecognized character `{}`", other as char),
                Span::new(start, self.pos as u32),
            )),
        }
    }

    fn lex_int(&mut self, start: usize) -> Result<Token, Diagnostic> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let span = Span::new(start as u32, self.pos as u32);
        let text = &self.src[start..self.pos];
        match text.parse::<i64>() {
            Ok(v) => Ok(Token::new(TokenKind::Int(v), span)),
            Err(_) => Err(Diagnostic::error(
                format!("integer literal `{text}` out of 64-bit range"),
                span,
            )),
        }
    }

    fn lex_word(&mut self, start: usize) -> Token {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let span = Span::new(start as u32, self.pos as u32);
        let text = &self.src[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => Token::new(TokenKind::Keyword(kw), span),
            None => Token::new(TokenKind::Ident(text.to_owned()), span),
        }
    }
}

/// Lexes `src` into a full token vector ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Collects every lexical error (unrecognized characters, oversized
/// literals) into one [`Diagnostics`] value; recovery skips the bad
/// character and continues.
///
/// ```
/// use ipcp_ir::lang::{lex, TokenKind};
/// let toks = lex("x = 41 + 1;")?;
/// assert_eq!(toks.len(), 7); // x = 41 + 1 ; <eof>
/// assert_eq!(toks[2].kind, TokenKind::Int(41));
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    let mut diags = Diagnostics::new();
    loop {
        match lexer.next_token() {
            Ok(tok) => {
                let done = tok.kind == TokenKind::Eof;
                tokens.push(tok);
                if done {
                    break;
                }
            }
            Err(d) => diags.push(d),
        }
    }
    diags.into_result(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_all_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("+ - * / % ( ) { } [ ] , ; = == != < <= > >= && || !"),
            vec![
                Plus, Minus, Star, Slash, Percent, LParen, RParen, LBrace, RBrace, LBracket,
                RBracket, Comma, Semi, Assign, Eq, Ne, Lt, Le, Gt, Ge, AndAnd, OrOr, Not, Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("do doit i1 _x proc process"),
            vec![
                Keyword(super::Keyword::Do),
                Ident("doit".into()),
                Ident("i1".into()),
                Ident("_x".into()),
                Keyword(super::Keyword::Proc),
                Ident("process".into()),
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment to eol\n# hash comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn huge_literal_is_an_error() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.has_errors());
        assert!(err.to_string().contains("out of 64-bit range"));
    }

    #[test]
    fn bad_character_reports_and_recovers() {
        let err = lex("a $ b ?").unwrap_err();
        assert_eq!(err.len(), 2);
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn minus_then_int_is_two_tokens() {
        assert_eq!(
            kinds("-5"),
            vec![TokenKind::Minus, TokenKind::Int(5), TokenKind::Eof]
        );
    }
}
