//! The FT surface language: lexer, parser, AST, and pretty-printer.
//!
//! FT is a FORTRAN-77-flavoured integer language with modern braces syntax.
//! A program is a sequence of `global` declarations and `proc` definitions;
//! execution starts at `proc main()`. The grammar (EBNF):
//!
//! ```text
//! program     := item*
//! item        := "global" IDENT ("[" INT "]")? ";"
//!              | "proc" IDENT "(" (IDENT ("," IDENT)*)? ")" block
//! block       := "{" stmt* "}"
//! stmt        := "array" IDENT "[" INT "]" ";"
//!              | IDENT "=" expr ";"
//!              | IDENT "[" expr "]" "=" expr ";"
//!              | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!              | "while" "(" expr ")" block
//!              | "do" IDENT "=" expr "," expr ("," expr)? block
//!              | "call" IDENT "(" (arg ("," arg)*)? ")" ";"
//!              | "return" ";"
//!              | "read" IDENT ";"
//!              | "print" expr ";"
//! arg         := expr                        -- a bare IDENT is by-reference
//! expr        := or-expr with C-like precedence:
//!                 ||  &&  (== !=)  (< <= > >=)  (+ -)  (* / %)  (unary - !)
//! atom        := INT | IDENT | IDENT "[" expr "]" | "(" expr ")"
//! ```
//!
//! All values are 64-bit signed integers; comparisons and logical operators
//! yield `0` or `1`, and any nonzero value is truthy in conditions.
//! Comments run from `//` or `#` to end of line (`#` mirrors FORTRAN `C`
//! comment cards when transliterating old codes).

pub mod ast;
mod lexer;
mod parser;
pub mod pretty;
mod token;

pub use ast::*;
pub use lexer::{lex, Lexer};
pub use parser::{parse_expr, parse_program};
pub use token::{Keyword, Token, TokenKind};
