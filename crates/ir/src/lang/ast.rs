//! Parsed (unresolved) abstract syntax tree for FT.
//!
//! Names are plain strings at this stage; [`crate::program::resolve`] turns
//! the tree into the checked, id-based [`crate::program::Module`] form.

use crate::span::Span;
use std::fmt;

/// A whole parsed source file.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Module-level variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Procedure definitions, in source order.
    pub procs: Vec<ProcDecl>,
}

/// `global name;` or `global name[len];`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Declared name.
    pub name: String,
    /// `Some(len)` when the global is an array of `len` cells.
    pub array_len: Option<i64>,
    /// Declaration site.
    pub span: Span,
}

/// `proc name(p1, p2, ...) { ... }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcDecl {
    /// Procedure name.
    pub name: String,
    /// Formal parameter names, in order.
    pub params: Vec<(String, Span)>,
    /// Procedure body.
    pub body: Block,
    /// Span of the header (name + parameter list).
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One FT statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `array name[len];` — declares a procedure-local array.
    ArrayDecl {
        /// Declared name.
        name: String,
        /// Number of cells.
        len: i64,
        /// Statement span.
        span: Span,
    },
    /// `name = expr;`
    Assign {
        /// Target scalar.
        name: String,
        /// Value stored.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `name[index] = expr;`
    Store {
        /// Target array.
        name: String,
        /// Cell index.
        index: Expr,
        /// Value stored.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }` — `else_blk` may be empty.
    If {
        /// Branch condition (nonzero = taken).
        cond: Expr,
        /// Then-branch.
        then_blk: Block,
        /// Else-branch (empty block when absent).
        else_blk: Block,
        /// Statement span.
        span: Span,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition (nonzero = continue).
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `do var = lo, hi [, step] { .. }` — FORTRAN counted loop.
    ///
    /// `hi` and `step` are evaluated once on entry; the loop runs while
    /// `var <= hi` for positive step, `var >= hi` for negative step.
    Do {
        /// Induction variable.
        var: String,
        /// Initial value.
        lo: Expr,
        /// Inclusive bound, evaluated once.
        hi: Expr,
        /// Step (defaults to `1`), evaluated once.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `call proc(arg, ...);`
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments; a bare scalar variable is passed by reference.
        args: Vec<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `return;`
    Return {
        /// Statement span.
        span: Span,
    },
    /// `read name;` — consume one input integer into a scalar.
    Read {
        /// Target scalar.
        name: String,
        /// Statement span.
        span: Span,
    },
    /// `print expr;`
    Print {
        /// Printed value.
        value: Expr,
        /// Statement span.
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::ArrayDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Return { span }
            | Stmt::Read { span, .. }
            | Stmt::Print { span, .. } => *span,
        }
    }
}

/// Binary operators, in FT surface syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` wrapping-free 64-bit addition (overflow is a runtime error).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` truncating toward zero; division by zero is a runtime error.
    Div,
    /// `%` remainder with the sign of the dividend.
    Rem,
    /// `==` yields 0/1.
    Eq,
    /// `!=` yields 0/1.
    Ne,
    /// `<` yields 0/1.
    Lt,
    /// `<=` yields 0/1.
    Le,
    /// `>` yields 0/1.
    Gt,
    /// `>=` yields 0/1.
    Ge,
    /// `&&` logical and over truthiness, yields 0/1 (non-short-circuit).
    And,
    /// `||` logical or over truthiness, yields 0/1 (non-short-circuit).
    Or,
}

impl BinOp {
    /// Surface spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding strength for the pretty-printer (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not: `!x` is 1 when `x == 0`, else 0.
    Not,
}

impl UnOp {
    /// Surface spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One FT expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const {
        /// The literal value.
        value: i64,
        /// Source span.
        span: Span,
    },
    /// Scalar variable use.
    Var {
        /// The referenced name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// Array element load `name[index]`.
    Load {
        /// The referenced array.
        name: String,
        /// Cell index.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const { span, .. }
            | Expr::Var { span, .. }
            | Expr::Load { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }

    /// Convenience constructor for a literal with a dummy span.
    pub fn lit(value: i64) -> Expr {
        Expr::Const {
            value,
            span: Span::dummy(),
        }
    }

    /// Convenience constructor for a variable use with a dummy span.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var {
            name: name.into(),
            span: Span::dummy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_orders_or_below_mul() {
        assert!(BinOp::Or.precedence() < BinOp::And.precedence());
        assert!(BinOp::And.precedence() < BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() < BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() < BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() < BinOp::Mul.precedence());
    }

    #[test]
    fn stmt_span_is_reachable_for_all_variants() {
        let s = Stmt::Return {
            span: Span::new(1, 8),
        };
        assert_eq!(s.span(), Span::new(1, 8));
    }
}
