//! Pretty-printer: renders a parsed [`Program`] back to FT source text.
//!
//! The printer is exact enough that `parse(pretty(parse(src)))` equals
//! `parse(src)` up to spans — a property exercised by the round-trip tests
//! in this module and by proptest in the crate's integration tests.

use super::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as FT source.
///
/// ```
/// use ipcp_ir::lang::{parse_program, pretty};
/// let src = "global n;\n\nproc main() {\n    n = 1 + 2 * 3;\n}\n";
/// let prog = parse_program(src)?;
/// assert_eq!(pretty::program(&prog), src);
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        match g.array_len {
            Some(len) => {
                let _ = writeln!(out, "global {}[{len}];", g.name);
            }
            None => {
                let _ = writeln!(out, "global {};", g.name);
            }
        }
    }
    for (i, proc) in p.procs.iter().enumerate() {
        if i > 0 || !p.globals.is_empty() {
            out.push('\n');
        }
        let params: Vec<&str> = proc.params.iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, "proc {}({}) {{", proc.name, params.join(", "));
        block_body(&mut out, &proc.body, 1);
        out.push_str("}\n");
    }
    out
}

/// Renders a single statement at the given indent depth.
pub fn stmt(s: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    stmt_into(&mut out, s, indent);
    out
}

/// Renders an expression with minimal parentheses.
pub fn expr(e: &Expr) -> String {
    let mut out = String::new();
    expr_prec(&mut out, e, 0);
    out
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn block_body(out: &mut String, b: &Block, indent: usize) {
    for s in &b.stmts {
        stmt_into(out, s, indent);
    }
}

fn stmt_into(out: &mut String, s: &Stmt, indent: usize) {
    pad(out, indent);
    match s {
        Stmt::ArrayDecl { name, len, .. } => {
            let _ = writeln!(out, "array {name}[{len}];");
        }
        Stmt::Assign { name, value, .. } => {
            let _ = writeln!(out, "{name} = {};", expr(value));
        }
        Stmt::Store {
            name, index, value, ..
        } => {
            let _ = writeln!(out, "{name}[{}] = {};", expr(index), expr(value));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            block_body(out, then_blk, indent + 1);
            pad(out, indent);
            if else_blk.stmts.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                block_body(out, else_blk, indent + 1);
                pad(out, indent);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            block_body(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            match step {
                Some(st) => {
                    let _ = writeln!(
                        out,
                        "do {var} = {}, {}, {} {{",
                        expr(lo),
                        expr(hi),
                        expr(st)
                    );
                }
                None => {
                    let _ = writeln!(out, "do {var} = {}, {} {{", expr(lo), expr(hi));
                }
            }
            block_body(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::Call { callee, args, .. } => {
            let rendered: Vec<String> = args.iter().map(expr).collect();
            let _ = writeln!(out, "call {callee}({});", rendered.join(", "));
        }
        Stmt::Return { .. } => out.push_str("return;\n"),
        Stmt::Read { name, .. } => {
            let _ = writeln!(out, "read {name};");
        }
        Stmt::Print { value, .. } => {
            let _ = writeln!(out, "print {};", expr(value));
        }
    }
}

/// Prints `e`, parenthesizing when its top operator binds no tighter than
/// `min_prec` requires.
fn expr_prec(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Const { value, .. } => {
            if *value < 0 {
                // Negative literals only arise from folded ASTs; print them
                // parenthesized so `a - -1` round-trips as `a - (-1)`.
                let _ = write!(out, "({value})");
            } else {
                let _ = write!(out, "{value}");
            }
        }
        Expr::Var { name, .. } => out.push_str(name),
        Expr::Load { name, index, .. } => {
            let _ = write!(out, "{name}[");
            expr_prec(out, index, 0);
            out.push(']');
        }
        Expr::Unary { op, operand, .. } => {
            // Unary binds tighter than any binary tier, so a binary
            // operand self-parenthesizes at min_prec 7.
            out.push_str(op.as_str());
            expr_prec(out, operand, 7);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = op.precedence();
            let needs_parens = prec < min_prec;
            if needs_parens {
                out.push('(');
            }
            expr_prec(out, lhs, prec);
            let _ = write!(out, " {} ", op.as_str());
            // Left-associative: the right operand must bind strictly tighter.
            expr_prec(out, rhs, prec + 1);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{parse_expr, parse_program};

    fn strip_spans_eq(a: &Program, b: &Program) -> bool {
        // Compare via pretty-printing, which ignores spans by construction.
        program(a) == program(b)
    }

    #[test]
    fn expr_round_trip_preserves_structure() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a - b - c",
            "a - (b - c)",
            "-x * y",
            "-(x * y)",
            "!(a == b) && c < d || e",
            "a[i + 1] * 2",
            "x % 3 == 0",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = expr(&e1);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(expr(&e2), printed, "round-trip failed for `{src}`");
        }
    }

    #[test]
    fn program_round_trip() {
        let src = r#"
            global n;
            global tbl[4];
            proc main() {
                n = 3;
                call f(n, 2 + n);
                if (n > 0) { print n; } else { read n; }
                do i = 1, n, 2 { tbl[i] = i * i; }
                while (n < 10) { n = n + 1; }
                return;
            }
            proc f(a, b) {
                array t[2];
                t[0] = a;
                print t[0] + b;
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert!(strip_spans_eq(&p1, &p2), "pretty output:\n{printed}");
        // And printing is idempotent.
        assert_eq!(program(&p2), printed);
    }

    #[test]
    fn negative_literal_is_reparseable() {
        use crate::lang::ast::{BinOp, Expr};
        let e = Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(Expr::var("a")),
            rhs: Box::new(Expr::lit(-1)),
            span: crate::span::Span::dummy(),
        };
        let printed = expr(&e);
        assert_eq!(printed, "a - (-1)");
        parse_expr(&printed).unwrap();
    }

    #[test]
    fn unary_over_binary_parenthesizes() {
        let e = parse_expr("-(a + b)").unwrap();
        assert_eq!(expr(&e), "-(a + b)");
    }
}
