//! Recursive-descent parser for FT.

use super::ast::*;
use super::lexer::lex;
use super::token::{Keyword, Token, TokenKind};
use crate::error::Diagnostics;
use crate::span::Span;

/// Parses a full FT program.
///
/// # Errors
///
/// Returns accumulated [`Diagnostics`] on any lexical or syntactic error.
/// The parser recovers at item boundaries (it skips to the next `proc` /
/// `global` keyword) so multiple errors can be reported in one pass.
///
/// ```
/// use ipcp_ir::lang::parse_program;
/// let prog = parse_program("global g; proc main() { g = 1; }")?;
/// assert_eq!(prog.globals.len(), 1);
/// assert_eq!(prog.procs.len(), 1);
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    let program = parser.program();
    parser.diags.into_result(program)
}

/// Parses a single expression (used by tests and the REPL-style examples).
///
/// # Errors
///
/// Returns diagnostics if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostics> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr();
    if parser.peek_kind() != &TokenKind::Eof {
        parser
            .diags
            .error("trailing input after expression", parser.peek_span());
    }
    match expr {
        Some(e) => parser.diags.into_result(e),
        None => Err(parser.diags),
    }
}

/// Maximum nesting depth of expressions and blocks. Recursive descent
/// uses the host stack, so unbounded nesting (e.g. ten thousand open
/// parentheses) would overflow it; past this depth the parser reports a
/// diagnostic instead of recursing.
const MAX_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    diags: Diagnostics,
}

impl Parser {
    fn new(mut tokens: Vec<Token>) -> Self {
        // `peek` indexes `tokens[..len]` unconditionally; guarantee the
        // vector is non-empty and Eof-terminated even for callers that
        // bypass `lex` (which always appends Eof).
        if tokens.last().is_none_or(|t| t.kind != TokenKind::Eof) {
            let at = tokens.last().map_or(0, |t| t.span.end);
            tokens.push(Token::new(TokenKind::Eof, Span::new(at, at)));
        }
        Parser {
            tokens,
            pos: 0,
            depth: 0,
            diags: Diagnostics::new(),
        }
    }

    /// Charges one nesting level; errors (once per offending branch) when
    /// the source nests deeper than [`MAX_DEPTH`].
    fn enter(&mut self, what: &str) -> bool {
        if self.depth >= MAX_DEPTH {
            self.diags.error(
                format!("{what} nesting exceeds the supported depth ({MAX_DEPTH})"),
                self.peek_span(),
            );
            false
        } else {
            self.depth += 1;
            true
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Option<Token> {
        if self.at(kind) {
            Some(self.bump())
        } else {
            self.diags.error(
                format!("expected `{kind}`, found `{}`", self.peek_kind()),
                self.peek_span(),
            );
            None
        }
    }

    fn expect_ident(&mut self) -> Option<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Some((name, span))
            }
            other => {
                self.diags.error(
                    format!("expected identifier, found `{other}`"),
                    self.peek_span(),
                );
                None
            }
        }
    }

    fn expect_int(&mut self) -> Option<(i64, Span)> {
        match *self.peek_kind() {
            TokenKind::Int(v) => {
                let span = self.bump().span;
                Some((v, span))
            }
            ref other => {
                self.diags.error(
                    format!("expected integer literal, found `{other}`"),
                    self.peek_span(),
                );
                None
            }
        }
    }

    /// Skip forward to the start of the next top-level item (error recovery).
    fn recover_to_item(&mut self) {
        while !matches!(
            self.peek_kind(),
            TokenKind::Eof
                | TokenKind::Keyword(Keyword::Proc)
                | TokenKind::Keyword(Keyword::Global)
        ) {
            self.bump();
        }
    }

    fn program(&mut self) -> Program {
        let mut program = Program::default();
        loop {
            match self.peek_kind() {
                TokenKind::Eof => break,
                TokenKind::Keyword(Keyword::Global) => {
                    if let Some(g) = self.global_decl() {
                        program.globals.push(g);
                    } else {
                        self.recover_to_item();
                    }
                }
                TokenKind::Keyword(Keyword::Proc) => {
                    if let Some(p) = self.proc_decl() {
                        program.procs.push(p);
                    } else {
                        self.recover_to_item();
                    }
                }
                other => {
                    self.diags.error(
                        format!("expected `proc` or `global`, found `{other}`"),
                        self.peek_span(),
                    );
                    self.bump();
                    self.recover_to_item();
                }
            }
        }
        program
    }

    fn global_decl(&mut self) -> Option<GlobalDecl> {
        let start = self.bump().span; // `global`
        let (name, name_span) = self.expect_ident()?;
        let array_len = if self.eat(&TokenKind::LBracket) {
            let (len, len_span) = self.expect_int()?;
            if len <= 0 {
                self.diags.error(
                    format!("array length must be positive, got {len}"),
                    len_span,
                );
            }
            self.expect(&TokenKind::RBracket)?;
            Some(len)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Some(GlobalDecl {
            name,
            array_len,
            span: start.merge(name_span).merge(end),
        })
    }

    fn proc_decl(&mut self) -> Option<ProcDecl> {
        let start = self.bump().span; // `proc`
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (p, span) = self.expect_ident()?;
                params.push((p, span));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let header_end = self.expect(&TokenKind::RParen)?.span;
        let body = self.block()?;
        Some(ProcDecl {
            name,
            params,
            body,
            span: start.merge(header_end),
        })
    }

    fn block(&mut self) -> Option<Block> {
        if !self.enter("block") {
            return None;
        }
        let block = self.block_inner();
        self.leave();
        block
    }

    fn block_inner(&mut self) -> Option<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => {
                    // Recover within the block: skip to just after the next `;`
                    // or stop at a brace.
                    loop {
                        match self.peek_kind() {
                            TokenKind::Semi => {
                                self.bump();
                                break;
                            }
                            TokenKind::RBrace | TokenKind::LBrace | TokenKind::Eof => break,
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Some(Block { stmts })
    }

    fn stmt(&mut self) -> Option<Stmt> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Array) => self.array_decl(),
            TokenKind::Keyword(Keyword::If) => self.if_stmt(),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(),
            TokenKind::Keyword(Keyword::Do) => self.do_stmt(),
            TokenKind::Keyword(Keyword::Call) => self.call_stmt(),
            TokenKind::Keyword(Keyword::Return) => {
                let start = self.bump().span;
                let end = self.expect(&TokenKind::Semi)?.span;
                Some(Stmt::Return {
                    span: start.merge(end),
                })
            }
            TokenKind::Keyword(Keyword::Read) => {
                let start = self.bump().span;
                let (name, _) = self.expect_ident()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Some(Stmt::Read {
                    name,
                    span: start.merge(end),
                })
            }
            TokenKind::Keyword(Keyword::Print) => {
                let start = self.bump().span;
                let value = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Some(Stmt::Print {
                    value,
                    span: start.merge(end),
                })
            }
            TokenKind::Ident(_) => self.assign_or_store(),
            other => {
                self.diags.error(
                    format!("expected statement, found `{other}`"),
                    self.peek_span(),
                );
                // Consume the offending token: the caller's recovery loop
                // stops *before* braces, so leaving it in place would spin
                // forever on a stray `{` here.
                self.bump();
                None
            }
        }
    }

    fn array_decl(&mut self) -> Option<Stmt> {
        let start = self.bump().span; // `array`
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBracket)?;
        let (len, len_span) = self.expect_int()?;
        if len <= 0 {
            self.diags.error(
                format!("array length must be positive, got {len}"),
                len_span,
            );
        }
        self.expect(&TokenKind::RBracket)?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Some(Stmt::ArrayDecl {
            name,
            len,
            span: start.merge(end),
        })
    }

    fn if_stmt(&mut self) -> Option<Stmt> {
        let start = self.bump().span; // `if`
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::Keyword(Keyword::Else)) {
            if self.at_kw(Keyword::If) {
                // `else if` chains desugar to a one-statement else block.
                let nested = self.if_stmt()?;
                Block {
                    stmts: vec![nested],
                }
            } else {
                self.block()?
            }
        } else {
            Block::default()
        };
        Some(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span: start,
        })
    }

    fn while_stmt(&mut self) -> Option<Stmt> {
        let start = self.bump().span; // `while`
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Some(Stmt::While {
            cond,
            body,
            span: start,
        })
    }

    fn do_stmt(&mut self) -> Option<Stmt> {
        let start = self.bump().span; // `do`
        let (var, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        let body = self.block()?;
        Some(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            span: start,
        })
    }

    fn call_stmt(&mut self) -> Option<Stmt> {
        let start = self.bump().span; // `call`
        let (callee, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Some(Stmt::Call {
            callee,
            args,
            span: start.merge(end),
        })
    }

    fn assign_or_store(&mut self) -> Option<Stmt> {
        let (name, name_span) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Assign)?;
            let value = self.expr()?;
            let end = self.expect(&TokenKind::Semi)?.span;
            Some(Stmt::Store {
                name,
                index,
                value,
                span: name_span.merge(end),
            })
        } else {
            self.expect(&TokenKind::Assign)?;
            let value = self.expr()?;
            let end = self.expect(&TokenKind::Semi)?.span;
            Some(Stmt::Assign {
                name,
                value,
                span: name_span.merge(end),
            })
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Option<Expr> {
        if !self.enter("expression") {
            return None;
        }
        let e = self.or_expr();
        self.leave();
        e
    }

    fn binary_tier(
        &mut self,
        next: fn(&mut Self) -> Option<Expr>,
        table: &[(TokenKind, BinOp)],
    ) -> Option<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.at(tok) {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span().merge(rhs.span());
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        span,
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Some(lhs)
    }

    fn or_expr(&mut self) -> Option<Expr> {
        self.binary_tier(Self::and_expr, &[(TokenKind::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> Option<Expr> {
        self.binary_tier(Self::eq_expr, &[(TokenKind::AndAnd, BinOp::And)])
    }

    fn eq_expr(&mut self) -> Option<Expr> {
        self.binary_tier(
            Self::rel_expr,
            &[(TokenKind::Eq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn rel_expr(&mut self) -> Option<Expr> {
        self.binary_tier(
            Self::add_expr,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn add_expr(&mut self) -> Option<Expr> {
        self.binary_tier(
            Self::mul_expr,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        self.binary_tier(
            Self::unary_expr,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        // Unary operators recurse without passing through `expr`; charge
        // depth here too so `----…x` cannot overflow the stack.
        if !self.enter("expression") {
            return None;
        }
        let e = self.unary_expr_inner();
        self.leave();
        e
    }

    fn unary_expr_inner(&mut self) -> Option<Expr> {
        if self.at(&TokenKind::Minus) {
            let start = self.bump().span;
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span());
            // Fold negated literals so `-5` is a literal constant (as in
            // FORTRAN): the literal jump function and the constant-step
            // `do` lowering both depend on seeing it syntactically.
            if let Expr::Const { value, .. } = operand {
                if let Some(neg) = value.checked_neg() {
                    return Some(Expr::Const { value: neg, span });
                }
            }
            return Some(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        if self.at(&TokenKind::Not) {
            let start = self.bump().span;
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span());
            return Some(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Option<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(value) => {
                let span = self.bump().span;
                Some(Expr::Const { value, span })
            }
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    let end = self.expect(&TokenKind::RBracket)?.span;
                    Some(Expr::Load {
                        name,
                        index: Box::new(index),
                        span: span.merge(end),
                    })
                } else {
                    Some(Expr::Var { name, span })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Some(e)
            }
            other => {
                self.diags.error(
                    format!("expected expression, found `{other}`"),
                    self.peek_span(),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).expect("program should parse")
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse_ok("proc main() { }");
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].name, "main");
        assert!(p.procs[0].params.is_empty());
        assert!(p.procs[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_globals_scalar_and_array() {
        let p = parse_ok("global n; global buf[16]; proc main() { }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].array_len, None);
        assert_eq!(p.globals[1].array_len, Some(16));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected +, got {other:?}"),
        }
    }

    #[test]
    fn comparison_below_arithmetic() {
        let e = parse_expr("a + 1 < b * 2").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn logical_lowest() {
        let e = parse_expr("a < 1 && b > 2 || c == 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn unary_stacks() {
        let e = parse_expr("--x").unwrap();
        match e {
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => {
                assert!(matches!(*operand, Expr::Unary { op: UnOp::Neg, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_do_loop_with_step() {
        let p = parse_ok("proc main() { do i = 1, 10, 2 { print i; } }");
        match &p.procs[0].body.stmts[0] {
            Stmt::Do {
                var, step, body, ..
            } => {
                assert_eq!(var, "i");
                assert!(step.is_some());
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_do_loop_without_step() {
        let p = parse_ok("proc main() { do i = 1, 10 { } }");
        assert!(matches!(
            &p.procs[0].body.stmts[0],
            Stmt::Do { step: None, .. }
        ));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_ok("proc main() { if (a == 1) { } else if (a == 2) { } else { print 3; } }");
        match &p.procs[0].body.stmts[0] {
            Stmt::If { else_blk, .. } => {
                assert_eq!(else_blk.stmts.len(), 1);
                assert!(matches!(else_blk.stmts[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_calls_with_mixed_args() {
        let p = parse_ok("proc main() { call f(x, 3, y + 1, a[2]); } proc f(a, b, c, d) { }");
        match &p.procs[0].body.stmts[0] {
            Stmt::Call { callee, args, .. } => {
                assert_eq!(callee, "f");
                assert_eq!(args.len(), 4);
                assert!(matches!(args[0], Expr::Var { .. }));
                assert!(matches!(args[1], Expr::Const { .. }));
                assert!(matches!(args[2], Expr::Binary { .. }));
                assert!(matches!(args[3], Expr::Load { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_array_store_and_load() {
        let p = parse_ok("proc main() { array a[8]; a[0] = a[1] + 1; }");
        assert!(matches!(
            p.procs[0].body.stmts[0],
            Stmt::ArrayDecl { len: 8, .. }
        ));
        assert!(matches!(p.procs[0].body.stmts[1], Stmt::Store { .. }));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse_program("proc main() { x = 1 }").is_err());
    }

    #[test]
    fn reports_multiple_errors_with_recovery() {
        let err = parse_program("proc main() { x = ; y = 1 + ; }").unwrap_err();
        assert!(err.len() >= 2, "expected >=2 errors, got: {err}");
    }

    #[test]
    fn zero_length_array_rejected() {
        assert!(parse_program("proc main() { array a[0]; }").is_err());
    }

    #[test]
    fn stray_top_level_tokens_are_reported() {
        let err = parse_program("42 proc main() { }").unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn parenthesized_expressions_override_precedence() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stray_brace_after_failed_statement_terminates() {
        // Regression: recovery used to stop *before* a `{` without
        // consuming it, then re-enter `stmt` on the same token forever.
        let err = parse_program("proc main() { x = { } }").unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn deep_parentheses_diagnose_instead_of_overflowing() {
        let src = format!(
            "proc main() {{ x = {}1{}; }}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let err = parse_program(&src).unwrap_err();
        assert!(err.to_string().contains("nesting exceeds"), "{err}");
    }

    #[test]
    fn deep_unary_chains_diagnose_instead_of_overflowing() {
        let src = format!("proc main() {{ x = {}1; }}", "-".repeat(10_000));
        let err = parse_program(&src).unwrap_err();
        assert!(err.to_string().contains("nesting exceeds"), "{err}");
    }

    #[test]
    fn deep_blocks_diagnose_instead_of_overflowing() {
        let src = format!(
            "proc main() {{ {} print 1; {} }}",
            "if (1) {".repeat(10_000),
            "}".repeat(10_000)
        );
        let err = parse_program(&src).unwrap_err();
        assert!(err.to_string().contains("nesting exceeds"), "{err}");
    }

    #[test]
    fn reasonable_nesting_stays_within_the_cap() {
        let src = format!(
            "proc main() {{ x = {}1{}; }}",
            "(".repeat(100),
            ")".repeat(100)
        );
        assert!(parse_program(&src).is_ok());
        let src = format!(
            "proc main() {{ {} print 1; {} }}",
            "if (1) {".repeat(100),
            "}".repeat(100)
        );
        assert!(parse_program(&src).is_ok());
    }

    #[test]
    fn relational_chain_is_left_associative() {
        // `a - b - c` is `(a - b) - c`.
        let e = parse_expr("a - b - c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Sub,
                lhs,
                rhs,
                ..
            } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Sub, .. }));
                assert!(matches!(*rhs, Expr::Var { .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
// (kept at module end to avoid renumbering: regression tests for the
// negative-literal fold)
#[cfg(test)]
mod neg_literal_tests {
    use super::*;

    #[test]
    fn negative_literals_fold_to_constants() {
        assert!(matches!(
            parse_expr("-5").unwrap(),
            Expr::Const { value: -5, .. }
        ));
        assert!(matches!(
            parse_expr("--5").unwrap(),
            Expr::Const { value: 5, .. }
        ));
        // Folding respects precedence: `-5 * 2` is `(-5) * 2`.
        match parse_expr("-5 * 2").unwrap() {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(*lhs, Expr::Const { value: -5, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negation_of_variables_stays_unary() {
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::Unary { op: UnOp::Neg, .. }
        ));
    }

    #[test]
    fn negative_literal_call_arguments_are_literal() {
        use crate::parse_and_resolve;
        use crate::program::each_call;
        let m = parse_and_resolve("proc main() { call f(-7); } proc f(a) { print a; }").unwrap();
        let main = m.proc(m.entry);
        each_call(&main.body, &mut |_, args, _| {
            assert_eq!(args[0].literal(), Some(-7));
        });
    }

    #[test]
    fn negative_constant_do_step_folds_direction() {
        use crate::{lower_module, parse_and_resolve};
        let m = lower_module(
            &parse_and_resolve("proc main() { do i = 10, 1, -2 { print i; } }").unwrap(),
        );
        let cfg = m.cfg(m.module.entry);
        let header = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                crate::cfg::Terminator::Branch { cond, .. } => Some(cond.clone()),
                _ => None,
            })
            .unwrap();
        // Constant negative step: plain `i >= $hi`, no direction test.
        assert!(matches!(
            header,
            crate::program::Expr::Binary(BinOp::Ge, _, _, _)
        ));
        // And it executes correctly.
        let out = crate::interp::run_module(
            &parse_and_resolve("proc main() { do i = 10, 1, -2 { print i; } }").unwrap(),
            &[],
            &crate::interp::ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(out.output, vec![10, 8, 6, 4, 2]);
    }
}
