//! A dense string interner for identifier paths in hot analysis code.
//!
//! The analysis crates index almost everything by dense ids (`ProcId`,
//! `VarId`, slot index), but a few hot paths still carry `String`s:
//! per-edge caller names, per-query slot names, report rows. [`Names`]
//! gives those paths a `u32` handle ([`NameId`]) that is `Copy`, cheap to
//! compare, and resolves back to `&str` without allocating.
//!
//! Interning the same string twice returns the same id, so equality on
//! [`NameId`] is equality on the underlying string *within one interner*.
//! Ids from different interners are not comparable; keep one interner per
//! module-scoped table (e.g. [`crate::program::SlotLayout`]).

use std::collections::HashMap;

/// A dense handle to an interned string. `Copy`, 4 bytes, ordered by
/// interning order (not lexicographically).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The id as a dense `usize` index (0-based interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: `&str` in, dense [`NameId`] out, `&str` back on
/// [`Names::resolve`] with no allocation.
#[derive(Clone, Debug, Default)]
pub struct Names {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, NameId>,
}

impl Names {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense id. Idempotent: the same string
    /// always maps to the same id.
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = NameId(self.strings.len() as u32);
        self.strings.push(s.into());
        self.index.insert(s.into(), id);
        id
    }

    /// Looks up `s` without interning it.
    pub fn get(&self, s: &str) -> Option<NameId> {
        self.index.get(s).copied()
    }

    /// The string behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

impl PartialEq for Names {
    /// Two interners are equal when they intern the same strings in the
    /// same order (ids then agree across both).
    fn eq(&self, other: &Self) -> bool {
        self.strings == other.strings
    }
}

impl Eq for Names {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut names = Names::new();
        let a = names.intern("alpha");
        let b = names.intern("beta");
        let a2 = names.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(names.len(), 2);
        assert_eq!(names.resolve(a), "alpha");
        assert_eq!(names.resolve(b), "beta");
        assert_eq!(names.get("beta"), Some(b));
        assert_eq!(names.get("gamma"), None);
    }

    #[test]
    fn equality_is_content_and_order() {
        let mut x = Names::new();
        let mut y = Names::new();
        x.intern("a");
        x.intern("b");
        y.intern("a");
        assert_ne!(x, y);
        y.intern("b");
        assert_eq!(x, y);
        let mut z = Names::new();
        z.intern("b");
        z.intern("a");
        assert_ne!(x, z);
    }
}
