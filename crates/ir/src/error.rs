//! Diagnostics produced by the lexer, parser, and resolver.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A non-fatal observation (e.g. an unused procedure).
    Warning,
    /// A fatal problem; the compilation unit cannot be used.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single located message from the front end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the problem is.
    pub severity: Severity,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Source location of the offending construct.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with `line:col` resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{}:{line}:{col}: {}", self.severity, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.severity, self.span, self.message)
    }
}

/// A non-empty collection of diagnostics, used as the front end error type.
///
/// ```
/// use ipcp_ir::parse_and_resolve;
/// let err = parse_and_resolve("proc main() { x = ; }").unwrap_err();
/// assert!(err.has_errors());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Records an error message at `span`.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Records a warning message at `span`.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Whether any [`Severity::Error`] diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether no diagnostics at all were recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Iterates over the recorded diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diags.iter()
    }

    /// Converts `self` into `Err(self)` when errors are present, else `Ok(value)`.
    pub fn into_result<T>(self, value: T) -> Result<T, Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(value)
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diags.is_empty() {
            return write!(f, "no diagnostics");
        }
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { diags: vec![d] }
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.diags.extend(iter);
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_do_not_count_as_errors() {
        let mut ds = Diagnostics::new();
        ds.warning("unused procedure", Span::dummy());
        assert!(!ds.has_errors());
        assert!(!ds.is_empty());
        assert!(ds.into_result(7).is_ok());
    }

    #[test]
    fn errors_fail_the_result() {
        let mut ds = Diagnostics::new();
        ds.error("bad", Span::new(1, 2));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 1);
        assert!(ds.into_result(()).is_err());
    }

    #[test]
    fn display_is_never_empty() {
        let ds = Diagnostics::new();
        assert_eq!(ds.to_string(), "no diagnostics");
        let ds: Diagnostics = Diagnostic::error("oops", Span::new(0, 1)).into();
        assert!(ds.to_string().contains("oops"));
    }

    #[test]
    fn render_resolves_line_and_column() {
        let src = "a\nbb\nccc";
        let d = Diagnostic::error("boom", Span::new(5, 6));
        assert_eq!(d.render(src), "error:3:1: boom");
    }
}
