//! # ipcp-ir — the FT language and IR substrate
//!
//! This crate provides everything "below" the interprocedural constant
//! propagation analysis of the companion `ipcp` crate:
//!
//! * **FT**, a small FORTRAN-77-flavoured imperative language (integer
//!   scalars, one-dimensional arrays, global `COMMON`-style variables,
//!   by-reference procedure parameters, `do`/`while`/`if` control flow) —
//!   see [`lang`] for the lexer, parser, AST and pretty-printer;
//! * a resolved, name-checked module representation ([`program`]);
//! * a per-procedure control-flow graph ([`mod@cfg`]) together with the
//!   AST-to-CFG lowering used by every analysis in the workspace;
//! * two reference interpreters ([`interp`]) — one over the resolved AST
//!   and one over the CFG — which serve as the dynamic-semantics ground
//!   truth for soundness testing of the static analyses.
//!
//! The original 1986/1993 studies ran on FORTRAN under the ParaScope
//! infrastructure; FT is the substitute substrate (see `DESIGN.md` at the
//! workspace root). The language was chosen so that exactly the features
//! the analysis cares about exist: integer constants that flow through
//! literal arguments, locally propagated values, pass-through parameters,
//! polynomial expressions over formals, by-reference side effects (MOD
//! sets) and constants returned through parameters and globals.
//!
//! ## Quick example
//!
//! ```
//! use ipcp_ir::parse_and_resolve;
//!
//! let src = r#"
//!     global n;
//!     proc main() {
//!         n = 100;
//!         call kernel(10, n);
//!     }
//!     proc kernel(steps, limit) {
//!         do i = 1, steps {
//!             print i * limit;
//!         }
//!     }
//! "#;
//! let module = parse_and_resolve(src)?;
//! assert_eq!(module.procs.len(), 2);
//! # Ok::<(), ipcp_ir::error::Diagnostics>(())
//! ```

pub mod cfg;
pub mod error;
pub mod hash;
pub mod interp;
pub mod lang;
pub mod names;
pub mod program;
pub mod span;
pub mod stream;

pub use cfg::{lower_module, ModuleCfg};
pub use error::{Diagnostic, Diagnostics};
pub use lang::{parse_program, pretty};
pub use names::{NameId, Names};
pub use program::{resolve, GlobalId, Module, Proc, ProcId, VarId};
pub use span::Span;
pub use stream::{resolve_streaming, ProgramSource, StreamedModule};

/// Parse FT source text and resolve it into a checked [`Module`].
///
/// This is the usual entry point: it chains [`lang::parse_program`] and
/// [`program::resolve`].
///
/// # Errors
///
/// Returns the accumulated [`Diagnostics`] if the source fails to lex,
/// parse, or resolve (unknown names, arity mismatches, scalar/array
/// confusion, missing `main`, …).
pub fn parse_and_resolve(src: &str) -> Result<Module, Diagnostics> {
    let ast = lang::parse_program(src)?;
    program::resolve(&ast)
}
