//! Reference interpreters for FT.
//!
//! Two independent executors implement the same dynamic semantics:
//!
//! * [`run_module`] walks the structured resolved AST;
//! * [`exec_cfg`] drives the lowered [`ModuleCfg`].
//!
//! Agreement between the two (checked by property tests) validates the
//! AST-to-CFG lowering; the entry-value [`EntryTrace`] they record is the
//! ground truth against which `CONSTANTS(p)` soundness is tested.
//!
//! ## Semantics
//!
//! All values are `i64`. Arithmetic overflow, division by zero and
//! out-of-bounds array accesses are runtime errors. Uninitialized scalars
//! read as `0`; arrays are zero-filled. Scalar variables named bare at call
//! sites are passed by reference; other actual expressions are copy-in
//! only. `do var = lo, hi, step` evaluates `hi` and `step` once, then
//! iterates while `var <= hi` (positive step) or `var >= hi` (negative
//! step); a zero step runs zero iterations. `read` past the end of the
//! input is a runtime error ([`ExecError::InputExhausted`]) unless
//! [`ExecLimits::lenient_reads`] is set, in which case it yields `0`.

use crate::cfg::{CStmt, ModuleCfg, Terminator};
use crate::lang::ast::{BinOp, UnOp};
use crate::program::{Arg, Block, Expr, Module, Proc, ProcId, SlotLayout, Stmt, VarId, VarKind};
use std::error::Error;
use std::fmt;

/// Execution limits guarding against runaway programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of executed statements / branch evaluations.
    pub max_steps: u64,
    /// Maximum call-stack depth.
    pub max_call_depth: usize,
    /// Whether to record the per-entry value trace.
    pub trace: bool,
    /// When set, a `read` past the end of the input yields `0` instead of
    /// raising [`ExecError::InputExhausted`]. Off by default: silently
    /// manufacturing zeros hides harness bugs where a generated input
    /// vector is shorter than the program's dynamic `read` count.
    pub lenient_reads: bool,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 2_000_000,
            max_call_depth: 200,
            trace: true,
            lenient_reads: false,
        }
    }
}

/// A runtime failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Division or remainder by zero.
    DivideByZero,
    /// 64-bit signed overflow in arithmetic.
    Overflow,
    /// Array access outside the declared bounds.
    IndexOutOfBounds {
        /// Offending index value.
        index: i64,
        /// Array length.
        len: i64,
    },
    /// The step budget was exhausted (probable infinite loop).
    OutOfFuel,
    /// A `read` executed after the input vector was consumed (strict
    /// mode; see [`ExecLimits::lenient_reads`]).
    InputExhausted,
    /// The call stack exceeded the configured depth.
    CallDepthExceeded,
    /// A write to a scalar reachable under two names in one activation
    /// (the FORTRAN 77 aliasing rule: a dummy argument aliased with
    /// another dummy or with a global may not be assigned).
    AliasedWrite,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivideByZero => write!(f, "division by zero"),
            ExecError::Overflow => write!(f, "integer overflow"),
            ExecError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            ExecError::OutOfFuel => write!(f, "step budget exhausted"),
            ExecError::InputExhausted => write!(f, "read past the end of the input"),
            ExecError::CallDepthExceeded => write!(f, "call depth exceeded"),
            ExecError::AliasedWrite => {
                write!(f, "write to a variable aliased through reference passing")
            }
        }
    }
}

impl Error for ExecError {}

/// The values of a procedure's entry slots at one dynamic entry.
///
/// Indexed per [`SlotLayout`]; `None` marks slots that carry no scalar
/// value (array formals).
pub type EntrySnapshot = Vec<Option<i64>>;

/// Every dynamic procedure entry observed during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EntryTrace {
    /// `(procedure, slot values at entry)` in call order.
    pub entries: Vec<(ProcId, EntrySnapshot)>,
}

impl EntryTrace {
    /// Iterates over the snapshots recorded for procedure `p`.
    pub fn for_proc(&self, p: ProcId) -> impl Iterator<Item = &EntrySnapshot> {
        self.entries
            .iter()
            .filter(move |(q, _)| *q == p)
            .map(|(_, s)| s)
    }
}

/// The result of a successful run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Execution {
    /// Values printed, in order.
    pub output: Vec<i64>,
    /// Statements executed.
    pub steps: u64,
    /// Entry-value trace (empty when tracing is disabled).
    pub trace: EntryTrace,
}

// ---------------------------------------------------------------------------
// Shared machine state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Loc(usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ArrLoc(usize);

/// Storage, I/O and accounting shared by both executors.
struct Machine<'a> {
    scalars: Vec<i64>,
    arrays: Vec<Vec<i64>>,
    input: &'a [i64],
    input_pos: usize,
    output: Vec<i64>,
    steps: u64,
    limits: ExecLimits,
    trace: EntryTrace,
    layout: SlotLayout,
    global_scalar_locs: Vec<Option<Loc>>,   // by GlobalId
    global_array_locs: Vec<Option<ArrLoc>>, // by GlobalId
    /// Scalar locations currently visible under two names in some active
    /// frame; writing them is the FT analogue of the FORTRAN 77 aliasing
    /// violation.
    aliased_locs: std::collections::HashSet<usize>,
}

/// A procedure activation: per-`VarId` bindings into machine storage.
struct Frame {
    scalar_locs: Vec<Option<Loc>>,
    array_locs: Vec<Option<ArrLoc>>,
}

/// Per-argument formal bindings produced by `Machine::bind_args`: the
/// scalar and array location slots, parallel to the argument list.
type Bindings = (Vec<Option<Loc>>, Vec<Option<ArrLoc>>);

impl<'a> Machine<'a> {
    fn new(module: &Module, input: &'a [i64], limits: ExecLimits) -> Self {
        let mut m = Machine {
            scalars: Vec::new(),
            arrays: Vec::new(),
            input,
            input_pos: 0,
            output: Vec::new(),
            steps: 0,
            limits,
            trace: EntryTrace::default(),
            layout: SlotLayout::new(module),
            global_scalar_locs: vec![None; module.globals.len()],
            global_array_locs: vec![None; module.globals.len()],
            aliased_locs: std::collections::HashSet::new(),
        };
        for (i, g) in module.globals.iter().enumerate() {
            match g.array_len {
                Some(len) => {
                    let loc = ArrLoc(m.arrays.len());
                    m.arrays.push(vec![0; len as usize]);
                    m.global_array_locs[i] = Some(loc);
                }
                None => {
                    let loc = Loc(m.scalars.len());
                    m.scalars.push(0);
                    m.global_scalar_locs[i] = Some(loc);
                }
            }
        }
        m
    }

    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            Err(ExecError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    fn alloc_scalar(&mut self, v: i64) -> Loc {
        let loc = Loc(self.scalars.len());
        self.scalars.push(v);
        loc
    }

    fn alloc_array(&mut self, len: usize) -> ArrLoc {
        let loc = ArrLoc(self.arrays.len());
        self.arrays.push(vec![0; len]);
        loc
    }

    fn read_input(&mut self) -> Result<i64, ExecError> {
        let v = match self.input.get(self.input_pos) {
            Some(&v) => v,
            None if self.limits.lenient_reads => 0,
            None => return Err(ExecError::InputExhausted),
        };
        self.input_pos += 1;
        Ok(v)
    }

    /// Builds the frame for a fresh activation of `proc`, binding formals
    /// to the given locations and allocating locals.
    fn make_frame(
        &mut self,
        proc: &Proc,
        formal_scalars: &[Option<Loc>],
        formal_arrays: &[Option<ArrLoc>],
    ) -> Frame {
        let n = proc.vars.len();
        let mut frame = Frame {
            scalar_locs: vec![None; n],
            array_locs: vec![None; n],
        };
        for (i, info) in proc.vars.iter().enumerate() {
            match info.kind {
                VarKind::Formal(fi) => {
                    frame.scalar_locs[i] = formal_scalars.get(fi).copied().flatten();
                    frame.array_locs[i] = formal_arrays.get(fi).copied().flatten();
                }
                VarKind::Global(g) => {
                    frame.scalar_locs[i] = self.global_scalar_locs[g.index()];
                    frame.array_locs[i] = self.global_array_locs[g.index()];
                }
                VarKind::Local => {
                    if info.is_array {
                        frame.array_locs[i] =
                            Some(self.alloc_array(info.array_len.unwrap_or(1) as usize));
                    } else {
                        frame.scalar_locs[i] = Some(self.alloc_scalar(0));
                    }
                }
            }
        }
        frame
    }

    /// Registers the frame's duplicated scalar locations (two names, one
    /// cell) as alias-protected, returning what was added so the caller
    /// can unwind on procedure exit.
    fn note_aliases(&mut self, frame: &Frame) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut added = Vec::new();
        for loc in frame.scalar_locs.iter().flatten() {
            if !seen.insert(loc.0) && self.aliased_locs.insert(loc.0) {
                added.push(loc.0);
            }
        }
        added
    }

    fn drop_aliases(&mut self, added: Vec<usize>) {
        for l in added {
            self.aliased_locs.remove(&l);
        }
    }

    fn record_entry(&mut self, proc: &Proc, frame: &Frame) {
        if !self.limits.trace {
            return;
        }
        let mut snap: EntrySnapshot = Vec::with_capacity(self.layout.n_slots(proc.arity()));
        for &fv in &proc.formals {
            snap.push(frame.scalar_locs[fv.index()].map(|l| self.scalars[l.0]));
        }
        let globals = self.layout.scalar_globals.clone();
        for g in globals {
            // The resolver allocates a loc for every scalar global.
            snap.push(self.global_scalar_locs[g.index()].map(|loc| self.scalars[loc.0]));
        }
        self.trace.entries.push((proc.id, snap));
    }

    fn scalar(&self, frame: &Frame, v: VarId) -> i64 {
        match frame.scalar_locs[v.index()] {
            Some(l) => self.scalars[l.0],
            None => 0,
        }
    }

    fn set_scalar(&mut self, frame: &Frame, v: VarId, value: i64) -> Result<(), ExecError> {
        if let Some(l) = frame.scalar_locs[v.index()] {
            if self.aliased_locs.contains(&l.0) {
                return Err(ExecError::AliasedWrite);
            }
            self.scalars[l.0] = value;
        }
        Ok(())
    }

    fn array_len(&self, frame: &Frame, v: VarId) -> i64 {
        match frame.array_locs[v.index()] {
            Some(l) => self.arrays[l.0].len() as i64,
            None => 0,
        }
    }

    fn load(&self, frame: &Frame, v: VarId, index: i64) -> Result<i64, ExecError> {
        let len = self.array_len(frame, v);
        if index < 0 || index >= len {
            return Err(ExecError::IndexOutOfBounds { index, len });
        }
        match frame.array_locs[v.index()] {
            Some(l) => Ok(self.arrays[l.0][index as usize]),
            // A var with no backing array has len 0, caught above.
            None => Err(ExecError::IndexOutOfBounds { index, len }),
        }
    }

    fn store(&mut self, frame: &Frame, v: VarId, index: i64, value: i64) -> Result<(), ExecError> {
        let len = self.array_len(frame, v);
        if index < 0 || index >= len {
            return Err(ExecError::IndexOutOfBounds { index, len });
        }
        match frame.array_locs[v.index()] {
            Some(l) => {
                self.arrays[l.0][index as usize] = value;
                Ok(())
            }
            // A var with no backing array has len 0, caught above.
            None => Err(ExecError::IndexOutOfBounds { index, len }),
        }
    }

    fn eval(&self, frame: &Frame, e: &Expr) -> Result<i64, ExecError> {
        match e {
            Expr::Const(v, _) => Ok(*v),
            Expr::Var(v, _) => Ok(self.scalar(frame, *v)),
            Expr::Load(v, idx, _) => {
                let i = self.eval(frame, idx)?;
                self.load(frame, *v, i)
            }
            Expr::Unary(op, operand, _) => {
                let x = self.eval(frame, operand)?;
                match op {
                    UnOp::Neg => x.checked_neg().ok_or(ExecError::Overflow),
                    UnOp::Not => Ok(i64::from(x == 0)),
                }
            }
            Expr::Binary(op, l, r, _) => {
                let a = self.eval(frame, l)?;
                let b = self.eval(frame, r)?;
                eval_binop(*op, a, b)
            }
        }
    }

    /// Evaluates call arguments to formal bindings, allocating copy-in
    /// cells for by-value arguments.
    fn bind_args(&mut self, frame: &Frame, args: &[Arg]) -> Result<Bindings, ExecError> {
        let mut scalars = Vec::with_capacity(args.len());
        let mut arrays = Vec::with_capacity(args.len());
        for a in args {
            match a {
                Arg::Scalar(v, _) => {
                    scalars.push(frame.scalar_locs[v.index()]);
                    arrays.push(None);
                }
                Arg::Array(v, _) => {
                    scalars.push(None);
                    arrays.push(frame.array_locs[v.index()]);
                }
                Arg::Value(e) => {
                    let val = self.eval(frame, e)?;
                    scalars.push(Some(self.alloc_scalar(val)));
                    arrays.push(None);
                }
            }
        }
        Ok((scalars, arrays))
    }
}

/// Pure arithmetic shared by the interpreters and by constant folding in
/// the analyses. All FT operators are total except `/`/`%` by zero and
/// overflow.
///
/// # Errors
///
/// [`ExecError::DivideByZero`] and [`ExecError::Overflow`] as appropriate.
pub fn eval_binop(op: BinOp, a: i64, b: i64) -> Result<i64, ExecError> {
    match op {
        BinOp::Add => a.checked_add(b).ok_or(ExecError::Overflow),
        BinOp::Sub => a.checked_sub(b).ok_or(ExecError::Overflow),
        BinOp::Mul => a.checked_mul(b).ok_or(ExecError::Overflow),
        BinOp::Div => {
            if b == 0 {
                Err(ExecError::DivideByZero)
            } else {
                a.checked_div(b).ok_or(ExecError::Overflow)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                Err(ExecError::DivideByZero)
            } else {
                a.checked_rem(b).ok_or(ExecError::Overflow)
            }
        }
        BinOp::Eq => Ok(i64::from(a == b)),
        BinOp::Ne => Ok(i64::from(a != b)),
        BinOp::Lt => Ok(i64::from(a < b)),
        BinOp::Le => Ok(i64::from(a <= b)),
        BinOp::Gt => Ok(i64::from(a > b)),
        BinOp::Ge => Ok(i64::from(a >= b)),
        BinOp::And => Ok(i64::from(a != 0 && b != 0)),
        BinOp::Or => Ok(i64::from(a != 0 || b != 0)),
    }
}

// ---------------------------------------------------------------------------
// AST interpreter
// ---------------------------------------------------------------------------

/// Runs the resolved module from `main`, reading integers from `input`.
///
/// # Errors
///
/// Any [`ExecError`] raised during execution.
///
/// ```
/// use ipcp_ir::{parse_and_resolve, interp};
/// let m = parse_and_resolve("proc main() { read x; print x * 2; }").unwrap();
/// let out = interp::run_module(&m, &[21], &interp::ExecLimits::default())?;
/// assert_eq!(out.output, vec![42]);
/// # Ok::<(), ipcp_ir::interp::ExecError>(())
/// ```
pub fn run_module(
    module: &Module,
    input: &[i64],
    limits: &ExecLimits,
) -> Result<Execution, ExecError> {
    let mut machine = Machine::new(module, input, *limits);
    run_proc_ast(module, module.entry, &mut machine, &[], &[], 0)?;
    Ok(Execution {
        output: machine.output,
        steps: machine.steps,
        trace: machine.trace,
    })
}

/// Control-flow signal for the structured interpreter.
enum Flow {
    Normal,
    Return,
}

fn run_proc_ast(
    module: &Module,
    pid: ProcId,
    machine: &mut Machine<'_>,
    formal_scalars: &[Option<Loc>],
    formal_arrays: &[Option<ArrLoc>],
    depth: usize,
) -> Result<(), ExecError> {
    if depth >= machine.limits.max_call_depth {
        return Err(ExecError::CallDepthExceeded);
    }
    let proc = module.proc(pid);
    let scalar_mark = machine.scalars.len();
    let array_mark = machine.arrays.len();
    let frame = machine.make_frame(proc, formal_scalars, formal_arrays);
    let alias_marks = machine.note_aliases(&frame);
    machine.record_entry(proc, &frame);
    let result = run_block_ast(module, &proc.body, machine, &frame, depth);
    machine.drop_aliases(alias_marks);
    result?;
    // Stack-discipline reclamation: everything this frame allocated sits at
    // the top of the stores (by-ref cells passed in live below the marks).
    machine.scalars.truncate(scalar_mark);
    machine.arrays.truncate(array_mark);
    Ok(())
}

fn run_block_ast(
    module: &Module,
    block: &Block,
    machine: &mut Machine<'_>,
    frame: &Frame,
    depth: usize,
) -> Result<Flow, ExecError> {
    for s in &block.stmts {
        machine.tick()?;
        match s {
            Stmt::Assign(dst, value, _) => {
                let v = machine.eval(frame, value)?;
                machine.set_scalar(frame, *dst, v)?;
            }
            Stmt::Store(arr, index, value, _) => {
                let i = machine.eval(frame, index)?;
                let v = machine.eval(frame, value)?;
                machine.store(frame, *arr, i, v)?;
            }
            Stmt::Read(dst, _) => {
                let v = machine.read_input()?;
                machine.set_scalar(frame, *dst, v)?;
            }
            Stmt::Print(value, _) => {
                let v = machine.eval(frame, value)?;
                machine.output.push(v);
            }
            Stmt::Return(_) => return Ok(Flow::Return),
            Stmt::If(cond, then_blk, else_blk, _) => {
                let c = machine.eval(frame, cond)?;
                let blk = if c != 0 { then_blk } else { else_blk };
                if let Flow::Return = run_block_ast(module, blk, machine, frame, depth)? {
                    return Ok(Flow::Return);
                }
            }
            Stmt::While(cond, body, _) => loop {
                machine.tick()?;
                if machine.eval(frame, cond)? == 0 {
                    break;
                }
                if let Flow::Return = run_block_ast(module, body, machine, frame, depth)? {
                    return Ok(Flow::Return);
                }
            },
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let mut i = machine.eval(frame, lo)?;
                let hi_v = machine.eval(frame, hi)?;
                let step_v = match step {
                    Some(e) => machine.eval(frame, e)?,
                    None => 1,
                };
                machine.set_scalar(frame, *var, i)?;
                loop {
                    machine.tick()?;
                    let go = (step_v > 0 && i <= hi_v) || (step_v < 0 && i >= hi_v);
                    if !go {
                        break;
                    }
                    if let Flow::Return = run_block_ast(module, body, machine, frame, depth)? {
                        return Ok(Flow::Return);
                    }
                    // The induction variable may have been modified by the
                    // body (including through a by-reference call); FORTRAN
                    // forbids that, FT defines it: the increment applies to
                    // the current value.
                    i = machine
                        .scalar(frame, *var)
                        .checked_add(step_v)
                        .ok_or(ExecError::Overflow)?;
                    machine.set_scalar(frame, *var, i)?;
                }
            }
            Stmt::Call(callee, args, _) => {
                let (scalars, arrays) = machine.bind_args(frame, args)?;
                run_proc_ast(module, *callee, machine, &scalars, &arrays, depth + 1)?;
            }
        }
    }
    Ok(Flow::Normal)
}

// ---------------------------------------------------------------------------
// CFG executor
// ---------------------------------------------------------------------------

/// Executes the lowered module from its entry procedure.
///
/// Shares all semantics with [`run_module`]; the property tests assert the
/// two agree on output and entry traces.
///
/// # Errors
///
/// Any [`ExecError`] raised during execution.
pub fn exec_cfg(
    mcfg: &ModuleCfg,
    input: &[i64],
    limits: &ExecLimits,
) -> Result<Execution, ExecError> {
    let mut machine = Machine::new(&mcfg.module, input, *limits);
    run_proc_cfg(mcfg, mcfg.module.entry, &mut machine, &[], &[], 0)?;
    Ok(Execution {
        output: machine.output,
        steps: machine.steps,
        trace: machine.trace,
    })
}

fn run_proc_cfg(
    mcfg: &ModuleCfg,
    pid: ProcId,
    machine: &mut Machine<'_>,
    formal_scalars: &[Option<Loc>],
    formal_arrays: &[Option<ArrLoc>],
    depth: usize,
) -> Result<(), ExecError> {
    if depth >= machine.limits.max_call_depth {
        return Err(ExecError::CallDepthExceeded);
    }
    let proc = mcfg.module.proc(pid);
    let cfg = mcfg.cfg(pid);
    let scalar_mark = machine.scalars.len();
    let array_mark = machine.arrays.len();
    let frame = machine.make_frame(proc, formal_scalars, formal_arrays);
    let alias_marks = machine.note_aliases(&frame);
    machine.record_entry(proc, &frame);

    let result = (|| -> Result<(), ExecError> {
        let mut bb = cfg.entry;
        loop {
            let block = cfg.block(bb);
            for s in &block.stmts {
                machine.tick()?;
                match s {
                    CStmt::Assign { dst, value } => {
                        let v = machine.eval(&frame, value)?;
                        machine.set_scalar(&frame, *dst, v)?;
                    }
                    CStmt::Store {
                        array,
                        index,
                        value,
                    } => {
                        let i = machine.eval(&frame, index)?;
                        let v = machine.eval(&frame, value)?;
                        machine.store(&frame, *array, i, v)?;
                    }
                    CStmt::Read { dst } => {
                        let v = machine.read_input()?;
                        machine.set_scalar(&frame, *dst, v)?;
                    }
                    CStmt::Print { value } => {
                        let v = machine.eval(&frame, value)?;
                        machine.output.push(v);
                    }
                    CStmt::Call { callee, args, .. } => {
                        let (scalars, arrays) = machine.bind_args(&frame, args)?;
                        run_proc_cfg(mcfg, *callee, machine, &scalars, &arrays, depth + 1)?;
                    }
                }
            }
            match &block.term {
                Terminator::Jump(b) => bb = *b,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    machine.tick()?;
                    let c = machine.eval(&frame, cond)?;
                    bb = if c != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Return => break,
            }
        }
        Ok(())
    })();
    machine.drop_aliases(alias_marks);
    result?;

    machine.scalars.truncate(scalar_mark);
    machine.arrays.truncate(array_mark);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower_module, parse_and_resolve};

    fn run(src: &str, input: &[i64]) -> Execution {
        let m = parse_and_resolve(src).unwrap();
        run_module(&m, input, &ExecLimits::default()).unwrap()
    }

    fn run_both(src: &str, input: &[i64]) -> (Execution, Execution) {
        let m = parse_and_resolve(src).unwrap();
        let a = run_module(&m, input, &ExecLimits::default()).unwrap();
        let b = exec_cfg(&lower_module(&m), input, &ExecLimits::default()).unwrap();
        (a, b)
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("proc main() { print 2 + 3 * 4; print (2 + 3) * 4; print 7 / 2; print 7 % 2; print -7 / 2; }", &[]);
        assert_eq!(out.output, vec![14, 20, 3, 1, -3]);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        let out = run(
            "proc main() { print 1 < 2; print 2 < 1; print 3 == 3; print !0; print !5; print 1 && 0; print 1 || 0; }",
            &[],
        );
        assert_eq!(out.output, vec![1, 0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn read_past_end_errors_in_strict_mode() {
        let m = parse_and_resolve("proc main() { read a; read b; print a; print b; }").unwrap();
        let err = run_module(&m, &[9], &ExecLimits::default()).unwrap_err();
        assert_eq!(err, ExecError::InputExhausted);
        let err = exec_cfg(&lower_module(&m), &[9], &ExecLimits::default()).unwrap_err();
        assert_eq!(err, ExecError::InputExhausted);
    }

    #[test]
    fn read_past_end_yields_zero_when_lenient() {
        let m = parse_and_resolve("proc main() { read a; read b; print a; print b; }").unwrap();
        let limits = ExecLimits {
            lenient_reads: true,
            ..ExecLimits::default()
        };
        let out = run_module(&m, &[9], &limits).unwrap();
        assert_eq!(out.output, vec![9, 0]);
        let out = exec_cfg(&lower_module(&m), &[9], &limits).unwrap();
        assert_eq!(out.output, vec![9, 0]);
    }

    #[test]
    fn uninitialized_scalar_reads_zero() {
        let out = run("proc main() { print never_set; }", &[]);
        assert_eq!(out.output, vec![0]);
    }

    #[test]
    fn by_reference_scalar_argument_is_modified() {
        let out = run(
            "proc main() { x = 1; call bump(x); print x; } proc bump(a) { a = a + 41; }",
            &[],
        );
        assert_eq!(out.output, vec![42]);
    }

    #[test]
    fn by_value_argument_is_not_modified() {
        let out = run(
            "proc main() { x = 1; call bump(x + 0); print x; } proc bump(a) { a = 99; }",
            &[],
        );
        assert_eq!(out.output, vec![1]);
    }

    #[test]
    fn arrays_pass_by_reference() {
        let out = run(
            "proc main() { array t[3]; call fill(t, 3); print t[0] + t[1] + t[2]; } \
             proc fill(b, n) { do i = 0, n - 1 { b[i] = i + 1; } }",
            &[],
        );
        assert_eq!(out.output, vec![6]);
    }

    #[test]
    fn globals_are_shared() {
        let out = run(
            "global g; proc main() { g = 5; call twice(); print g; } proc twice() { g = g * 2; }",
            &[],
        );
        assert_eq!(out.output, vec![10]);
    }

    #[test]
    fn do_loop_semantics() {
        // hi/step evaluated once; inclusive bound; negative step.
        let out = run(
            "proc main() { n = 3; do i = 1, n { n = 100; print i; } do j = 3, 1, -1 { print j; } do k = 1, 0 { print 99; } }",
            &[],
        );
        assert_eq!(out.output, vec![1, 2, 3, 3, 2, 1]);
    }

    #[test]
    fn do_loop_zero_step_runs_zero_iterations() {
        let out = run(
            "proc main() { read s; do i = 1, 10, s { print i; } print 7; }",
            &[0],
        );
        assert_eq!(out.output, vec![7]);
    }

    #[test]
    fn while_and_early_return() {
        let out = run(
            "proc main() { x = 0; while (x < 10) { x = x + 1; if (x == 4) { return; } } print x; }",
            &[],
        );
        assert!(out.output.is_empty());
    }

    #[test]
    fn return_inside_loop_in_callee_only_exits_callee() {
        let out = run(
            "proc main() { call f(); print 2; } proc f() { do i = 1, 10 { return; } print 1; }",
            &[],
        );
        assert_eq!(out.output, vec![2]);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let m = parse_and_resolve("proc main() { read x; print 1 / x; }").unwrap();
        let err = run_module(&m, &[0], &ExecLimits::default()).unwrap_err();
        assert_eq!(err, ExecError::DivideByZero);
    }

    #[test]
    fn overflow_is_an_error() {
        let m = parse_and_resolve("proc main() { x = 9223372036854775807; print x + 1; }").unwrap();
        let err = run_module(&m, &[], &ExecLimits::default()).unwrap_err();
        assert_eq!(err, ExecError::Overflow);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let m = parse_and_resolve("proc main() { array t[2]; read i; t[i] = 1; }").unwrap();
        let err = run_module(&m, &[5], &ExecLimits::default()).unwrap_err();
        assert_eq!(err, ExecError::IndexOutOfBounds { index: 5, len: 2 });
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let m = parse_and_resolve("proc main() { while (1) { } }").unwrap();
        let limits = ExecLimits {
            max_steps: 1000,
            ..Default::default()
        };
        assert_eq!(
            run_module(&m, &[], &limits).unwrap_err(),
            ExecError::OutOfFuel
        );
    }

    #[test]
    fn recursion_is_depth_limited() {
        let m = parse_and_resolve("proc main() { call f(); } proc f() { call f(); }").unwrap();
        assert_eq!(
            run_module(&m, &[], &ExecLimits::default()).unwrap_err(),
            ExecError::CallDepthExceeded
        );
    }

    #[test]
    fn bounded_recursion_works() {
        let out = run(
            "proc main() { n = 5; r = 1; call fact(n, r); print r; } \
             proc fact(n, r) { if (n > 1) { r = r * n; m = n - 1; call fact(m, r); } }",
            &[],
        );
        assert_eq!(out.output, vec![120]);
    }

    #[test]
    fn entry_trace_records_formals_and_globals() {
        let m =
            parse_and_resolve("global g; proc main() { g = 7; call f(3); } proc f(a) { print a; }")
                .unwrap();
        let out = run_module(&m, &[], &ExecLimits::default()).unwrap();
        let f = m.proc_named("f").unwrap().id;
        let snaps: Vec<_> = out.trace.for_proc(f).collect();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0], &vec![Some(3), Some(7)]);
    }

    #[test]
    fn cfg_executor_agrees_with_ast_interpreter() {
        let srcs = [
            "proc main() { x = 0; do i = 1, 5 { x = x + i; } print x; }",
            "proc main() { read n; if (n > 2) { print 1; } else if (n > 0) { print 2; } else { print 3; } }",
            "global g; proc main() { g = 1; call f(10); print g; } proc f(k) { do i = 1, k, 3 { g = g + i; } }",
            "proc main() { array t[4]; do i = 0, 3 { t[i] = i * i; } s = 0; do i = 0, 3 { s = s + t[i]; } print s; }",
            "proc main() { read s; do i = 10, 1, s { print i; } }",
        ];
        for src in srcs {
            for input in [&[0][..], &[1], &[-2], &[3]] {
                let (a, b) = run_both(src, input);
                assert_eq!(a.output, b.output, "output mismatch on {src}");
                assert_eq!(a.trace, b.trace, "trace mismatch on {src}");
            }
        }
    }

    #[test]
    fn aliased_writes_fault_in_both_interpreters() {
        // The same variable passed by reference twice: writing either
        // dummy violates the FORTRAN 77 aliasing rule FT inherits, and
        // both executors report it identically.
        let src = "proc main() { x = 1; call f(x, x); print x; } proc f(p, q) { p = p + 1; }";
        let m = parse_and_resolve(src).unwrap();
        let a = run_module(&m, &[], &ExecLimits::default()).unwrap_err();
        let b = exec_cfg(&lower_module(&m), &[], &ExecLimits::default()).unwrap_err();
        assert_eq!(a, ExecError::AliasedWrite);
        assert_eq!(b, ExecError::AliasedWrite);
    }

    #[test]
    fn aliased_reads_are_permitted() {
        let (a, b) = run_both(
            "proc main() { x = 21; call f(x, x); } proc f(p, q) { print p + q; }",
            &[],
        );
        assert_eq!(a.output, vec![42]);
        assert_eq!(b.output, vec![42]);
    }

    #[test]
    fn trace_can_be_disabled() {
        let m = parse_and_resolve("proc main() { call f(1); } proc f(a) { }").unwrap();
        let limits = ExecLimits {
            trace: false,
            ..Default::default()
        };
        let out = run_module(&m, &[], &limits).unwrap();
        assert!(out.trace.entries.is_empty());
    }
}
