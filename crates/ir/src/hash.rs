//! Stable content hashing for incremental analysis.
//!
//! The serve layer keys cached per-procedure summaries by the *content*
//! of the text that produced them, so the hash must be stable across
//! processes and platform word sizes — `std::hash` makes no such promise
//! (and `DefaultHasher` is explicitly randomized between releases). This
//! is FNV-1a over 128 bits: tiny, dependency-free, and wide enough that
//! accidental collisions between cache keys are not a practical concern
//! for the cache sizes a daemon holds (birthday bound ≈ 2^64 entries).
//!
//! Not cryptographic: a *malicious* client that controls procedure text
//! could engineer collisions. The daemon trusts its clients with the
//! program text anyway (they can ask for any analysis of it), so the
//! cache key only needs to be an accident-proof fingerprint.

/// Incremental 128-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string's bytes followed by a `0xFF` terminator, so
    /// adjacent strings cannot alias across their boundary (`"ab" + "c"`
    /// vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xFF]);
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a previously computed digest (for Merkle-style combining).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// One-shot digest of a string.
pub fn hash_str(s: &str) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(s);
    h.finish()
}

/// One-shot digest of a byte slice — the checksum primitive of the serve
/// summary store (per-record and whole-file integrity, not security; see
/// the module docs for the trust model).
pub fn hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(Fnv128::new().finish(), FNV_OFFSET);
        // Stable across calls and instances.
        assert_eq!(hash_str("proc main() { }"), hash_str("proc main() { }"));
    }

    #[test]
    fn distinguishes_content() {
        assert_ne!(hash_str("proc f(a) { }"), hash_str("proc f(b) { }"));
        assert_ne!(hash_str(""), hash_str(" "));
    }

    #[test]
    fn string_boundaries_do_not_alias() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_digest_matches_incremental_writes() {
        let mut h = Fnv128::new();
        h.write(b"abc");
        assert_eq!(hash_bytes(b"abc"), h.finish());
        let mut w32 = Fnv128::new();
        w32.write_u32(0x0403_0201);
        assert_eq!(hash_bytes(&[1, 2, 3, 4]), w32.finish());
    }

    #[test]
    fn merkle_combining_is_order_sensitive() {
        let (x, y) = (hash_str("x"), hash_str("y"));
        let mut a = Fnv128::new();
        a.write_u128(x);
        a.write_u128(y);
        let mut b = Fnv128::new();
        b.write_u128(y);
        b.write_u128(x);
        assert_ne!(a.finish(), b.finish());
    }
}
