//! Byte-offset source spans used by diagnostics throughout the front end.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans are deliberately tiny (two `u32`s) so that every token, AST node
/// and diagnostic can carry one for free.
///
/// ```
/// use ipcp_ir::span::Span;
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(Span::new(3, 3).is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start {start} after end {end}");
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// ```
    /// use ipcp_ir::span::Span;
    /// let merged = Span::new(2, 4).merge(Span::new(7, 9));
    /// assert_eq!(merged, Span::new(2, 9));
    /// ```
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.start as usize).min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        (line, col)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_and_covering() {
        let a = Span::new(5, 10);
        let b = Span::new(1, 6);
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b), Span::new(1, 10));
    }

    #[test]
    fn line_col_counts_lines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(4, 2);
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::dummy().is_empty());
        assert_eq!(Span::dummy().len(), 0);
    }
}
