//! Streaming front end: build, hash, and resolve a module chunk by
//! chunk, without the whole source text or unresolved AST resident.
//!
//! The resident path (`parse_and_resolve`) materializes the full source
//! string and the full `ast::Program` before resolution begins — at the
//! 100k-procedure scale tier that is tens of megabytes of text plus a
//! proportionally larger AST held simultaneously. This module feeds the
//! *existing* parser one [`ProgramSource`] chunk at a time and drives the
//! incremental resolver ([`crate::program`]) in two passes:
//!
//! 1. **Signatures + digests** — each chunk is generated, FNV-128-hashed
//!    ([`crate::hash`], the same keys the serve summary cache uses), and
//!    parsed; only the global declarations and procedure signatures
//!    (name, arity) are retained. The chunk's text and AST are dropped.
//! 2. **Bodies** — each chunk is regenerated and re-parsed, and every
//!    procedure body is immediately resolved against the signature table
//!    into its compact [`Proc`](crate::program::Proc) form.
//!
//! Peak residency is therefore one chunk's text + AST plus the growing
//! resolved module — the representation every downstream consumer needs
//! anyway — instead of text + AST + module for the whole program at once.
//! The price is generating and parsing every chunk twice; chunk sources
//! are required to be cheap to re-iterate (the scale generator in
//! `ipcp-suite` regenerates any chunk from its seed in microseconds).
//!
//! Spans in a streamed module are **chunk-relative** (each chunk is
//! parsed as its own little program), so `Module` equality against the
//! resident path is not byte-for-byte on spans; the differential tests
//! compare `to_source()` output and analysis results instead, which is
//! the actual contract — the analysis never consults spans for values.
//!
//! ```
//! use ipcp_ir::stream::resolve_streaming;
//!
//! let chunks = ["global n;\n", "proc main() { n = 1; call f(n); }\n", "proc f(x) { print x; }\n"];
//! let streamed = resolve_streaming(&chunks[..])?;
//! assert_eq!(streamed.module.procs.len(), 2);
//! assert_eq!(streamed.chunk_digests.len(), 3);
//! # Ok::<(), ipcp_ir::Diagnostics>(())
//! ```

use crate::error::Diagnostics;
use crate::hash::{hash_str, Fnv128};
use crate::lang;
use crate::program::{Module, ProcId, Resolver};

/// A re-iterable chunk producer: chunk `i` holds zero or more complete
/// top-level declarations (globals and/or procedures), and concatenating
/// all chunks in order yields the full program text.
///
/// Implementations must be **deterministic** — [`resolve_streaming`]
/// requests every chunk twice (signatures pass, bodies pass) and the two
/// readings must agree. They should also be cheap: the whole point of
/// streaming is that a chunk can be regenerated on demand instead of
/// being kept resident.
pub trait ProgramSource {
    /// Number of chunks.
    fn n_chunks(&self) -> usize;

    /// Appends chunk `i`'s FT text to `out` (`out` is empty on entry).
    fn chunk(&self, i: usize, out: &mut String);
}

/// Any slice of string-likes is a chunk source — the degenerate resident
/// adapter used by tests and by callers that already hold split text.
impl<T: AsRef<str>> ProgramSource for [T] {
    fn n_chunks(&self) -> usize {
        self.len()
    }

    fn chunk(&self, i: usize, out: &mut String) {
        out.push_str(self[i].as_ref());
    }
}

/// A module resolved through the streaming path, with the content
/// digests computed along the way.
#[derive(Clone, Debug)]
pub struct StreamedModule {
    /// The resolved module — identical (up to chunk-relative spans) to
    /// what `parse_and_resolve` produces on the concatenated text.
    pub module: Module,
    /// FNV-128 digest of each chunk's text, in chunk order (the same
    /// per-procedure content keys the serve summary cache computes).
    pub chunk_digests: Vec<u128>,
    /// Merkle combination of [`StreamedModule::chunk_digests`] in order:
    /// a whole-program content fingerprint.
    pub digest: u128,
    /// Total bytes of source text across all chunks.
    pub total_bytes: usize,
    /// Largest single chunk in bytes — the text high-water mark of the
    /// streaming front end.
    pub peak_chunk_bytes: usize,
}

/// Resolves a chunked program without materializing the whole source
/// text or AST. See the module docs for the two-pass protocol.
///
/// # Errors
///
/// Returns the accumulated [`Diagnostics`] if any chunk fails to parse
/// (all chunks are still visited, so one report carries every error) or
/// if whole-module resolution fails (unknown callees, arity mismatches,
/// missing `main`, …) — exactly the errors the resident path reports.
pub fn resolve_streaming<S: ProgramSource + ?Sized>(
    source: &S,
) -> Result<StreamedModule, Diagnostics> {
    let n = source.n_chunks();
    let mut resolver = Resolver::new();
    let mut buf = String::new();
    let mut chunk_digests = Vec::with_capacity(n);
    let mut module_hasher = Fnv128::new();
    let mut total_bytes = 0usize;
    let mut peak_chunk_bytes = 0usize;
    let mut parse_failed = false;

    // Pass 1: digests, globals, and procedure signatures.
    for i in 0..n {
        buf.clear();
        source.chunk(i, &mut buf);
        let digest = hash_str(&buf);
        chunk_digests.push(digest);
        module_hasher.write_u128(digest);
        total_bytes += buf.len();
        peak_chunk_bytes = peak_chunk_bytes.max(buf.len());
        match lang::parse_program(&buf) {
            Ok(ast) => {
                for g in &ast.globals {
                    resolver.declare_global(g);
                }
                for p in &ast.procs {
                    resolver.declare_proc(&p.name, p.params.len(), p.span);
                }
            }
            Err(diags) => {
                parse_failed = true;
                resolver.absorb_diags(diags);
            }
        }
    }
    if parse_failed {
        return Err(resolver.into_diags());
    }

    // Pass 2: re-parse each chunk and resolve its bodies immediately;
    // the chunk's AST dies at the end of each iteration.
    let mut procs = Vec::new();
    for i in 0..n {
        buf.clear();
        source.chunk(i, &mut buf);
        // Pass 1 accepted every chunk, so a failure here means the
        // source violated its determinism contract between passes.
        let ast = lang::parse_program(&buf)?;
        for p in &ast.procs {
            let id = ProcId::from(procs.len());
            let resolved = resolver.resolve_proc_body(id, p);
            procs.push(resolved);
        }
    }

    let module = resolver.finish(procs)?;
    Ok(StreamedModule {
        module,
        chunk_digests,
        digest: module_hasher.finish(),
        total_bytes,
        peak_chunk_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_resolve;

    const CHUNKS: [&str; 3] = [
        "global n;\n",
        "proc main() {\n    n = 40 + 2;\n    call f(n, 7);\n}\n",
        "proc f(a, b) {\n    print a * b;\n}\n",
    ];

    #[test]
    fn streamed_module_matches_resident_resolution() {
        let streamed = resolve_streaming(&CHUNKS[..]).unwrap();
        let resident = parse_and_resolve(&CHUNKS.concat()).unwrap();
        // Spans are chunk-relative in the streamed module, so compare
        // the span-free projection: the pretty-printed source.
        assert_eq!(streamed.module.to_source(), resident.to_source());
        assert_eq!(streamed.module.procs.len(), resident.procs.len());
        assert_eq!(streamed.module.entry, resident.entry);
    }

    #[test]
    fn digests_are_per_chunk_and_merkle_combined() {
        let streamed = resolve_streaming(&CHUNKS[..]).unwrap();
        assert_eq!(streamed.chunk_digests.len(), 3);
        for (i, chunk) in CHUNKS.iter().enumerate() {
            assert_eq!(streamed.chunk_digests[i], hash_str(chunk));
        }
        let mut h = Fnv128::new();
        for d in &streamed.chunk_digests {
            h.write_u128(*d);
        }
        assert_eq!(streamed.digest, h.finish());
        assert_eq!(
            streamed.total_bytes,
            CHUNKS.iter().map(|c| c.len()).sum::<usize>()
        );
        assert_eq!(
            streamed.peak_chunk_bytes,
            CHUNKS.iter().map(|c| c.len()).max().unwrap()
        );
    }

    #[test]
    fn forward_and_backward_cross_chunk_calls_resolve() {
        let chunks = [
            "proc main() { call later(1); call earlier(2); }\n",
            "proc earlier(x) { print x; }\n",
            "proc later(y) { call earlier(y); }\n",
        ];
        let streamed = resolve_streaming(&chunks[..]).unwrap();
        assert_eq!(streamed.module.procs.len(), 3);
    }

    #[test]
    fn parse_errors_from_every_chunk_are_accumulated() {
        let chunks = ["proc main() { x = ; }\n", "proc f( { }\n"];
        let err = resolve_streaming(&chunks[..]).unwrap_err();
        assert!(err.has_errors());
        assert!(err.len() >= 2, "want both chunks' errors, got {err}");
    }

    #[test]
    fn resolution_errors_match_the_resident_path() {
        let chunks = ["proc main() { call nope(1); }\n"];
        let err = resolve_streaming(&chunks[..]).unwrap_err();
        assert!(err.to_string().contains("unknown procedure"));
        let chunks = ["proc helper(a) { print a; }\n"];
        let err = resolve_streaming(&chunks[..]).unwrap_err();
        assert!(err.to_string().contains("no `main`"));
        let chunks = ["proc main() { call f(1, 2); }\n", "proc f(a) { }\n"];
        let err = resolve_streaming(&chunks[..]).unwrap_err();
        assert!(err.to_string().contains("expects 1 argument"));
    }

    #[test]
    fn empty_and_globals_only_chunks_are_fine() {
        let chunks = ["", "global g;\n", "", "proc main() { g = 1; print g; }\n"];
        let streamed = resolve_streaming(&chunks[..]).unwrap();
        assert_eq!(streamed.module.globals.len(), 1);
        assert_eq!(streamed.module.procs.len(), 1);
    }
}
