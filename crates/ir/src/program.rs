//! Resolved program representation: names become dense ids, procedures get
//! symbol tables, and call sites are checked against procedure signatures.
//!
//! The resolved [`Module`] is the input to everything downstream: the CFG
//! lowering, the interpreters, MOD/REF analysis and the interprocedural
//! constant propagation pipeline.

use crate::error::Diagnostics;
use crate::lang::{self, ast};
use crate::span::Span;
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usable index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }
    };
}

id_type! {
    /// Index of a global variable in [`Module::globals`].
    GlobalId
}
id_type! {
    /// Index of a procedure in [`Module::procs`].
    ProcId
}
id_type! {
    /// Index of a variable in its procedure's [`Proc::vars`] table.
    ///
    /// `VarId`s are per-procedure; the same numeric id in two procedures
    /// names unrelated variables (except that globals resolve to a `VarId`
    /// in each procedure that references them, linked via [`VarKind::Global`]).
    VarId
}

/// What kind of variable a [`VarInfo`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// The `n`-th formal parameter of the enclosing procedure.
    Formal(usize),
    /// A procedure-local variable (implicitly declared on first assignment,
    /// or via `array`).
    Local,
    /// A reference to the module-level global with the given id.
    Global(GlobalId),
}

/// Per-procedure symbol-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Formal / local / global.
    pub kind: VarKind,
    /// Whether the variable holds an array (true) or a scalar (false).
    pub is_array: bool,
    /// Declared length for local/global arrays; `None` for scalars and for
    /// array formals (whose length comes from the actual argument).
    pub array_len: Option<i64>,
}

impl VarInfo {
    /// Whether this entry is a formal parameter.
    pub fn is_formal(&self) -> bool {
        matches!(self.kind, VarKind::Formal(_))
    }

    /// Whether this entry refers to a global.
    pub fn is_global(&self) -> bool {
        matches!(self.kind, VarKind::Global(_))
    }
}

/// A module-level variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalInfo {
    /// Source name.
    pub name: String,
    /// `Some(len)` when the global is an array.
    pub array_len: Option<i64>,
}

impl GlobalInfo {
    /// Whether the global is an array.
    pub fn is_array(&self) -> bool {
        self.array_len.is_some()
    }
}

/// A resolved expression. Mirrors [`ast::Expr`] with ids for names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64, Span),
    /// Scalar variable use.
    Var(VarId, Span),
    /// Array element load.
    Load(VarId, Box<Expr>, Span),
    /// Unary operation.
    Unary(ast::UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(ast::BinOp, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const(_, s)
            | Expr::Var(_, s)
            | Expr::Load(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s) => *s,
        }
    }

    /// Whether the expression is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(..))
    }

    /// Visits every scalar variable use (including array index
    /// subexpressions) in evaluation order.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Const(..) => {}
            Expr::Var(v, _) => f(*v),
            Expr::Load(_, idx, _) => idx.for_each_var(f),
            Expr::Unary(_, e, _) => e.for_each_var(f),
            Expr::Binary(_, l, r, _) => {
                l.for_each_var(f);
                r.for_each_var(f);
            }
        }
    }
}

/// How an actual argument is passed at a call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arg {
    /// A bare scalar variable: passed **by reference** (FORTRAN style);
    /// the callee may modify it.
    Scalar(VarId, Span),
    /// A bare array variable: the whole array is passed by reference.
    Array(VarId, Span),
    /// Any other expression: evaluated and passed **by value** (copy-in,
    /// no copy-out).
    Value(Expr),
}

impl Arg {
    /// Source span of the argument.
    pub fn span(&self) -> Span {
        match self {
            Arg::Scalar(_, s) | Arg::Array(_, s) => *s,
            Arg::Value(e) => e.span(),
        }
    }

    /// The literal value if the argument is a syntactic integer literal —
    /// the information the *literal constant jump function* is allowed
    /// to use.
    pub fn literal(&self) -> Option<i64> {
        match self {
            Arg::Value(Expr::Const(v, _)) => Some(*v),
            _ => None,
        }
    }
}

/// A resolved statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Scalar assignment.
    Assign(VarId, Expr, Span),
    /// Array element store.
    Store(VarId, Expr, Expr, Span),
    /// Conditional.
    If(Expr, Block, Block, Span),
    /// Pre-tested loop.
    While(Expr, Block, Span),
    /// FORTRAN counted loop; `hi`/`step` evaluated once on entry.
    Do {
        /// Induction variable (a scalar).
        var: VarId,
        /// Initial value.
        lo: Expr,
        /// Inclusive bound.
        hi: Expr,
        /// Step; `None` means 1.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// Procedure call.
    Call(ProcId, Vec<Arg>, Span),
    /// Early return.
    Return(Span),
    /// Input.
    Read(VarId, Span),
    /// Output.
    Print(Expr, Span),
}

impl Stmt {
    /// Source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign(_, _, s)
            | Stmt::Store(_, _, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::While(_, _, s)
            | Stmt::Do { span: s, .. }
            | Stmt::Call(_, _, s)
            | Stmt::Return(s)
            | Stmt::Read(_, s)
            | Stmt::Print(_, s) => *s,
        }
    }
}

/// A resolved statement sequence.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A resolved procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proc {
    /// Source name.
    pub name: String,
    /// This procedure's id within the module.
    pub id: ProcId,
    /// Symbol table: formals first (in parameter order), then locals and
    /// referenced globals in order of first mention.
    pub vars: Vec<VarInfo>,
    /// Ids of the formal parameters, in order (`vars[formals[i]]` has
    /// `VarKind::Formal(i)`).
    pub formals: Vec<VarId>,
    /// The body.
    pub body: Block,
    /// Header span.
    pub span: Span,
}

impl Proc {
    /// Looks up the symbol-table entry for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this procedure.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Finds a variable by source name.
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|vi| vi.name == name)
            .map(VarId::from)
    }

    /// Number of formal parameters.
    pub fn arity(&self) -> usize {
        self.formals.len()
    }

    /// The `VarId` this procedure uses for global `g`, if it references it.
    pub fn var_for_global(&self, g: GlobalId) -> Option<VarId> {
        self.vars
            .iter()
            .position(|vi| vi.kind == VarKind::Global(g))
            .map(VarId::from)
    }
}

/// A fully resolved, semantically checked module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Module-level variables.
    pub globals: Vec<GlobalInfo>,
    /// All procedures.
    pub procs: Vec<Proc>,
    /// The entry procedure (`main`, which must take no parameters).
    pub entry: ProcId,
}

impl Module {
    /// Looks up a procedure by id.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc(&self, p: ProcId) -> &Proc {
        &self.procs[p.index()]
    }

    /// Finds a procedure by source name.
    pub fn proc_named(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Ids of the scalar (non-array) globals — the ones whose values the
    /// interprocedural analysis tracks.
    pub fn scalar_global_ids(&self) -> Vec<GlobalId> {
        self.globals
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_array())
            .map(|(i, _)| GlobalId::from(i))
            .collect()
    }

    /// Renders the module back to FT source (see [`lang::pretty`]).
    pub fn to_source(&self) -> String {
        lang::pretty::program(&self.to_ast())
    }

    /// Reconstructs an unresolved AST (used for pretty-printing and for
    /// feeding transformed modules back through the front end in tests).
    pub fn to_ast(&self) -> ast::Program {
        let mut prog = ast::Program::default();
        for g in &self.globals {
            prog.globals.push(ast::GlobalDecl {
                name: g.name.clone(),
                array_len: g.array_len,
                span: Span::dummy(),
            });
        }
        for p in &self.procs {
            prog.procs.push(ast::ProcDecl {
                name: p.name.clone(),
                params: p
                    .formals
                    .iter()
                    .map(|&f| (p.var(f).name.clone(), Span::dummy()))
                    .collect(),
                body: unresolve_block(p, &self.procs, &p.body),
                span: p.span,
            });
        }
        prog
    }
}

fn unresolve_expr(p: &Proc, e: &Expr) -> ast::Expr {
    match e {
        Expr::Const(v, span) => ast::Expr::Const {
            value: *v,
            span: *span,
        },
        Expr::Var(v, span) => ast::Expr::Var {
            name: p.var(*v).name.clone(),
            span: *span,
        },
        Expr::Load(v, idx, span) => ast::Expr::Load {
            name: p.var(*v).name.clone(),
            index: Box::new(unresolve_expr(p, idx)),
            span: *span,
        },
        Expr::Unary(op, e, span) => ast::Expr::Unary {
            op: *op,
            operand: Box::new(unresolve_expr(p, e)),
            span: *span,
        },
        Expr::Binary(op, l, r, span) => ast::Expr::Binary {
            op: *op,
            lhs: Box::new(unresolve_expr(p, l)),
            rhs: Box::new(unresolve_expr(p, r)),
            span: *span,
        },
    }
}

fn unresolve_block(p: &Proc, procs: &[Proc], b: &Block) -> ast::Block {
    let mut out = ast::Block::default();
    // Re-emit local array declarations first so the result re-resolves.
    // (Declarations are stripped during resolution.)
    out.stmts.extend(p.vars.iter().filter_map(|vi| {
        if vi.kind == VarKind::Local && vi.is_array {
            Some(ast::Stmt::ArrayDecl {
                name: vi.name.clone(),
                len: vi.array_len.unwrap_or(1),
                span: Span::dummy(),
            })
        } else {
            None
        }
    }));
    unresolve_stmts(p, procs, b, &mut out.stmts);
    out
}

fn unresolve_stmts(p: &Proc, procs: &[Proc], b: &Block, out: &mut Vec<ast::Stmt>) {
    for s in &b.stmts {
        out.push(match s {
            Stmt::Assign(v, e, span) => ast::Stmt::Assign {
                name: p.var(*v).name.clone(),
                value: unresolve_expr(p, e),
                span: *span,
            },
            Stmt::Store(v, idx, val, span) => ast::Stmt::Store {
                name: p.var(*v).name.clone(),
                index: unresolve_expr(p, idx),
                value: unresolve_expr(p, val),
                span: *span,
            },
            Stmt::If(c, t, e, span) => ast::Stmt::If {
                cond: unresolve_expr(p, c),
                then_blk: unresolve_inner(p, procs, t),
                else_blk: unresolve_inner(p, procs, e),
                span: *span,
            },
            Stmt::While(c, body, span) => ast::Stmt::While {
                cond: unresolve_expr(p, c),
                body: unresolve_inner(p, procs, body),
                span: *span,
            },
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => ast::Stmt::Do {
                var: p.var(*var).name.clone(),
                lo: unresolve_expr(p, lo),
                hi: unresolve_expr(p, hi),
                step: step.as_ref().map(|s| unresolve_expr(p, s)),
                body: unresolve_inner(p, procs, body),
                span: *span,
            },
            Stmt::Call(callee, args, span) => ast::Stmt::Call {
                callee: procs[callee.index()].name.clone(),
                args: args
                    .iter()
                    .map(|a| match a {
                        Arg::Scalar(v, sp) | Arg::Array(v, sp) => ast::Expr::Var {
                            name: p.var(*v).name.clone(),
                            span: *sp,
                        },
                        Arg::Value(e) => unresolve_expr(p, e),
                    })
                    .collect(),
                span: *span,
            },
            Stmt::Return(span) => ast::Stmt::Return { span: *span },
            Stmt::Read(v, span) => ast::Stmt::Read {
                name: p.var(*v).name.clone(),
                span: *span,
            },
            Stmt::Print(e, span) => ast::Stmt::Print {
                value: unresolve_expr(p, e),
                span: *span,
            },
        });
    }
}

fn unresolve_inner(p: &Proc, procs: &[Proc], b: &Block) -> ast::Block {
    let mut stmts = Vec::new();
    unresolve_stmts(p, procs, b, &mut stmts);
    ast::Block { stmts }
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Resolves a parsed program into a checked [`Module`].
///
/// Checks performed:
///
/// * duplicate global / procedure / parameter names;
/// * presence of a zero-parameter `main`;
/// * unknown variable or procedure references;
/// * arity of every call;
/// * consistent scalar/array usage of every variable, with array-ness of
///   formals inferred to a fixpoint across call chains;
/// * array arguments are bare names (no array expressions).
///
/// # Errors
///
/// Returns every violation found as [`Diagnostics`].
pub fn resolve(prog: &ast::Program) -> Result<Module, Diagnostics> {
    let mut r = Resolver::new();
    for g in &prog.globals {
        r.declare_global(g);
    }
    for p in &prog.procs {
        r.declare_proc(&p.name, p.params.len(), p.span);
    }
    let mut procs = Vec::with_capacity(prog.procs.len());
    for (i, p) in prog.procs.iter().enumerate() {
        let resolved = r.resolve_proc_body(ProcId::from(i), p);
        procs.push(resolved);
    }
    r.finish(procs)
}

/// The signature a call site needs from its callee: just the arity (plus
/// the declaration span for diagnostics). Bodies resolve against this
/// table, which is what lets [`crate::stream`] resolve one procedure at
/// a time without the whole AST resident.
pub(crate) struct ProcSig {
    pub(crate) arity: usize,
}

/// Incremental resolver.
///
/// The classic entry point [`resolve`] drives it over a whole parsed
/// program; the streaming entry point ([`crate::stream::resolve_streaming`])
/// drives the same passes one chunk at a time:
///
/// 1. declare every global and every procedure signature
///    ([`Resolver::declare_global`] / [`Resolver::declare_proc`]);
/// 2. resolve each body against the signature table
///    ([`Resolver::resolve_proc_body`]) — the source AST of a body can be
///    dropped as soon as its resolved [`Proc`] exists;
/// 3. run the whole-module fixpoint and checks ([`Resolver::finish`]).
pub(crate) struct Resolver {
    diags: Diagnostics,
    globals: Vec<GlobalInfo>,
    global_ids: HashMap<String, GlobalId>,
    proc_ids: HashMap<String, ProcId>,
    sigs: Vec<ProcSig>,
}

struct ProcCtx {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
    formals: Vec<VarId>,
}

impl ProcCtx {
    /// Looks up `name`, creating a local (or importing a global) on demand.
    fn lookup(
        &mut self,
        name: &str,
        globals: &HashMap<String, GlobalId>,
        global_infos: &[GlobalInfo],
    ) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let id = VarId::from(self.vars.len());
        let info = if let Some(&g) = globals.get(name) {
            let gi = &global_infos[g.index()];
            VarInfo {
                name: name.to_owned(),
                kind: VarKind::Global(g),
                is_array: gi.is_array(),
                array_len: gi.array_len,
            }
        } else {
            VarInfo {
                name: name.to_owned(),
                kind: VarKind::Local,
                is_array: false,
                array_len: None,
            }
        };
        self.vars.push(info);
        self.by_name.insert(name.to_owned(), id);
        id
    }
}

impl Resolver {
    pub(crate) fn new() -> Self {
        Resolver {
            diags: Diagnostics::new(),
            globals: Vec::new(),
            global_ids: HashMap::new(),
            proc_ids: HashMap::new(),
            sigs: Vec::new(),
        }
    }

    /// Pass 0, global half: registers one module-level declaration.
    pub(crate) fn declare_global(&mut self, g: &ast::GlobalDecl) {
        if self.global_ids.contains_key(&g.name) {
            self.diags
                .error(format!("duplicate global `{}`", g.name), g.span);
            return;
        }
        let id = GlobalId::from(self.globals.len());
        self.global_ids.insert(g.name.clone(), id);
        self.globals.push(GlobalInfo {
            name: g.name.clone(),
            array_len: g.array_len,
        });
    }

    /// Pass 0, procedure half: registers one signature. Signatures get
    /// consecutive [`ProcId`]s in declaration order — a duplicate name
    /// still occupies its slot so ids stay aligned with body order.
    pub(crate) fn declare_proc(&mut self, name: &str, arity: usize, span: Span) {
        let id = ProcId::from(self.sigs.len());
        if self.proc_ids.contains_key(name) {
            self.diags
                .error(format!("duplicate procedure `{name}`"), span);
        } else {
            self.proc_ids.insert(name.to_owned(), id);
        }
        if self.global_ids.contains_key(name) {
            self.diags.error(
                format!("procedure `{name}` shadows a global of the same name"),
                span,
            );
        }
        self.sigs.push(ProcSig { arity });
    }

    /// Pass 2: the whole-module array-ness fixpoint, call-site checks,
    /// and the entry-procedure rule. Consumes the resolver.
    pub(crate) fn finish(mut self, mut procs: Vec<Proc>) -> Result<Module, Diagnostics> {
        self.infer_formal_arrays(&mut procs);
        self.check_call_sites(&procs);

        let entry = match self.proc_ids.get("main") {
            Some(&id) => {
                if !procs[id.index()].formals.is_empty() {
                    self.diags
                        .error("`main` must take no parameters", procs[id.index()].span);
                }
                id
            }
            None => {
                self.diags
                    .error("program has no `main` procedure", Span::dummy());
                ProcId(0)
            }
        };

        let module = Module {
            globals: self.globals,
            procs,
            entry,
        };
        self.diags.into_result(module)
    }

    /// Merges diagnostics produced outside the resolver (chunk parse
    /// errors in the streaming path) so one report carries everything.
    pub(crate) fn absorb_diags(&mut self, diags: Diagnostics) {
        self.diags.extend(diags);
    }

    /// Consumes the resolver, yielding its accumulated diagnostics (the
    /// streaming path's early-exit when chunks failed to parse).
    pub(crate) fn into_diags(self) -> Diagnostics {
        self.diags
    }

    /// Pass 1: resolves one procedure body against the signature table.
    pub(crate) fn resolve_proc_body(&mut self, id: ProcId, p: &ast::ProcDecl) -> Proc {
        let mut ctx = ProcCtx {
            vars: Vec::new(),
            by_name: HashMap::new(),
            formals: Vec::new(),
        };
        for (i, (name, span)) in p.params.iter().enumerate() {
            if ctx.by_name.contains_key(name) {
                self.diags
                    .error(format!("duplicate parameter `{name}`"), *span);
                continue;
            }
            if self.global_ids.contains_key(name) {
                self.diags.error(
                    format!("parameter `{name}` shadows a global of the same name"),
                    *span,
                );
            }
            let v = VarId::from(ctx.vars.len());
            ctx.vars.push(VarInfo {
                name: name.clone(),
                kind: VarKind::Formal(i),
                is_array: false, // refined by use and by the later fixpoint
                array_len: None,
            });
            ctx.by_name.insert(name.clone(), v);
            ctx.formals.push(v);
        }
        let body = self.resolve_block(&mut ctx, &p.body);
        // FORTRAN COMMON model: every procedure can see every scalar
        // global, whether or not it names it. Importing them all gives the
        // analyses a uniform view (call sites transmit a value for every
        // scalar global, and MOD kills apply to them in every caller).
        for (gi, g) in self.globals.iter().enumerate() {
            if g.is_array() || ctx.by_name.contains_key(&g.name) {
                continue;
            }
            let v = VarId::from(ctx.vars.len());
            ctx.vars.push(VarInfo {
                name: g.name.clone(),
                kind: VarKind::Global(GlobalId::from(gi)),
                is_array: false,
                array_len: None,
            });
            ctx.by_name.insert(g.name.clone(), v);
        }
        Proc {
            name: p.name.clone(),
            id,
            vars: ctx.vars,
            formals: ctx.formals,
            body,
            span: p.span,
        }
    }

    fn resolve_block(&mut self, ctx: &mut ProcCtx, b: &ast::Block) -> Block {
        let mut out = Block::default();
        for s in &b.stmts {
            if let Some(rs) = self.resolve_stmt(ctx, s) {
                out.stmts.push(rs);
            }
        }
        out
    }

    fn mark_array_use(&mut self, ctx: &mut ProcCtx, v: VarId, span: Span) {
        let info = &mut ctx.vars[v.index()];
        if info.is_array {
            return;
        }
        match info.kind {
            VarKind::Formal(_) => info.is_array = true,
            VarKind::Local if info.array_len.is_none() => {
                self.diags.error(
                    format!("`{}` indexed but never declared with `array`", info.name),
                    span,
                );
            }
            _ => {
                self.diags
                    .error(format!("`{}` is a scalar, not an array", info.name), span);
            }
        }
    }

    fn mark_scalar_use(&mut self, ctx: &mut ProcCtx, v: VarId, span: Span) {
        let info = &ctx.vars[v.index()];
        if info.is_array {
            self.diags.error(
                format!("array `{}` used where a scalar is required", info.name),
                span,
            );
        }
    }

    fn resolve_expr(&mut self, ctx: &mut ProcCtx, e: &ast::Expr) -> Expr {
        match e {
            ast::Expr::Const { value, span } => Expr::Const(*value, *span),
            ast::Expr::Var { name, span } => {
                let v = ctx.lookup(name, &self.global_ids, &self.globals);
                self.mark_scalar_use(ctx, v, *span);
                Expr::Var(v, *span)
            }
            ast::Expr::Load { name, index, span } => {
                let v = ctx.lookup(name, &self.global_ids, &self.globals);
                self.mark_array_use(ctx, v, *span);
                let idx = self.resolve_expr(ctx, index);
                Expr::Load(v, Box::new(idx), *span)
            }
            ast::Expr::Unary { op, operand, span } => {
                Expr::Unary(*op, Box::new(self.resolve_expr(ctx, operand)), *span)
            }
            ast::Expr::Binary { op, lhs, rhs, span } => Expr::Binary(
                *op,
                Box::new(self.resolve_expr(ctx, lhs)),
                Box::new(self.resolve_expr(ctx, rhs)),
                *span,
            ),
        }
    }

    fn resolve_stmt(&mut self, ctx: &mut ProcCtx, s: &ast::Stmt) -> Option<Stmt> {
        Some(match s {
            ast::Stmt::ArrayDecl { name, len, span } => {
                if let Some(&existing) = ctx.by_name.get(name) {
                    let info = &ctx.vars[existing.index()];
                    self.diags.error(
                        format!(
                            "`{name}` already declared as {}",
                            if info.is_array {
                                "an array"
                            } else {
                                "a scalar"
                            }
                        ),
                        *span,
                    );
                } else {
                    let v = VarId::from(ctx.vars.len());
                    ctx.vars.push(VarInfo {
                        name: name.clone(),
                        kind: VarKind::Local,
                        is_array: true,
                        array_len: Some(*len),
                    });
                    ctx.by_name.insert(name.clone(), v);
                }
                return None; // declarations carry no runtime behaviour
            }
            ast::Stmt::Assign { name, value, span } => {
                let value = self.resolve_expr(ctx, value);
                let v = ctx.lookup(name, &self.global_ids, &self.globals);
                self.mark_scalar_use(ctx, v, *span);
                Stmt::Assign(v, value, *span)
            }
            ast::Stmt::Store {
                name,
                index,
                value,
                span,
            } => {
                let v = ctx.lookup(name, &self.global_ids, &self.globals);
                self.mark_array_use(ctx, v, *span);
                let index = self.resolve_expr(ctx, index);
                let value = self.resolve_expr(ctx, value);
                Stmt::Store(v, index, value, *span)
            }
            ast::Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let cond = self.resolve_expr(ctx, cond);
                let t = self.resolve_block(ctx, then_blk);
                let e = self.resolve_block(ctx, else_blk);
                Stmt::If(cond, t, e, *span)
            }
            ast::Stmt::While { cond, body, span } => {
                let cond = self.resolve_expr(ctx, cond);
                let body = self.resolve_block(ctx, body);
                Stmt::While(cond, body, *span)
            }
            ast::Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let v = ctx.lookup(var, &self.global_ids, &self.globals);
                self.mark_scalar_use(ctx, v, *span);
                let lo = self.resolve_expr(ctx, lo);
                let hi = self.resolve_expr(ctx, hi);
                let step = step.as_ref().map(|s| self.resolve_expr(ctx, s));
                let body = self.resolve_block(ctx, body);
                Stmt::Do {
                    var: v,
                    lo,
                    hi,
                    step,
                    body,
                    span: *span,
                }
            }
            ast::Stmt::Call { callee, args, span } => {
                let Some(&pid) = self.proc_ids.get(callee) else {
                    self.diags
                        .error(format!("call to unknown procedure `{callee}`"), *span);
                    return None;
                };
                let expected = self.sigs[pid.index()].arity;
                if args.len() != expected {
                    self.diags.error(
                        format!(
                            "`{callee}` expects {expected} argument{}, got {}",
                            if expected == 1 { "" } else { "s" },
                            args.len()
                        ),
                        *span,
                    );
                }
                let mut rargs = Vec::new();
                for a in args {
                    let ra = match a {
                        ast::Expr::Var { name, span } => {
                            let v = ctx.lookup(name, &self.global_ids, &self.globals);
                            if ctx.vars[v.index()].is_array {
                                Arg::Array(v, *span)
                            } else {
                                Arg::Scalar(v, *span)
                            }
                        }
                        other => Arg::Value(self.resolve_expr(ctx, other)),
                    };
                    rargs.push(ra);
                }
                Stmt::Call(pid, rargs, *span)
            }
            ast::Stmt::Return { span } => Stmt::Return(*span),
            ast::Stmt::Read { name, span } => {
                let v = ctx.lookup(name, &self.global_ids, &self.globals);
                self.mark_scalar_use(ctx, v, *span);
                Stmt::Read(v, *span)
            }
            ast::Stmt::Print { value, span } => Stmt::Print(self.resolve_expr(ctx, value), *span),
        })
    }

    /// Propagates array-ness from formals used as arrays to the actuals
    /// bound to them, transitively, until nothing changes.
    fn infer_formal_arrays(&mut self, procs: &mut [Proc]) {
        loop {
            let mut changed = false;
            // Collect (proc, var) pairs that must become arrays.
            let mut promote: Vec<(usize, VarId)> = Vec::new();
            for (pi, p) in procs.iter().enumerate() {
                each_call(&p.body, &mut |callee, args, _| {
                    let cp = &procs[callee.index()];
                    for (ai, arg) in args.iter().enumerate() {
                        let Some(&fv) = cp.formals.get(ai) else {
                            continue;
                        };
                        if !cp.var(fv).is_array {
                            continue;
                        }
                        if let Arg::Scalar(v, _) = arg {
                            if !p.var(*v).is_array {
                                promote.push((pi, *v));
                            }
                        }
                    }
                });
            }
            for (pi, v) in promote {
                let info = &mut procs[pi].vars[v.index()];
                // Non-formals are reported in `check_call_sites`.
                if !info.is_array && info.is_formal() {
                    info.is_array = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Re-tag Scalar args that now name arrays.
        for p in procs.iter_mut() {
            let vars = p.vars.clone();
            retag_args(&mut p.body, &vars);
        }
    }

    fn check_call_sites(&mut self, procs: &[Proc]) {
        let mut errors: Vec<(String, Span)> = Vec::new();
        for p in procs {
            each_call(&p.body, &mut |callee, args, span| {
                let cp = &procs[callee.index()];
                for (ai, arg) in args.iter().enumerate() {
                    let Some(&fv) = cp.formals.get(ai) else {
                        continue;
                    };
                    let formal_is_array = cp.var(fv).is_array;
                    let actual_is_array = matches!(arg, Arg::Array(..));
                    if formal_is_array && !actual_is_array {
                        errors.push((
                            format!(
                                "argument {} of call to `{}` must be an array (formal `{}` is indexed)",
                                ai + 1,
                                cp.name,
                                cp.var(fv).name
                            ),
                            span,
                        ));
                    } else if !formal_is_array && actual_is_array {
                        errors.push((
                            format!(
                                "argument {} of call to `{}` is an array but formal `{}` is a scalar",
                                ai + 1,
                                cp.name,
                                cp.var(fv).name
                            ),
                            span,
                        ));
                    }
                }
            });
        }
        for (msg, span) in errors {
            self.diags.error(msg, span);
        }
    }
}

/// The layout of a procedure's *entry slots*: the values the
/// interprocedural analysis tracks on entry to each procedure.
///
/// Slot `i < arity` is the `i`-th formal parameter; slot `arity + j` is the
/// `j`-th **scalar** global (array globals and array formals carry no
/// constant value). The same layout is used by the interpreter's entry
/// trace and by the `ipcp` solver's `VAL` vectors, which is what makes the
/// soundness tests a direct index-by-index comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotLayout {
    /// Scalar globals in slot order.
    pub scalar_globals: Vec<GlobalId>,
    /// Interner backing the precomputed slot-name table.
    names: crate::names::Names,
    /// `slot_ids[p][slot]` is the interned name of slot `slot` of
    /// procedure `p`. Built once in [`SlotLayout::new`] so the explain /
    /// display hot paths never allocate per query.
    slot_ids: Vec<Vec<crate::names::NameId>>,
}

impl SlotLayout {
    /// Builds the layout for `module`, including the per-procedure
    /// slot-name table.
    pub fn new(module: &Module) -> Self {
        let scalar_globals = module.scalar_global_ids();
        let mut names = crate::names::Names::new();
        let slot_ids = module
            .procs
            .iter()
            .map(|proc| {
                let mut ids = Vec::with_capacity(proc.arity() + scalar_globals.len());
                for &fv in &proc.formals {
                    ids.push(names.intern(&proc.var(fv).name));
                }
                for g in &scalar_globals {
                    ids.push(names.intern(&module.globals[g.index()].name));
                }
                ids
            })
            .collect();
        SlotLayout {
            scalar_globals,
            names,
            slot_ids,
        }
    }

    /// Number of slots for a procedure with `arity` formals.
    pub fn n_slots(&self, arity: usize) -> usize {
        arity + self.scalar_globals.len()
    }

    /// The slot index of formal `i` (identity, for symmetry).
    pub fn formal_slot(&self, i: usize) -> usize {
        i
    }

    /// The slot index of global `g`, if `g` is a tracked scalar global.
    pub fn global_slot(&self, arity: usize, g: GlobalId) -> Option<usize> {
        self.scalar_globals
            .iter()
            .position(|&x| x == g)
            .map(|j| arity + j)
    }

    /// Human-readable name of slot `i` of procedure `p`.
    ///
    /// Served from the table precomputed in [`SlotLayout::new`] — no
    /// allocation per query. The `module` argument is kept so call sites
    /// read naturally and the signature can fall back to recomputation if
    /// the table ever becomes optional; it is not consulted today.
    pub fn slot_name(&self, _module: &Module, p: ProcId, slot: usize) -> &str {
        self.names.resolve(self.slot_ids[p.index()][slot])
    }

    /// Interned id of slot `slot` of procedure `p` (resolve via
    /// [`SlotLayout::names`]).
    pub fn slot_name_id(&self, p: ProcId, slot: usize) -> crate::names::NameId {
        self.slot_ids[p.index()][slot]
    }

    /// The interner backing [`SlotLayout::slot_name`].
    pub fn names(&self) -> &crate::names::Names {
        &self.names
    }
}

/// Walks every call statement in a block (recursively).
pub fn each_call(b: &Block, f: &mut impl FnMut(ProcId, &[Arg], Span)) {
    for s in &b.stmts {
        match s {
            Stmt::Call(callee, args, span) => f(*callee, args, *span),
            Stmt::If(_, t, e, _) => {
                each_call(t, f);
                each_call(e, f);
            }
            Stmt::While(_, body, _) | Stmt::Do { body, .. } => each_call(body, f),
            _ => {}
        }
    }
}

fn retag_args(b: &mut Block, vars: &[VarInfo]) {
    for s in &mut b.stmts {
        match s {
            Stmt::Call(_, args, _) => {
                for a in args {
                    if let Arg::Scalar(v, sp) = *a {
                        if vars[v.index()].is_array {
                            *a = Arg::Array(v, sp);
                        }
                    }
                }
            }
            Stmt::If(_, t, e, _) => {
                retag_args(t, vars);
                retag_args(e, vars);
            }
            Stmt::While(_, body, _) | Stmt::Do { body, .. } => retag_args(body, vars),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_resolve;

    #[test]
    fn resolves_globals_formals_and_locals() {
        let m = parse_and_resolve("global g; proc main() { call f(1); } proc f(a) { x = a + g; }")
            .unwrap();
        let f = m.proc_named("f").unwrap();
        assert_eq!(f.arity(), 1);
        let a = f.var_named("a").unwrap();
        assert_eq!(f.var(a).kind, VarKind::Formal(0));
        let x = f.var_named("x").unwrap();
        assert_eq!(f.var(x).kind, VarKind::Local);
        let g = f.var_named("g").unwrap();
        assert_eq!(f.var(g).kind, VarKind::Global(GlobalId(0)));
    }

    #[test]
    fn missing_main_is_an_error() {
        let err = parse_and_resolve("proc helper() { }").unwrap_err();
        assert!(err.to_string().contains("no `main`"));
    }

    #[test]
    fn main_with_params_is_an_error() {
        assert!(parse_and_resolve("proc main(x) { }").is_err());
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let err = parse_and_resolve("proc main() { call nope(); }").unwrap_err();
        assert!(err.to_string().contains("unknown procedure"));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let err = parse_and_resolve("proc main() { call f(1, 2); } proc f(a) { }").unwrap_err();
        assert!(err.to_string().contains("expects 1 argument"));
    }

    #[test]
    fn scalar_indexed_without_decl_is_an_error() {
        let err = parse_and_resolve("proc main() { x = 1; y = x[0]; }").unwrap_err();
        assert!(err.to_string().contains("never declared with `array`"));
    }

    #[test]
    fn array_used_as_scalar_is_an_error() {
        let err = parse_and_resolve("proc main() { array a[4]; x = a + 1; }").unwrap_err();
        assert!(err.to_string().contains("used where a scalar"));
    }

    #[test]
    fn formal_arrayness_inferred_from_indexing() {
        let m = parse_and_resolve(
            "proc main() { array buf[8]; call fill(buf, 8); } proc fill(b, n) { do i = 0, n - 1 { b[i] = 0; } }",
        )
        .unwrap();
        let fill = m.proc_named("fill").unwrap();
        assert!(fill.var(fill.formals[0]).is_array);
        assert!(!fill.var(fill.formals[1]).is_array);
    }

    #[test]
    fn formal_arrayness_propagates_through_wrappers() {
        let m = parse_and_resolve(
            "proc main() { array buf[8]; call outer(buf); } \
             proc outer(b) { call inner(b); } \
             proc inner(c) { c[0] = 1; }",
        )
        .unwrap();
        let outer = m.proc_named("outer").unwrap();
        assert!(outer.var(outer.formals[0]).is_array);
        // And the call argument was re-tagged as an array pass.
        let mut saw_array_arg = false;
        each_call(&outer.body, &mut |_, args, _| {
            saw_array_arg |= matches!(args[0], Arg::Array(..));
        });
        assert!(saw_array_arg);
    }

    #[test]
    fn passing_scalar_where_array_expected_is_an_error() {
        let err = parse_and_resolve("proc main() { x = 1; call f(x); } proc f(b) { b[0] = 1; }")
            .unwrap_err();
        assert!(err.to_string().contains("must be an array"));
    }

    #[test]
    fn passing_array_where_scalar_expected_is_an_error() {
        let err =
            parse_and_resolve("proc main() { array a[4]; call f(a); } proc f(x) { y = x + 1; }")
                .unwrap_err();
        assert!(err.to_string().contains("is an array but formal"));
    }

    #[test]
    fn duplicate_names_are_errors() {
        assert!(parse_and_resolve("global g; global g; proc main() { }").is_err());
        assert!(parse_and_resolve("proc main() { } proc f() { } proc f() { }").is_err());
        assert!(parse_and_resolve("proc main() { } proc f(a, a) { }").is_err());
    }

    #[test]
    fn literal_detection_on_args() {
        let m =
            parse_and_resolve("proc main() { x = 2; call f(1, x, x + 1); } proc f(a, b, c) { }")
                .unwrap();
        let main = m.proc(m.entry);
        each_call(&main.body, &mut |_, args, _| {
            assert_eq!(args[0].literal(), Some(1));
            assert_eq!(args[1].literal(), None);
            assert_eq!(args[2].literal(), None);
        });
    }

    #[test]
    fn to_source_round_trips_through_resolution() {
        let src = "global g;\n\nproc main() {\n    array t[4];\n    g = 1;\n    t[0] = g;\n    call f(t, g);\n}\n\nproc f(b, n) {\n    b[n] = n;\n}\n";
        let m1 = parse_and_resolve(src).unwrap();
        let printed = m1.to_source();
        let m2 = parse_and_resolve(&printed).unwrap();
        assert_eq!(printed, m2.to_source());
    }
}
