//! Cooper–Kennedy style flow-insensitive MOD/REF summary analysis.
//!
//! `MOD(p)` answers: *which of `p`'s formal parameters and which globals
//! may be modified by an invocation of `p`* — including modifications made
//! by procedures `p` (transitively) calls, transmitted back through
//! by-reference parameter bindings. `REF(p)` is the analogous may-use set.
//!
//! The jump-function generator consults MOD at every call site: a variable
//! *not* killed by a call keeps its known value across the call. The 1993
//! study measured the value of this information by disabling it (Table 3):
//! without MOD, every call kills every global and every by-reference
//! actual — implemented here by [`worst_case_killed`].

use crate::callgraph::CallGraph;
use ipcp_ir::cfg::{CStmt, ModuleCfg};
use ipcp_ir::program::{Arg, GlobalId, ProcId, VarId, VarKind};
use std::fmt;

/// A per-procedure summary set over formals and globals.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ModSet {
    /// `formals[i]` — formal `i` may be affected.
    pub formals: Vec<bool>,
    /// `globals[g]` — global `g` may be affected (indexed by [`GlobalId`]).
    pub globals: Vec<bool>,
}

impl ModSet {
    fn new(arity: usize, n_globals: usize) -> Self {
        ModSet {
            formals: vec![false; arity],
            globals: vec![false; n_globals],
        }
    }

    /// The worst-case summary: every formal and every global is affected.
    /// This is what a quarantined procedure's summary widens to — sound
    /// for any behaviour the procedure could have.
    pub fn everything(arity: usize, n_globals: usize) -> Self {
        ModSet {
            formals: vec![true; arity],
            globals: vec![true; n_globals],
        }
    }

    /// Whether formal `i` is in the set.
    pub fn formal(&self, i: usize) -> bool {
        self.formals.get(i).copied().unwrap_or(false)
    }

    /// Whether global `g` is in the set.
    pub fn global(&self, g: GlobalId) -> bool {
        self.globals.get(g.index()).copied().unwrap_or(false)
    }

    /// Number of members (for reporting).
    pub fn len(&self) -> usize {
        self.formals.iter().filter(|&&b| b).count() + self.globals.iter().filter(|&&b| b).count()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_formal(&mut self, i: usize) -> bool {
        if self.formals.get(i).copied().unwrap_or(true) {
            return false;
        }
        self.formals[i] = true;
        true
    }

    fn set_global(&mut self, g: GlobalId) -> bool {
        if self.globals[g.index()] {
            return false;
        }
        self.globals[g.index()] = true;
        true
    }
}

impl fmt::Display for ModSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let formals: Vec<String> = self
            .formals
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| format!("f{i}"))
            .collect();
        let globals: Vec<String> = self
            .globals
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(g, _)| format!("g{g}"))
            .collect();
        write!(f, "{{{}}}", [formals, globals].concat().join(", "))
    }
}

/// MOD and REF summaries for every procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModRef {
    mods: Vec<ModSet>,
    refs: Vec<ModSet>,
}

impl ModRef {
    /// The MOD set of procedure `p`.
    pub fn mod_of(&self, p: ProcId) -> &ModSet {
        &self.mods[p.index()]
    }

    /// The REF set of procedure `p`.
    pub fn ref_of(&self, p: ProcId) -> &ModSet {
        &self.refs[p.index()]
    }

    /// The caller-side variables a specific call may modify, given the
    /// callee's MOD set: by-reference actuals bound to modified formals,
    /// plus the caller's aliases of modified globals.
    ///
    /// Returned `VarId`s are in the *caller's* symbol table. Globals the
    /// caller never mentions by name cannot appear (they have no caller
    /// `VarId`), which is harmless: the caller's code cannot read them
    /// either.
    pub fn killed_by_call(
        &self,
        mcfg: &ModuleCfg,
        caller: ProcId,
        callee: ProcId,
        args: &[Arg],
    ) -> Vec<VarId> {
        let m = self.mod_of(callee);
        let mut killed = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if m.formal(i) {
                match arg {
                    Arg::Scalar(v, _) | Arg::Array(v, _) => killed.push(*v),
                    Arg::Value(_) => {} // copy-in only; caller unaffected
                }
            }
        }
        let cp = mcfg.module.proc(caller);
        for (vi, info) in cp.vars.iter().enumerate() {
            if let VarKind::Global(g) = info.kind {
                if m.global(g) {
                    let v = VarId::from(vi);
                    if !killed.contains(&v) {
                        killed.push(v);
                    }
                }
            }
        }
        killed
    }
}

/// The no-MOD-information kill set: every by-reference actual and every
/// global alias in the caller (Table 3, column 1 behaviour).
pub fn worst_case_killed(mcfg: &ModuleCfg, caller: ProcId, args: &[Arg]) -> Vec<VarId> {
    let mut killed = Vec::new();
    for arg in args {
        match arg {
            Arg::Scalar(v, _) | Arg::Array(v, _) => killed.push(*v),
            Arg::Value(_) => {}
        }
    }
    let cp = mcfg.module.proc(caller);
    for (vi, info) in cp.vars.iter().enumerate() {
        if info.is_global() {
            let v = VarId::from(vi);
            if !killed.contains(&v) {
                killed.push(v);
            }
        }
    }
    killed
}

/// Computes MOD and REF for every procedure by iterating direct effects
/// through the call graph to a fixpoint.
///
/// The lattice is finite (one bit per formal/global per procedure) and the
/// transfer is monotone, so the worklist terminates.
///
/// ```
/// use ipcp_ir::{parse_and_resolve, lower_module};
/// use ipcp_analysis::{build_call_graph, compute_modref};
/// let m = lower_module(&parse_and_resolve(
///     "global g; proc main() { x = 1; call f(x); } proc f(a) { a = 2; g = 3; }",
/// )?);
/// let cg = build_call_graph(&m);
/// let mr = compute_modref(&m, &cg);
/// let f = m.module.proc_named("f").unwrap().id;
/// assert!(mr.mod_of(f).formal(0));
/// assert!(mr.mod_of(f).global(ipcp_ir::program::GlobalId(0)));
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn compute_modref(mcfg: &ModuleCfg, cg: &CallGraph) -> ModRef {
    let mut mods = Vec::new();
    let mut refs = Vec::new();
    for p in &mcfg.module.procs {
        let (m, r) = direct_effects(mcfg, p.id);
        mods.push(m);
        refs.push(r);
    }
    propagate_modref(mcfg, cg, mods, refs)
}

/// The direct (intraprocedural) MOD and REF effects of one procedure —
/// the per-procedure unit of work the pipeline runs under quarantine.
/// Call-edge propagation happens separately in [`propagate_modref`].
pub fn direct_effects(mcfg: &ModuleCfg, pid: ProcId) -> (ModSet, ModSet) {
    let n_globals = mcfg.module.globals.len();
    let p = mcfg.module.proc(pid);
    let mut m = ModSet::new(p.arity(), n_globals);
    let mut r = ModSet::new(p.arity(), n_globals);
    let mut note_def = |v: VarId| match p.var(v).kind {
        VarKind::Formal(i) => {
            m.set_formal(i);
        }
        VarKind::Global(g) => {
            m.set_global(g);
        }
        VarKind::Local => {}
    };
    let cfg = &mcfg.cfgs[p.id.index()];
    let reach = cfg.reachable();
    for (bi, blk) in cfg.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let note_use_expr = |e: &ipcp_ir::program::Expr, r: &mut ModSet| {
            e.for_each_var(&mut |v| match p.var(v).kind {
                VarKind::Formal(i) => {
                    r.set_formal(i);
                }
                VarKind::Global(g) => {
                    r.set_global(g);
                }
                VarKind::Local => {}
            });
            // Array loads reference the array itself too.
            note_array_refs(e, p, r);
        };
        for s in &blk.stmts {
            match s {
                CStmt::Assign { dst, value } => {
                    note_use_expr(value, &mut r);
                    note_def(*dst);
                }
                CStmt::Store {
                    array,
                    index,
                    value,
                } => {
                    note_use_expr(index, &mut r);
                    note_use_expr(value, &mut r);
                    note_def(*array);
                }
                CStmt::Read { dst } => note_def(*dst),
                CStmt::Print { value } => note_use_expr(value, &mut r),
                CStmt::Call { args, .. } => {
                    // By-value argument expressions are caller-side uses.
                    for a in args {
                        if let Arg::Value(e) = a {
                            note_use_expr(e, &mut r);
                        }
                    }
                }
            }
        }
        if let ipcp_ir::cfg::Terminator::Branch { cond, .. } = &blk.term {
            note_use_expr(cond, &mut r);
        }
    }
    (m, r)
}

/// Iterates per-procedure direct effects through the call graph to a
/// fixpoint. `mods`/`refs` are indexed by procedure; a quarantined
/// procedure's entries arrive pre-widened to [`ModSet::everything`] and
/// the fixpoint soundly spreads that through reference bindings.
pub fn propagate_modref(
    mcfg: &ModuleCfg,
    cg: &CallGraph,
    mut mods: Vec<ModSet>,
    mut refs: Vec<ModSet>,
) -> ModRef {
    let n_globals = mcfg.module.globals.len();
    let mut changed = true;
    while changed {
        changed = false;
        for e in &cg.edges {
            let caller = mcfg.module.proc(e.caller);
            // Split-borrow via index cloning: read the callee summary,
            // update the caller summary.
            let callee_mod = mods[e.callee.index()].clone();
            let callee_ref = refs[e.callee.index()].clone();
            let mut args_of_edge = None;
            mcfg.each_call_in(e.caller, |_, site, _, args| {
                if site == e.site {
                    args_of_edge = Some(args.to_vec());
                }
            });
            // Every call-graph edge is built from a call statement, so the
            // lookup can only miss if the CFG and graph disagree — in which
            // case the edge transmits nothing.
            let Some(args) = args_of_edge else { continue };

            for (i, arg) in args.iter().enumerate() {
                let affected_mod = callee_mod.formal(i);
                let affected_ref = callee_ref.formal(i);
                match arg {
                    Arg::Scalar(v, _) | Arg::Array(v, _) => match caller.var(*v).kind {
                        VarKind::Formal(j) => {
                            if affected_mod {
                                changed |= mods[e.caller.index()].set_formal(j);
                            }
                            if affected_ref {
                                changed |= refs[e.caller.index()].set_formal(j);
                            }
                        }
                        VarKind::Global(g) => {
                            if affected_mod {
                                changed |= mods[e.caller.index()].set_global(g);
                            }
                            if affected_ref {
                                changed |= refs[e.caller.index()].set_global(g);
                            }
                        }
                        VarKind::Local => {}
                    },
                    Arg::Value(_) => {}
                }
            }
            for g in 0..n_globals {
                let gid = GlobalId::from(g);
                if callee_mod.global(gid) {
                    changed |= mods[e.caller.index()].set_global(gid);
                }
                if callee_ref.global(gid) {
                    changed |= refs[e.caller.index()].set_global(gid);
                }
            }
        }
    }

    ModRef { mods, refs }
}

fn note_array_refs(e: &ipcp_ir::program::Expr, p: &ipcp_ir::program::Proc, r: &mut ModSet) {
    use ipcp_ir::program::Expr;
    match e {
        Expr::Load(v, idx, _) => {
            match p.var(*v).kind {
                VarKind::Formal(i) => {
                    r.set_formal(i);
                }
                VarKind::Global(g) => {
                    r.set_global(g);
                }
                VarKind::Local => {}
            }
            note_array_refs(idx, p, r);
        }
        Expr::Unary(_, x, _) => note_array_refs(x, p, r),
        Expr::Binary(_, l, rr, _) => {
            note_array_refs(l, p, r);
            note_array_refs(rr, p, r);
        }
        Expr::Const(..) | Expr::Var(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_call_graph;
    use ipcp_ir::{lower_module, parse_and_resolve, ModuleCfg};

    fn analyze(src: &str) -> (ModuleCfg, CallGraph, ModRef) {
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = build_call_graph(&m);
        let mr = compute_modref(&m, &cg);
        (m, cg, mr)
    }

    fn pid(m: &ModuleCfg, name: &str) -> ProcId {
        m.module.proc_named(name).unwrap().id
    }

    #[test]
    fn direct_assignment_to_formal_is_mod() {
        let (m, _, mr) = analyze("proc main() { x = 0; call f(x); } proc f(a) { a = 1; }");
        assert!(mr.mod_of(pid(&m, "f")).formal(0));
    }

    #[test]
    fn unmodified_formal_is_not_mod() {
        let (m, _, mr) =
            analyze("proc main() { x = 0; call f(x); } proc f(a) { y = a + 1; print y; }");
        let f = pid(&m, "f");
        assert!(!mr.mod_of(f).formal(0));
        assert!(mr.ref_of(f).formal(0));
    }

    #[test]
    fn global_assignment_is_mod() {
        let (m, _, mr) = analyze("global g; proc main() { call f(); } proc f() { g = 1; }");
        assert!(mr.mod_of(pid(&m, "f")).global(GlobalId(0)));
        // ...and propagates up to the caller.
        assert!(mr.mod_of(pid(&m, "main")).global(GlobalId(0)));
    }

    #[test]
    fn mod_propagates_through_reference_binding() {
        let (m, _, mr) = analyze(
            "proc main() { x = 0; call outer(x); } \
             proc outer(a) { call inner(a); } \
             proc inner(b) { b = 7; }",
        );
        assert!(mr.mod_of(pid(&m, "outer")).formal(0));
        assert!(mr.mod_of(pid(&m, "inner")).formal(0));
    }

    #[test]
    fn by_value_binding_blocks_mod_propagation() {
        let (m, _, mr) = analyze(
            "proc main() { x = 0; call outer(x); } \
             proc outer(a) { call inner(a + 0); } \
             proc inner(b) { b = 7; }",
        );
        assert!(!mr.mod_of(pid(&m, "outer")).formal(0));
    }

    #[test]
    fn array_store_marks_array_formal() {
        let (m, _, mr) = analyze("proc main() { array t[4]; call f(t); } proc f(b) { b[0] = 1; }");
        assert!(mr.mod_of(pid(&m, "f")).formal(0));
    }

    #[test]
    fn read_statement_is_a_mod() {
        let (m, _, mr) = analyze("global g; proc main() { call f(); } proc f() { read g; }");
        assert!(mr.mod_of(pid(&m, "f")).global(GlobalId(0)));
    }

    #[test]
    fn recursive_mod_reaches_fixpoint() {
        let (m, _, mr) = analyze(
            "global g; proc main() { call even(3); } \
             proc even(n) { if (n > 0) { m = n - 1; call odd(m); } } \
             proc odd(n) { g = g + 1; if (n > 0) { m = n - 1; call even(m); } }",
        );
        assert!(mr.mod_of(pid(&m, "even")).global(GlobalId(0)));
        assert!(mr.mod_of(pid(&m, "odd")).global(GlobalId(0)));
    }

    #[test]
    fn killed_by_call_uses_mod_precision() {
        let (m, _, mr) = analyze(
            "global g; global h; \
             proc main() { x = 1; y = 2; call f(x, y); } \
             proc f(a, b) { a = 9; g = 1; print b; }",
        );
        let main = pid(&m, "main");
        let f = pid(&m, "f");
        let mp = m.module.proc(main);
        let mut killed = None;
        m.each_call_in(main, |_, _, callee, args| {
            assert_eq!(callee, f);
            killed = Some(mr.killed_by_call(&m, main, callee, args));
        });
        let killed = killed.unwrap();
        let name = |v: &VarId| mp.var(*v).name.clone();
        let mut names: Vec<String> = killed.iter().map(name).collect();
        names.sort();
        // x (bound to the modified formal a) and g (a modified global —
        // every procedure aliases every scalar global, COMMON-style).
        // y and h survive: f neither modifies its second formal nor h.
        assert_eq!(names, vec!["g", "x"]);
    }

    #[test]
    fn worst_case_kills_all_byref_and_globals() {
        let (m, _, _) = analyze(
            "global g; \
             proc main() { x = 1; g = 2; call f(x, 5); } \
             proc f(a, b) { }",
        );
        let main = pid(&m, "main");
        let mp = m.module.proc(main);
        let mut killed = None;
        m.each_call_in(main, |_, _, _, args| {
            killed = Some(worst_case_killed(&m, main, args));
        });
        let names: Vec<String> = killed
            .unwrap()
            .iter()
            .map(|v| mp.var(*v).name.clone())
            .collect();
        assert!(names.contains(&"x".to_string()));
        assert!(names.contains(&"g".to_string()));
        assert_eq!(names.len(), 2); // the by-value `5` kills nothing
    }

    #[test]
    fn refs_include_branch_conditions_and_indices() {
        let (m, _, mr) = analyze(
            "global g; proc main() { array t[4]; call f(t, 1); } \
             proc f(b, n) { if (g > 0) { print b[n]; } }",
        );
        let f = pid(&m, "f");
        assert!(mr.ref_of(f).global(GlobalId(0)));
        assert!(mr.ref_of(f).formal(0));
        assert!(mr.ref_of(f).formal(1));
        assert!(mr.mod_of(f).is_empty());
    }

    #[test]
    fn split_phases_agree_with_compute_modref() {
        let src = "global g; proc main() { x = 0; call f(x); } \
                   proc f(a) { a = 1; call h(); } proc h() { g = 2; }";
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = build_call_graph(&m);
        let (mods, refs): (Vec<_>, Vec<_>) = m
            .module
            .procs
            .iter()
            .map(|p| direct_effects(&m, p.id))
            .unzip();
        assert_eq!(
            propagate_modref(&m, &cg, mods, refs),
            compute_modref(&m, &cg)
        );
    }

    #[test]
    fn widened_summary_spreads_soundly_to_callers() {
        // Pretend f was quarantined: its summary widens to everything,
        // and propagation carries the widened effects up through the
        // by-reference binding and the globals.
        let src = "global g; proc main() { x = 0; call f(x); } proc f(a) { print a; }";
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let cg = build_call_graph(&m);
        let f = pid(&m, "f");
        let n_globals = m.module.globals.len();
        let (mut mods, mut refs): (Vec<_>, Vec<_>) = m
            .module
            .procs
            .iter()
            .map(|p| direct_effects(&m, p.id))
            .unzip();
        let arity = m.module.proc(f).arity();
        mods[f.index()] = ModSet::everything(arity, n_globals);
        refs[f.index()] = ModSet::everything(arity, n_globals);
        let mr = propagate_modref(&m, &cg, mods, refs);
        assert!(mr.mod_of(f).formal(0));
        assert!(mr.mod_of(f).global(GlobalId(0)));
        // main's x is a local, so no formal bit; but the global spread up.
        assert!(mr.mod_of(pid(&m, "main")).global(GlobalId(0)));
    }

    #[test]
    fn effects_in_unreachable_code_are_ignored() {
        let (m, _, mr) = analyze("global g; proc main() { call f(); } proc f() { return; g = 1; }");
        assert!(mr.mod_of(pid(&m, "f")).is_empty());
    }
}
