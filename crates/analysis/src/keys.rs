//! Content-hash summary keys for incremental re-analysis.
//!
//! The serve layer caches per-procedure summaries (MOD/REF direct
//! effects, return jump functions, symbolic forms) across requests. A
//! cache entry is reusable exactly when *every input* to the unit of work
//! that produced it is unchanged. This module derives, from per-procedure
//! content hashes and the call graph, a key per procedure that captures
//! those inputs:
//!
//! * [`SummaryKeys::own`] — the procedure's own (normalized) text. The
//!   MOD/REF *direct effects* of a procedure depend on nothing else.
//! * [`SummaryKeys::cone`] — a Merkle hash over the procedure's whole
//!   transitive callee cone, SCC-aware: every member of a strongly
//!   connected component folds the component's combined text into its
//!   key (members read each other's in-construction tables), and each
//!   component folds in the cones of the components it calls. Return
//!   jump functions and symbolic evaluation read callee summaries, so
//!   their cache keys hash the cone.
//!
//! The consequence that makes invalidation *exact*: editing procedure
//! `p` changes `own[p]`, hence the cone of `p`'s SCC, hence — and only —
//! the cone keys of `p`, its SCC siblings, and its transitive callers.
//! Everything outside that dependent set keeps its keys and its cached
//! summaries.
//!
//! Callers are expected to also mix a whole-program *shape* fingerprint
//! (ordered procedure and global names, plus the analysis configuration)
//! into every cache key, so adding/removing/reordering procedures or
//! globals — which renumbers `ProcId`s and entry slots — can never alias
//! an entry from a differently shaped program.

use crate::callgraph::CallGraph;
use ipcp_ir::hash::Fnv128;

/// Per-procedure cache-key material. Indexed by `ProcId` index.
#[derive(Clone, Debug)]
pub struct SummaryKeys {
    /// Hash of the procedure's own normalized text.
    pub own: Vec<u128>,
    /// SCC-aware Merkle hash of the procedure's transitive callee cone
    /// (including its own text).
    pub cone: Vec<u128>,
}

/// Computes [`SummaryKeys`] from per-procedure content hashes and the
/// call graph.
///
/// `own[i]` must be the content hash of procedure `i`'s normalized text.
/// The walk follows [`CallGraph::sccs`] — Tarjan emission order, callee
/// components first — so each component's Merkle hash can fold in the
/// already-final hashes of the components it calls.
pub fn summary_keys(cg: &CallGraph, own: &[u128]) -> SummaryKeys {
    let n_sccs = cg.sccs.len();
    let mut scc_cone = vec![0u128; n_sccs];
    for (si, members) in cg.sccs.iter().enumerate() {
        let mut h = Fnv128::new();
        // The component's combined text, in member order: an edit to any
        // member re-keys the whole component (members are analyzed
        // against each other's fresh tables, so that is exactly right).
        for &p in members {
            h.write_u128(own[p.index()]);
        }
        // The cones of callee components, in call-site order. Edge order
        // is deterministic (grouped by caller, call sites in program
        // order), so the fold is reproducible; duplicates are harmless.
        for &p in members {
            for e in cg.calls_from(p) {
                let cs = cg.scc_of[e.callee.index()];
                if cs != si {
                    h.write_u128(scc_cone[cs]);
                }
            }
        }
        scc_cone[si] = h.finish();
    }
    let cone = own
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            let mut h = Fnv128::new();
            h.write_u128(o);
            h.write_u128(scc_cone[cg.scc_of[i]]);
            h.finish()
        })
        .collect();
    SummaryKeys {
        own: own.to_vec(),
        cone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_call_graph;
    use ipcp_ir::hash::hash_str;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn keys_for(srcs: &[&str], whole: &str) -> SummaryKeys {
        let m = lower_module(&parse_and_resolve(whole).unwrap());
        let cg = build_call_graph(&m);
        let own: Vec<u128> = srcs.iter().map(|s| hash_str(s)).collect();
        assert_eq!(own.len(), m.module.procs.len());
        summary_keys(&cg, &own)
    }

    const MAIN: &str = "proc main() { call mid(1); }";
    const MID: &str = "proc mid(a) { call leaf(a); }";
    const LEAF: &str = "proc leaf(b) { print b; }";

    fn chain(leaf: &str) -> SummaryKeys {
        keys_for(&[MAIN, MID, leaf], &format!("{MAIN} {MID} {leaf}"))
    }

    #[test]
    fn editing_a_leaf_rekeys_exactly_its_transitive_callers() {
        let before = chain(LEAF);
        let after = chain("proc leaf(b) { print b + 1; }");
        // leaf's own hash changed; main/mid own hashes did not.
        assert_eq!(before.own[0], after.own[0]);
        assert_eq!(before.own[1], after.own[1]);
        assert_ne!(before.own[2], after.own[2]);
        // Every cone contains leaf, so every cone changed.
        for i in 0..3 {
            assert_ne!(before.cone[i], after.cone[i], "proc {i}");
        }
    }

    #[test]
    fn editing_the_root_leaves_callee_cones_alone() {
        let before = chain(LEAF);
        let edited_main = "proc main() { call mid(2); }";
        let after = keys_for(
            &[edited_main, MID, LEAF],
            &format!("{edited_main} {MID} {LEAF}"),
        );
        assert_ne!(before.cone[0], after.cone[0], "main changed");
        assert_eq!(before.cone[1], after.cone[1], "mid untouched");
        assert_eq!(before.cone[2], after.cone[2], "leaf untouched");
    }

    #[test]
    fn scc_members_share_fate() {
        let a = "proc main() { call f(3); }";
        let f = "proc f(x) { if (x) { call g(x - 1); } }";
        let g = "proc g(y) { call f(y); }";
        let h = "proc h(z) { print z; }";
        let before = keys_for(&[a, f, g, h], &format!("{a} {f} {g} {h}"));
        let g2 = "proc g(y) { call f(y - 1); }";
        let after = keys_for(&[a, f, g2, h], &format!("{a} {f} {g2} {h}"));
        // Editing g re-keys its SCC sibling f and caller main...
        assert_ne!(before.cone[0], after.cone[0], "main");
        assert_ne!(before.cone[1], after.cone[1], "f (SCC sibling)");
        assert_ne!(before.cone[2], after.cone[2], "g");
        // ...but not the unrelated h.
        assert_eq!(before.cone[3], after.cone[3], "h");
    }

    #[test]
    fn cones_fold_in_own_identity() {
        // Two procedures calling the same callee must not share a cone.
        let src = "proc main() { call a(); call b(); } \
                   proc a() { call leaf(); } \
                   proc b() { call leaf(); } \
                   proc leaf() { }";
        let k = keys_for(
            &[
                "proc main() { call a(); call b(); }",
                "proc a() { call leaf(); }",
                "proc b() { call leaf(); }",
                "proc leaf() { }",
            ],
            src,
        );
        assert_ne!(k.cone[1], k.cone[2]);
    }
}
