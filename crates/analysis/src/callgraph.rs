//! The call multigraph `G` and its SCC condensation.

use ipcp_ir::cfg::{BlockId, CallSiteId, ModuleCfg};
use ipcp_ir::program::ProcId;
use std::fmt;

/// One call site: an edge of the call multigraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallEdge {
    /// The procedure containing the call.
    pub caller: ProcId,
    /// The dense call-site id within the caller.
    pub site: CallSiteId,
    /// The block the call appears in.
    pub block: BlockId,
    /// The invoked procedure.
    pub callee: ProcId,
}

/// The program call graph: one node per procedure, one edge per call site.
///
/// Built by [`build_call_graph`]. The SCC decomposition is exposed in
/// **bottom-up** order (callees before callers), which is the order in
/// which return jump functions are generated.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Every call edge, grouped by caller (all of a caller's edges are
    /// contiguous, in call-site order).
    pub edges: Vec<CallEdge>,
    edge_range: Vec<(usize, usize)>,
    callers_of: Vec<Vec<usize>>,
    /// Whether each procedure is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Strongly connected components in bottom-up (reverse topological)
    /// order: if `p` calls `q` and they are in different SCCs, `q`'s SCC
    /// appears first.
    pub sccs: Vec<Vec<ProcId>>,
    /// For each procedure, the index of its SCC in [`CallGraph::sccs`].
    pub scc_of: Vec<usize>,
}

impl CallGraph {
    /// The out-edges (call sites) of procedure `p`, in call-site order.
    pub fn calls_from(&self, p: ProcId) -> &[CallEdge] {
        let (lo, hi) = self.edge_range[p.index()];
        &self.edges[lo..hi]
    }

    /// The in-edges of procedure `p` (call sites that invoke it).
    pub fn calls_to(&self, p: ProcId) -> impl Iterator<Item = &CallEdge> {
        self.callers_of[p.index()].iter().map(|&i| &self.edges[i])
    }

    /// Whether `p` participates in recursion (its SCC has more than one
    /// member, or it calls itself).
    pub fn is_recursive(&self, p: ProcId) -> bool {
        let scc = &self.sccs[self.scc_of[p.index()]];
        scc.len() > 1 || self.calls_from(p).iter().any(|e| e.callee == p)
    }

    /// Procedures reachable from the entry, in bottom-up SCC order.
    pub fn bottom_up(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.sccs
            .iter()
            .flatten()
            .copied()
            .filter(|p| self.reachable[p.index()])
    }

    /// Total number of call sites in the program.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

impl fmt::Display for CallGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.edges {
            writeln!(f, "p{} --{}--> p{}", e.caller, e.site, e.callee)?;
        }
        Ok(())
    }
}

/// Builds the call graph of a lowered module.
///
/// ```
/// use ipcp_ir::{parse_and_resolve, lower_module};
/// use ipcp_analysis::build_call_graph;
/// let m = parse_and_resolve("proc main() { call f(); call f(); } proc f() { }")?;
/// let cg = build_call_graph(&lower_module(&m));
/// assert_eq!(cg.n_edges(), 2);
/// # Ok::<(), ipcp_ir::Diagnostics>(())
/// ```
pub fn build_call_graph(mcfg: &ModuleCfg) -> CallGraph {
    let n = mcfg.module.procs.len();
    let mut edges = Vec::new();
    let mut edge_range = Vec::with_capacity(n);
    for p in 0..n {
        let pid = ProcId::from(p);
        let lo = edges.len();
        let reach = mcfg.cfg(pid).reachable();
        mcfg.each_call_in(pid, |block, site, callee, _| {
            // Calls in unreachable blocks (code after `return`) are not
            // part of the program and would pollute MOD and VAL sets.
            if reach[block.index()] {
                edges.push(CallEdge {
                    caller: pid,
                    site,
                    block,
                    callee,
                });
            }
        });
        edge_range.push((lo, edges.len()));
    }

    let mut callers_of = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        callers_of[e.callee.index()].push(i);
    }

    let mut reachable = vec![false; n];
    let mut stack = vec![mcfg.module.entry];
    while let Some(p) = stack.pop() {
        if std::mem::replace(&mut reachable[p.index()], true) {
            continue;
        }
        let (lo, hi) = edge_range[p.index()];
        stack.extend(edges[lo..hi].iter().map(|e| e.callee));
    }

    let (sccs, scc_of) = tarjan_sccs(n, &edge_range, &edges);

    CallGraph {
        edges,
        edge_range,
        callers_of,
        reachable,
        sccs,
        scc_of,
    }
}

/// Iterative Tarjan SCC. Emits components in reverse topological
/// (bottom-up) order — Tarjan's natural emission order.
fn tarjan_sccs(
    n: usize,
    edge_range: &[(usize, usize)],
    edges: &[CallEdge],
) -> (Vec<Vec<ProcId>>, Vec<usize>) {
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<ProcId>> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];

    // Explicit DFS frames: (node, next edge offset).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let (lo, hi) = edge_range[v];
            if lo + *ei < hi {
                let w = edges[lo + *ei].callee.index();
                *ei += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    // `v` is still on the stack (it was pushed when its
                    // frame opened), so the pop terminates at `w == v`.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        comp.push(ProcId::from(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::{lower_module, parse_and_resolve};

    fn cg(src: &str) -> (ipcp_ir::ModuleCfg, CallGraph) {
        let m = lower_module(&parse_and_resolve(src).unwrap());
        let g = build_call_graph(&m);
        (m, g)
    }

    fn pid(m: &ipcp_ir::ModuleCfg, name: &str) -> ProcId {
        m.module.proc_named(name).unwrap().id
    }

    #[test]
    fn edges_follow_call_sites() {
        let (m, g) = cg("proc main() { call a(); call b(); } proc a() { call b(); } proc b() { }");
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.calls_from(pid(&m, "main")).len(), 2);
        assert_eq!(g.calls_to(pid(&m, "b")).count(), 2);
    }

    #[test]
    fn unreachable_procs_are_flagged() {
        let (m, g) = cg("proc main() { } proc dead() { call main(); }");
        assert!(g.reachable[pid(&m, "main").index()]);
        assert!(!g.reachable[pid(&m, "dead").index()]);
    }

    #[test]
    fn calls_after_return_are_not_edges() {
        let (_, g) = cg("proc main() { return; call f(); } proc f() { }");
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn bottom_up_puts_callees_first() {
        let (m, g) = cg("proc main() { call mid(); } proc mid() { call leaf(); } proc leaf() { }");
        let order: Vec<ProcId> = g.bottom_up().collect();
        let posn = |p: ProcId| order.iter().position(|&q| q == p).unwrap();
        assert!(posn(pid(&m, "leaf")) < posn(pid(&m, "mid")));
        assert!(posn(pid(&m, "mid")) < posn(pid(&m, "main")));
    }

    #[test]
    fn direct_recursion_is_detected() {
        let (m, g) = cg("proc main() { call f(); } proc f() { call f(); }");
        assert!(g.is_recursive(pid(&m, "f")));
        assert!(!g.is_recursive(pid(&m, "main")));
    }

    #[test]
    fn mutual_recursion_shares_an_scc() {
        let (m, g) = cg(
            "proc main() { call even(); } proc even() { call odd(); } proc odd() { call even(); }",
        );
        let e = pid(&m, "even");
        let o = pid(&m, "odd");
        assert_eq!(g.scc_of[e.index()], g.scc_of[o.index()]);
        assert!(g.is_recursive(e));
        assert!(g.is_recursive(o));
        assert_ne!(g.scc_of[pid(&m, "main").index()], g.scc_of[e.index()]);
    }

    #[test]
    fn multigraph_keeps_parallel_edges() {
        let (m, g) = cg("proc main() { call f(); call f(); call f(); } proc f() { }");
        assert_eq!(g.calls_from(pid(&m, "main")).len(), 3);
        let sites: Vec<usize> = g
            .calls_from(pid(&m, "main"))
            .iter()
            .map(|e| e.site.index())
            .collect();
        assert_eq!(sites, vec![0, 1, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 2000-deep call chain exercises the iterative Tarjan.
        let mut src = String::from("proc main() { call p0(); }\n");
        for i in 0..2000 {
            if i < 1999 {
                src.push_str(&format!("proc p{i}() {{ call p{}(); }}\n", i + 1));
            } else {
                src.push_str(&format!("proc p{i}() {{ }}\n"));
            }
        }
        let (_, g) = cg(&src);
        assert_eq!(g.sccs.len(), 2001);
        assert_eq!(g.n_edges(), 2000);
    }
}
