//! # ipcp-analysis — call graph and interprocedural side-effect summaries
//!
//! Two classic whole-program analyses over the FT [`ModuleCfg`]:
//!
//! * [`callgraph`] builds the call (multi-)graph `G` the propagation runs
//!   on — one node per procedure, one edge per call *site* — along with
//!   strongly connected components in bottom-up (reverse topological)
//!   order, which is the evaluation order for return jump functions.
//! * [`modref`] computes flow-insensitive MOD and REF summary sets in the
//!   style of Cooper–Kennedy: for each procedure, which formals and which
//!   globals may be modified (or referenced) by an invocation, including
//!   effects transmitted through by-reference parameter bindings.
//!
//! The Grove–Torczon study found MOD information decisive: without it the
//! jump-function generator must assume every call kills every global and
//! every by-reference actual (Table 3, column 1). [`ModRef::killed_by_call`]
//! and [`worst_case_killed`] implement exactly those two behaviours.
//!
//! [`ModuleCfg`]: ipcp_ir::ModuleCfg

pub mod callgraph;
pub mod keys;
pub mod modref;

pub use callgraph::{build_call_graph, CallEdge, CallGraph};
pub use keys::{summary_keys, SummaryKeys};
pub use modref::{
    compute_modref, direct_effects, propagate_modref, worst_case_killed, ModRef, ModSet,
};
