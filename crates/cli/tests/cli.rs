//! End-to-end tests of the `ipcc` binary via `std::process`.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn ipcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ipcc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ipcc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.ft", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

const DEMO: &str = r#"
global scale;
proc main() {
    scale = 10;
    read n;
    call work(5);
    print n;
}
proc work(k) {
    print k * scale;
    do i = 1, k { print i; }
}
"#;

#[test]
fn help_prints_usage() {
    let out = ipcc().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("analyze"));
}

#[test]
fn no_args_prints_usage() {
    let out = ipcc().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_code_2() {
    let out = ipcc().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn analyze_reports_constants() {
    let path = write_temp("analyze", DEMO);
    let out = ipcc().arg("analyze").arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("CONSTANTS(work)"), "{text}");
    assert!(text.contains("k = 5"), "{text}");
    assert!(text.contains("scale = 10"), "{text}");
    assert!(text.contains("total constants substituted"), "{text}");
}

#[test]
fn analyze_emit_counts_and_jumpfns() {
    let path = write_temp("emit", DEMO);
    let out = ipcc()
        .args(["analyze", "--emit", "counts"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("total"));

    let out = ipcc()
        .args(["analyze", "--emit", "jumpfns"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("main cs0"), "{text}");
}

#[test]
fn analyze_respects_jump_fn_choice() {
    let path = write_temp("kinds", DEMO);
    let literal = ipcc()
        .args(["analyze", "--jump-fn", "literal", "--emit", "counts"])
        .arg(&path)
        .output()
        .unwrap();
    let pass = ipcc()
        .args(["analyze", "--emit", "counts"])
        .arg(&path)
        .output()
        .unwrap();
    let total = |o: &std::process::Output| -> usize {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .find(|l| l.starts_with("total"))
            .and_then(|l| l.split_whitespace().last())
            .unwrap()
            .parse()
            .unwrap()
    };
    // `scale` flows only through non-literal jump functions.
    assert!(total(&literal) < total(&pass));
}

#[test]
fn run_executes_with_inputs() {
    let path = write_temp("run", DEMO);
    let out = ipcc()
        .args(["run", "--input", "42"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines, vec!["50", "1", "2", "3", "4", "5", "42"]);
}

#[test]
fn run_reports_runtime_errors() {
    let path = write_temp("diverr", "proc main() { read x; print 1 / x; }");
    let out = ipcc()
        .args(["run", "--input", "0"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("division by zero"));
}

#[test]
fn fmt_round_trips() {
    let path = write_temp("fmt", DEMO);
    let out = ipcc().arg("fmt").arg(&path).output().unwrap();
    assert!(out.status.success());
    let pretty = String::from_utf8(out.stdout).unwrap();
    // The pretty output itself parses and formats identically.
    let path2 = write_temp("fmt2", &pretty);
    let out2 = ipcc().arg("fmt").arg(&path2).output().unwrap();
    assert_eq!(pretty, String::from_utf8(out2.stdout).unwrap());
}

#[test]
fn fmt_reads_stdin() {
    let mut child = ipcc()
        .args(["fmt", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"proc main() { print 1+2; }")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("print 1 + 2;"));
}

#[test]
fn parse_errors_render_with_positions() {
    let path = write_temp("bad", "proc main() { x = ; }");
    let out = ipcc().arg("analyze").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:1:"), "{err}");
}

#[test]
fn cfg_and_callgraph_dump() {
    let path = write_temp("dump", DEMO);
    let out = ipcc()
        .args(["cfg", "--proc", "work"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("proc work"), "{text}");
    assert!(!text.contains("proc main"), "{text}");

    let out = ipcc().arg("callgraph").arg(&path).output().unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("main --cs0--> work"), "{text}");
}

#[test]
fn complete_and_clone_report() {
    let src = "global flag; \
               proc main() { flag = 0; if (flag != 0) { call f(9); } call f(1); call f(1); } \
               proc f(a) { print a; }";
    let path = write_temp("complete", src);
    let out = ipcc().arg("complete").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("complete propagation"), "{text}");

    let src2 = "proc main() { call f(1); call f(2); } proc f(a) { print a; }";
    let path2 = write_temp("clone", src2);
    let out = ipcc()
        .args(["clone", "--budget", "4"])
        .arg(&path2)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("clones created: 1"), "{text}");
    assert!(text.contains("0 -> 2"), "{text}");
}

#[test]
fn tables_runs_on_builtin_suite() {
    let out = ipcc().arg("tables").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 2"));
    assert!(text.contains("ocean"));
    assert!(text.contains("Table 3"));
}

#[test]
fn integrate_compares_against_jump_functions() {
    let src = "proc main() { call f(1); call f(2); } proc f(a) { print a; }";
    let path = write_temp("integrate", src);
    let out = ipcc().arg("integrate").arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("inlined 2 call(s)"), "{text}");
    assert!(text.contains("integration + intraprocedural: 2"), "{text}");
}

#[test]
fn analyze_emit_report() {
    let path = write_temp("report", DEMO);
    let out = ipcc()
        .args(["analyze", "--emit", "report"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("forward jump functions"), "{text}");
    assert!(text.contains("solver"), "{text}");
}

#[test]
fn gated_flag_is_accepted() {
    let path = write_temp("gated", DEMO);
    let out = ipcc()
        .args(["analyze", "--gated", "--jump-fn", "poly"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn analyze_emit_source_substitutes_textually() {
    let path = write_temp("source", DEMO);
    let out = ipcc()
        .args(["analyze", "--emit", "source"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // `k * scale` becomes `5 * 10` in the transformed source.
    assert!(text.contains("print 5 * 10;"), "{text}");
    // And the output is valid FT: feed it back through `run`.
    let path2 = write_temp("source2", &text);
    let rerun = ipcc()
        .args(["run", "--input", "42"])
        .arg(&path2)
        .output()
        .unwrap();
    assert!(rerun.status.success());
}

#[test]
fn run_without_enough_input_fails_with_code_1() {
    let path = write_temp("noinput", DEMO); // DEMO executes `read n`
    let out = ipcc().arg("run").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("read past the end of the input"), "{err}");
}

/// A call whose jump function is a genuine two-term polynomial, for
/// exercising `--max-poly-terms`.
const POLY: &str = "proc main() { call mid(3, 4); } \
                    proc mid(a, b) { call f(a + b); } \
                    proc f(x) { print x; }";

#[test]
fn degraded_analysis_warns_but_succeeds_without_strict() {
    let path = write_temp("degrade", POLY);
    let out = ipcc()
        .args(["analyze", "--jump-fn", "poly", "--max-poly-terms", "1"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("warning: analysis degraded"), "{err}");
}

#[test]
fn strict_degraded_analysis_fails_with_code_3() {
    let path = write_temp("strict", POLY);
    let out = ipcc()
        .args([
            "analyze",
            "--jump-fn",
            "poly",
            "--max-poly-terms",
            "1",
            "--strict",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("resource exhausted"), "{err}");
}

#[test]
fn strict_passes_cleanly_within_budgets() {
    let path = write_temp("strict-ok", POLY);
    let out = ipcc()
        .args(["analyze", "--jump-fn", "poly", "--strict"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.stderr.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solver_iteration_cap_degrades_deterministically() {
    let path = write_temp("solver-cap", DEMO);
    let out = ipcc()
        .args(["analyze", "--max-solver-iterations", "1", "--strict"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("[solver]"), "{err}");
}

#[test]
fn report_counts_degradations() {
    let path = write_temp("degr-report", POLY);
    let out = ipcc()
        .args([
            "analyze",
            "--emit",
            "report",
            "--jump-fn",
            "poly",
            "--max-poly-terms",
            "1",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let line = text
        .lines()
        .find(|l| l.starts_with("degradations"))
        .unwrap();
    assert!(!line.contains(" 0"), "{text}");
}

#[test]
fn explain_traces_provenance() {
    let path = write_temp("explain", DEMO);
    let out = ipcc()
        .args(["explain", "--proc", "work", "--slot", "k"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("work.k = 5"), "{text}");
    assert!(text.contains("main cs"), "{text}");
}

#[test]
fn inject_panic_quarantines_and_analyze_still_succeeds() {
    let path = write_temp("quarantine", DEMO);
    let out = ipcc()
        .args(["analyze", "--inject-panic", "jump:1", "--emit", "report"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("quarantined procedures   1"), "{text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("panic contained"), "{err}");
}

#[test]
fn no_quarantine_lets_the_injected_panic_crash() {
    let path = write_temp("noquarantine", DEMO);
    let out = ipcc()
        .args(["analyze", "--inject-panic", "jump:1", "--no-quarantine"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        out.status.code() != Some(3),
        "a crash, not a strict degradation"
    );
}

#[test]
fn expired_deadline_degrades_and_strict_promotes_it_to_exit_3() {
    let path = write_temp("deadline", DEMO);
    // --deadline-ms 0 expires immediately; without --strict the run still
    // succeeds with warnings.
    let out = ipcc()
        .args(["analyze", "--deadline-ms", "0"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("deadline"), "{err}");

    let out = ipcc()
        .args(["analyze", "--deadline-ms", "0", "--strict"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn reduce_shrinks_an_injected_panic_reproducer() {
    let path = write_temp("reduce", DEMO);
    let out = ipcc()
        .args([
            "reduce",
            "--inject-panic",
            "jump:1",
            "--check",
            "quarantine",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reduced = String::from_utf8(out.stdout).unwrap();
    assert!(reduced.len() <= DEMO.len());
    assert!(reduced.contains("proc"), "{reduced}");
    let stats = String::from_utf8(out.stderr).unwrap();
    assert!(stats.contains("reduce[quarantine]"), "{stats}");
}

#[test]
fn fuzz_clean_run_exits_0() {
    let out = ipcc()
        .args(["fuzz", "--jump-fn", "poly", "--seed", "11", "--cases", "6"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("fuzz: seed 11: 6 generated case(s)"), "{err}");
}

#[test]
fn fuzz_unknown_property_is_a_usage_error() {
    let out = ipcc().args(["fuzz", "--props", "vibes"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown property `vibes`"), "{err}");
}

#[test]
fn fuzz_finds_minimizes_and_persists_an_injected_fault() {
    let corpus = std::env::temp_dir()
        .join("ipcc-tests")
        .join(format!("corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&corpus);
    let run = || {
        ipcc()
            .args([
                "fuzz",
                "--props",
                "panic-free",
                "--inject-panic",
                "jump:1",
                "--no-quarantine",
                "--seed",
                "5",
                "--cases",
                "12",
                "--corpus",
                corpus.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("property `panic-free` falsified"), "{err}");
    assert!(err.contains("minimized repro"), "{err}");
    // The replay line re-supplies the full injected-fault configuration.
    assert!(
        err.contains("replay: ipcc fuzz --props panic-free --seed "),
        "{err}"
    );
    assert!(err.contains("--inject-panic jump:1"), "{err}");
    assert!(err.contains("--no-quarantine"), "{err}");

    // Minimized corpus artifacts: an .ft reproducer (≤ 300 bytes, the
    // acceptance bound) plus its .repro report.
    let fts: Vec<std::path::PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ft"))
        .collect();
    assert!(!fts.is_empty(), "{err}");
    for ft in &fts {
        let repro = std::fs::read_to_string(ft).unwrap();
        assert!(
            repro.len() <= 300,
            "{}: {} bytes",
            ft.display(),
            repro.len()
        );
        assert!(ft.with_extension("repro").exists());
    }

    // Determinism: the second run replays the corpus, re-finds the same
    // generative failures, and rewrites byte-identical minima.
    let before: Vec<String> = fts
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap())
        .collect();
    let out2 = run();
    assert_eq!(out2.status.code(), Some(1));
    let err2 = String::from_utf8(out2.stderr).unwrap();
    for ft in &fts {
        assert!(
            err2.contains(&format!("falsified on {}", ft.display())),
            "corpus entry replayed: {err2}"
        );
    }
    let after: Vec<String> = fts
        .iter()
        .map(|p| std::fs::read_to_string(p).unwrap())
        .collect();
    assert_eq!(before, after, "minimized corpus is stable across runs");
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn fuzz_time_budget_stops_the_run() {
    let out = ipcc()
        .args(["fuzz", "--cases", "1000000", "--time-budget-ms", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("time budget reached"), "{err}");
}

#[test]
fn reduce_without_a_failure_exits_1() {
    let path = write_temp("reduce-clean", DEMO);
    let out = ipcc()
        .args(["reduce", "--check", "degraded"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("does not reproduce"), "{err}");
}
