//! `ipcc` — the command-line driver for the FT interprocedural constant
//! propagation toolchain. See `ipcc help` or [`args::HELP`].

mod args;
mod serve;

use args::{Command, Emit};
use ipcp::{clone_by_constants, complete_propagation, Analysis, AnalysisHealth, Config, IpcpError};
use ipcp_ir::cfg::ModuleCfg;
use ipcp_ir::interp::{run_module, ExecLimits};
use ipcp_ir::program::{ProcId, SlotLayout};
use std::io::Read as _;
use std::process::ExitCode;

/// A dispatch failure carrying its exit code: 1 for diagnostics and
/// runtime errors, 2 for usage errors, 3 for strict-mode budget
/// exhaustion (see `EXIT CODES` in [`args::HELP`]).
struct Failure {
    code: u8,
    msg: String,
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure { code: 1, msg }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args::parse(argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match dispatch(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("{}", f.msg);
            ExitCode::from(f.code)
        }
    }
}

/// Prints degradation telemetry to stderr and, under `--strict`, promotes
/// it to an exit-code-3 failure.
fn check_health(health: &AnalysisHealth, strict: bool) -> Result<(), Failure> {
    for e in &health.events {
        eprintln!("warning: analysis degraded: {e}");
    }
    IpcpError::check_strict(strict, health).map_err(|e| Failure {
        code: 3,
        msg: format!("error: {e}"),
    })
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("error: reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("error: {path}: {e}"))
    }
}

fn load(path: &str) -> Result<(String, ModuleCfg), String> {
    let src = read_source(path)?;
    let module = ipcp_ir::parse_and_resolve(&src).map_err(|diags| {
        let rendered: Vec<String> = diags.iter().map(|d| d.render(&src)).collect();
        rendered.join("\n")
    })?;
    Ok((src.clone(), ipcp_ir::lower_module(&module)))
}

fn dispatch(cmd: Command) -> Result<(), Failure> {
    match cmd {
        Command::Help => {
            print!("{}", args::HELP);
            Ok(())
        }
        Command::Fmt { file } => {
            let src = read_source(&file)?;
            let prog = ipcp_ir::lang::parse_program(&src).map_err(|diags| {
                let rendered: Vec<String> = diags.iter().map(|d| d.render(&src)).collect();
                rendered.join("\n")
            })?;
            print!("{}", ipcp_ir::lang::pretty::program(&prog));
            Ok(())
        }
        Command::Run { file, inputs } => {
            let (_, mcfg) = load(&file)?;
            let exec = run_module(&mcfg.module, &inputs, &ExecLimits::default())
                .map_err(|e| format!("runtime error: {e}"))?;
            for v in exec.output {
                println!("{v}");
            }
            Ok(())
        }
        Command::Cfg { file, proc } => {
            let (_, mcfg) = load(&file)?;
            for (pid, cfg) in mcfg.iter() {
                let p = mcfg.module.proc(pid);
                if proc.as_deref().is_some_and(|want| want != p.name) {
                    continue;
                }
                print!("{}", cfg.display(&mcfg.module, pid));
            }
            Ok(())
        }
        Command::CallGraph { file } => {
            let (_, mcfg) = load(&file)?;
            let cg = ipcp_analysis::build_call_graph(&mcfg);
            for e in &cg.edges {
                println!(
                    "{} --{}--> {}",
                    mcfg.module.proc(e.caller).name,
                    e.site,
                    mcfg.module.proc(e.callee).name
                );
            }
            for (pi, proc) in mcfg.module.procs.iter().enumerate() {
                if !cg.reachable[pi] {
                    println!("; unreachable: {}", proc.name);
                }
            }
            Ok(())
        }
        Command::Analyze { file, config, emit } => {
            let (_, mcfg) = load(&file)?;
            let analysis = Analysis::run(&mcfg, &config);
            emit_analysis(&mcfg, &analysis, emit);
            check_health(&analysis.health, config.strict)
        }
        Command::Complete { file, config } => {
            let (_, mcfg) = load(&file)?;
            let plain_analysis = Analysis::run(&mcfg, &config);
            let plain = plain_analysis.substitute(&mcfg).total;
            let result = complete_propagation(&mcfg, &config);
            println!("plain propagation:    {plain} constants substituted");
            println!(
                "complete propagation: {} constants substituted",
                result.substitution.total
            );
            println!(
                "dce rounds: {}   statements removed: {}",
                result.dce_rounds, result.statements_removed
            );
            check_health(&plain_analysis.health, config.strict)
        }
        Command::Clone {
            file,
            config,
            budget,
        } => {
            let (_, mcfg) = load(&file)?;
            let before = Analysis::run(&mcfg, &config).substitute(&mcfg).total;
            let result = clone_by_constants(&mcfg, &config, budget);
            let after = Analysis::run(&result.module, &config)
                .substitute(&result.module)
                .total;
            println!("clones created: {}", result.n_clones);
            for (pi, n) in result.clones_of.iter().enumerate() {
                if *n > 0 {
                    println!("  {} x{}", mcfg.module.procs[pi].name, n);
                }
            }
            println!("constants substituted: {before} -> {after}");
            check_health(&result.health, config.strict)
        }
        Command::Explain {
            file,
            config,
            proc,
            slot,
            depth,
        } => {
            let (_, mcfg) = load(&file)?;
            let analysis = Analysis::run(&mcfg, &config);
            let p = mcfg
                .module
                .proc_named(&proc)
                .ok_or_else(|| Failure::from(format!("error: no procedure named `{proc}`")))?;
            let layout = SlotLayout::new(&mcfg.module);
            let n_slots = layout.n_slots(p.arity());
            let pid = p.id;
            for s in 0..n_slots {
                let name = layout.slot_name(&mcfg.module, pid, s);
                if slot.as_deref().is_some_and(|want| want != name) {
                    continue;
                }
                print!("{}", ipcp::explain::render(&mcfg, &analysis, pid, s, depth));
            }
            check_health(&analysis.health, config.strict)
        }
        Command::Integrate { file, budget } => {
            let (_, mcfg) = load(&file)?;
            let jf = Analysis::run(&mcfg, &Config::polynomial())
                .substitute(&mcfg)
                .total;
            let (integrated, result) = ipcp::integrate_and_count(&mcfg, &Config::default(), budget);
            println!(
                "inlined {} call(s) in {} round(s)",
                result.inlined_calls, result.rounds
            );
            println!("jump functions (polynomial): {jf} constants substituted");
            println!("integration + intraprocedural: {integrated} constants substituted");
            println!("(integrated counts may double-count duplicated code)");
            Ok(())
        }
        Command::Reduce {
            file,
            config,
            check,
            max_tests,
        } => {
            let src = read_source(&file)?;
            // The suite's grammar-aware pass drops whole procedures,
            // blocks, and call arguments before byte-level ddmin runs.
            let prepass = ipcp_suite::prop::structural_pass;
            match ipcp::reduce_with_prepass(&src, &config, &check, max_tests, Some(&prepass)) {
                None => Err(Failure::from(format!(
                    "error: `{file}` does not reproduce a `{}` failure (nothing to reduce)",
                    check.label()
                ))),
                Some(out) => {
                    eprintln!(
                        "reduce[{}]: {} -> {} bytes in {} test(s)",
                        check.label(),
                        out.original_bytes,
                        out.reduced_bytes,
                        out.tests
                    );
                    println!("{}", out.source);
                    Ok(())
                }
            }
        }
        Command::Fuzz {
            config,
            props,
            seed,
            cases,
            time_budget_ms,
            corpus,
            inputs,
            shrink_tests,
            gens,
        } => fuzz(
            config,
            &props,
            seed,
            cases,
            time_budget_ms,
            corpus.as_deref(),
            inputs,
            shrink_tests,
            &gens,
        ),
        Command::Serve { file, config, opts } => {
            let src = read_source(&file)?;
            serve::serve(&src, &config, &opts).map_err(Failure::from)
        }
        Command::ServeConnect {
            socket,
            retries,
            retry_ms,
        } => serve::connect(&socket, retries, retry_ms).map_err(Failure::from),
        Command::Tables => {
            // Reuses the suite directly so `ipcc tables` works anywhere.
            tables();
            Ok(())
        }
    }
}

/// `ipcc fuzz`: replays any persisted corpus first, then drives seeded
/// generated cases through the property harness, printing every
/// minimized counterexample with its replay line and persisting it to
/// the corpus directory. Any counterexample exits 1.
#[allow(clippy::too_many_arguments)]
fn fuzz(
    config: Config,
    props: &[String],
    seed: u64,
    cases: usize,
    time_budget_ms: Option<u64>,
    corpus: Option<&str>,
    inputs: Vec<i64>,
    shrink_tests: usize,
    gens: &[String],
) -> Result<(), Failure> {
    use ipcp_suite::prop;

    // Parse-time validation guarantees every name resolves.
    let boxed: Vec<Box<dyn ipcp_suite::Property>> = props
        .iter()
        .filter_map(|name| prop::property(name))
        .collect();
    let refs: Vec<&dyn ipcp_suite::Property> = boxed.iter().map(Box::as_ref).collect();
    let flags = args::render_config_flags(&config);
    let mut checker = ipcp_suite::Checker::new(seed);
    checker.cases = cases;
    checker.deadline = time_budget_ms.map(ipcp::Deadline::after_ms);
    checker.shrink_tests = shrink_tests;
    checker.ctx.config = config;
    if !inputs.is_empty() {
        checker.ctx.inputs = inputs;
    }

    let mut found = Vec::new();

    // Corpus replay: previously minimized reproducers must stay fixed.
    // A missing directory just means no corpus yet.
    if let Some(dir) = corpus {
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "ft"))
                    .collect()
            })
            .unwrap_or_default();
        entries.sort();
        for path in entries {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let label = path.display().to_string();
            found.extend(checker.check_source(&label, &src, &refs));
        }
    }

    // Whole-program scale generations (`--gen scale:<spec>`): a corpus
    // source with a very different shape from the random cases — real
    // call-graph structure (SCCs, fan-out, depth) at whatever size the
    // spec asks for. Specs were validated at parse time.
    for gen in gens {
        if let Some(spec_str) = gen.strip_prefix("scale:") {
            if let Ok(spec) = ipcp_suite::ScaleSpec::parse(spec_str) {
                let src = ipcp_suite::generate_scale(&spec);
                found.extend(checker.check_source(gen, &src, &refs));
            }
        }
    }

    let report = checker.run(&refs);
    eprintln!(
        "fuzz: seed {seed}: {} generated case(s) x {} propert{}{}",
        report.cases,
        refs.len(),
        if refs.len() == 1 { "y" } else { "ies" },
        if report.timed_out {
            " (time budget reached)"
        } else {
            ""
        },
    );
    found.extend(report.counterexamples);

    if found.is_empty() {
        return Ok(());
    }
    for cx in &found {
        eprint!("{}", cx.render(&flags));
    }
    if let Some(dir) = corpus {
        persist_corpus(dir, &found, &flags);
    }
    Err(Failure {
        code: 1,
        msg: format!("error: {} counterexample(s) found", found.len()),
    })
}

/// Writes each generative counterexample's minimized source to
/// `<corpus>/<property>-<case seed>.ft` next to a `.repro` file carrying
/// the full report and replay line. Corpus-replay failures are already
/// on disk and are skipped.
fn persist_corpus(dir: &str, found: &[ipcp_suite::Counterexample], flags: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create corpus dir {dir}: {e}");
        return;
    }
    for cx in found {
        let Some(case_seed) = cx.case_seed else {
            continue;
        };
        let stem = format!("{}-{case_seed}", cx.property);
        let ft = std::path::Path::new(dir).join(format!("{stem}.ft"));
        let repro = std::path::Path::new(dir).join(format!("{stem}.repro"));
        if let Err(e) = std::fs::write(&ft, &cx.minimized) {
            eprintln!("warning: cannot write {}: {e}", ft.display());
            continue;
        }
        if let Err(e) = std::fs::write(&repro, cx.render(flags)) {
            eprintln!("warning: cannot write {}: {e}", repro.display());
        }
        eprintln!("corpus: wrote {}", ft.display());
    }
}

fn emit_analysis(mcfg: &ModuleCfg, analysis: &Analysis, emit: Emit) {
    let layout = SlotLayout::new(&mcfg.module);
    match emit {
        Emit::Constants => {
            print!("{}", analysis.vals.display(mcfg, &layout));
            let substituted = analysis.substitute(mcfg);
            println!("total constants substituted: {}", substituted.total);
        }
        Emit::Counts => {
            let substituted = analysis.substitute(mcfg);
            for (pi, n) in substituted.counts.iter().enumerate() {
                println!("{:<24} {n}", mcfg.module.procs[pi].name);
            }
            println!("{:<24} {}", "total", substituted.total);
        }
        Emit::Substituted => {
            let substituted = analysis.substitute(mcfg);
            for (pid, cfg) in substituted.module.iter() {
                print!("{}", cfg.display(&substituted.module.module, pid));
            }
        }
        Emit::Report => {
            print!("{}", ipcp::CostReport::collect(mcfg, analysis));
        }
        Emit::Source => {
            let substituted = analysis.substitute(mcfg);
            print!("{}", substituted.to_source(&mcfg.module));
        }
        Emit::JumpFns => {
            for (pi, sites) in analysis.jump_fns.sites.iter().enumerate() {
                let caller = ProcId::from(pi);
                for (si, fns) in sites.iter().enumerate() {
                    if fns.is_empty() {
                        continue;
                    }
                    let rendered: Vec<String> = fns.iter().map(|jf| jf.to_string()).collect();
                    println!(
                        "{} cs{si}: [{}]",
                        mcfg.module.proc(caller).name,
                        rendered.join(", ")
                    );
                }
            }
        }
    }
}

/// One `Serve cache` table row.
struct ServeCacheRow {
    /// Cold-start misses.
    cold: u64,
    /// Warm-rerun hits.
    warm: u64,
    /// Hit/miss split after appending a statement to the last procedure
    /// — the canonical "touch one procedure" probe, so `edit_hit` is the
    /// summary reuse an editor-driven daemon sees.
    edit_hit: u64,
    edit_miss: u64,
    /// How many of those requests degraded.
    deg: u64,
    /// Records restored from a snapshot taken after the edit.
    recovered: u64,
    /// Startup hits a restarted daemon served from those records — the
    /// restart payoff of `--store`.
    persisted_hit: u64,
    /// The discard label a one-byte-corrupted snapshot reports.
    discarded: &'static str,
}

fn serve_cache_row(src: &str) -> Result<ServeCacheRow, String> {
    use ipcp::serve::store::{decode, encode};
    use ipcp::serve::{ProgramModel, ServeEngine, SummaryCache};

    let mut engine = ServeEngine::new(src, &Config::polynomial()).map_err(|e| e.to_string())?;
    let cold = engine.last_outcome().misses;
    let warm = engine.analyze(None).map_err(|e| e.to_string())?.hits;
    let model = ProgramModel::from_source(&engine.source()).map_err(|e| e.to_string())?;
    let name = model
        .proc_names()
        .last()
        .ok_or_else(|| "program has no procedures".to_string())?
        .to_string();
    let text = model
        .proc_text(&name)
        .ok_or_else(|| format!("no text for `{name}`"))?;
    let brace = text
        .rfind('}')
        .ok_or_else(|| format!("`{name}` has no body"))?;
    let fragment = format!("{}    print 0;\n{}", &text[..brace], &text[brace..]);
    let edited = engine.update(&name, &fragment).map_err(|e| e.to_string())?;

    // The persistence leg: snapshot through the on-disk wire format,
    // restart from it, and probe what a corrupted snapshot reports.
    let (cfp, sfp) = engine.fingerprints();
    let bytes = encode(engine.cache(), cfp, sfp);
    let entries = decode(&bytes, cfp, sfp).map_err(|r| r.to_string())?;
    let recovered = entries.len() as u64;
    let cache = SummaryCache::restore(entries, SummaryCache::DEFAULT_CAPACITY);
    let restarted = ServeEngine::new_with_cache(&engine.source(), &Config::polynomial(), cache)
        .map_err(|e| e.to_string())?;
    let persisted_hit = restarted.last_outcome().persisted_hits;
    let mut bad = bytes;
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    let discarded = match decode(&bad, cfp, sfp) {
        Err(reason) => reason.label(),
        Ok(_) => "accepted?!",
    };

    Ok(ServeCacheRow {
        cold,
        warm,
        edit_hit: edited.hits,
        edit_miss: edited.misses,
        deg: engine.stats().degraded_requests,
        recovered,
        persisted_hit,
        discarded,
    })
}

fn tables() {
    use ipcp::{complete_propagation as complete, substitute_intraprocedural, JumpFnKind};
    use ipcp_suite::paper_programs;

    println!("Table 2: constants found through use of jump functions");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "program", "poly", "pass", "intra", "literal", "poly/nr", "pass/nr"
    );
    for p in paper_programs() {
        let mcfg = p.module_cfg();
        let count = |c: &Config| Analysis::run(&mcfg, c).substitute(&mcfg).total;
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8}",
            p.name,
            count(&Config::default().with_jump_fn(JumpFnKind::Polynomial)),
            count(&Config::default().with_jump_fn(JumpFnKind::PassThrough)),
            count(&Config::default().with_jump_fn(JumpFnKind::IntraproceduralConstant)),
            count(&Config::default().with_jump_fn(JumpFnKind::Literal)),
            count(
                &Config::default()
                    .with_jump_fn(JumpFnKind::Polynomial)
                    .with_return_jfs(false)
            ),
            count(
                &Config::default()
                    .with_jump_fn(JumpFnKind::PassThrough)
                    .with_return_jfs(false)
            ),
        );
    }
    println!();
    println!("Table 3: polynomial vs other propagation techniques");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>7} {:>5} {:>5}",
        "program", "no-mod", "with-mod", "complete", "intra", "deg", "quar"
    );
    for p in paper_programs() {
        let mcfg = p.module_cfg();
        let a = Analysis::run(&mcfg, &Config::polynomial());
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>7} {:>5} {:>5}",
            p.name,
            Analysis::run(&mcfg, &Config::polynomial().with_mod(false))
                .substitute(&mcfg)
                .total,
            a.substitute(&mcfg).total,
            complete(&mcfg, &Config::polynomial()).substitution.total,
            substitute_intraprocedural(&mcfg, &a).total,
            a.health.events.len(),
            a.quarantined.iter().filter(|&&q| q).count(),
        );
    }
    println!();
    println!("Serve cache: summary reuse across a warm daemon (ipcc serve)");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>9} {:>7} {:>7} {:>5} {:>8} {:>12}",
        "program",
        "cold_miss",
        "warm_hit",
        "edit_hit",
        "edit_miss",
        "reuse%",
        "deg_req",
        "recov",
        "pers_hit",
        "discard"
    );
    for p in paper_programs() {
        match serve_cache_row(p.source) {
            Ok(r) => {
                let reuse = if r.edit_hit + r.edit_miss > 0 {
                    100.0 * r.edit_hit as f64 / (r.edit_hit + r.edit_miss) as f64
                } else {
                    0.0
                };
                println!(
                    "{:<10} {:>9} {:>8} {:>8} {:>9} {:>6.0}% {:>7} {:>5} {:>8} {:>12}",
                    p.name,
                    r.cold,
                    r.warm,
                    r.edit_hit,
                    r.edit_miss,
                    reuse,
                    r.deg,
                    r.recovered,
                    r.persisted_hit,
                    r.discarded
                );
            }
            Err(e) => println!("{:<10} serve row unavailable: {e}", p.name),
        }
    }
    println!();
    let auto_jobs = Config::default().effective_jobs();
    println!("Per-stage wall time, sequential vs --jobs {auto_jobs} (machine-dependent)");
    println!("{}", ipcp::PhaseReport::header());
    for p in paper_programs() {
        let mcfg = p.module_cfg();
        for jobs in [1, auto_jobs] {
            let t = Analysis::run(&mcfg, &Config::polynomial().with_jobs(jobs)).timings;
            println!("{}", ipcp::PhaseReport::collect(&t).render_row(p.name));
            if auto_jobs == 1 {
                break;
            }
        }
    }
}
