//! `ipcc serve` — the transport layer of the incremental analysis
//! daemon.
//!
//! The engine ([`ipcp::serve::ServeEngine`]) owns all analysis state and
//! runs on the main thread. Transports — a stdin reader and, with
//! `--socket`, a Unix-socket acceptor — parse nothing: they push raw
//! request lines through a *bounded* channel (the admission control) and
//! carry a reply sink back to their origin. Everything a request can do
//! wrong becomes a structured JSON error response; no serve-path code
//! calls `process::exit`.
//!
//! Requests split into two classes at dequeue. *Read* requests
//! (`health`, `stats`, `explain`, and `constants` without a `config`
//! override — plus `batch` frames made only of those) answer from the
//! published [`Snapshot`] and run concurrently on the
//! `--serve-workers` [`ReadPool`]. *Writer* requests (`update`, `load`,
//! `analyze`, anything carrying `config`) run on the main thread under
//! an exclusive epoch: the pool is quiesced first, the engine mutates,
//! and a fresh snapshot is published before the next read executes. A
//! `batch` frame carries up to [`MAX_BATCH`] requests and returns one
//! reply frame with a per-item `results` array (items after an
//! in-batch `shutdown` are shed explicitly). See the "Concurrency"
//! section of `docs/SERVE.md`.
//!
//! Robustness envelope, outermost first:
//!
//! * **Admission.** The channel holds at most `--max-inflight` requests;
//!   a full channel sheds immediately with an `overloaded` response, and
//!   a request older than `--queue-ms` when dequeued is shed rather than
//!   served stale.
//! * **Deadlines.** `--request-deadline-ms` (or a per-request
//!   `config.deadline_ms` override) bounds each analysis; stages that
//!   time out answer ⊥ and the response carries `degraded: true` —
//!   constants are never invented under pressure.
//! * **Quarantine.** Panics inside analysis units degrade per-procedure;
//!   a request-level panic (quarantine disabled by override) is caught at
//!   the request boundary, answered as `"kind": "panic"`, and provably
//!   leaves the warm state and summary cache untouched.
//! * **Drain.** SIGTERM/SIGINT or a `shutdown` request stop admission and
//!   drain queued requests under `--drain-ms`; whatever cannot drain in
//!   time is shed with `shutting_down`.
//! * **Persistence.** With `--store`, the summary cache is restored
//!   (after full verification — any mismatch is a logged cold start,
//!   never a wrong answer) at boot and snapshotted atomically on drain
//!   and every `--snapshot-every-n` requests. Snapshot failures are
//!   logged and counted, never fatal. See `docs/ROBUSTNESS.md` for the
//!   durability contract.
//!
//! Protocol reference: `docs/SERVE.md`.

use crate::args::ServeOpts;
use ipcp::serve::json;
use ipcp::serve::{
    config_from_overrides, DiscardReason, IoInjector, Json, LoadStatus, Object, PoolCounters,
    ReadPool, RequestOutcome, ServeEngine, ServeError, Snapshot, SummaryStore,
};
use ipcp::Config;
use ipcp_suite::Rng;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Set by the C signal handler; polled by the worker loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    TERM.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        // POSIX signal(2) via the C ABI — no crates, no masks to manage;
        // the handler is a single atomic store.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
}

/// Where a request's response goes.
#[derive(Clone)]
enum Sink {
    Stdout,
    Conn(Arc<Mutex<UnixStream>>),
}

impl Sink {
    /// Best-effort line write: a transport that died mid-request must
    /// not take the daemon with it.
    fn send_line(&self, line: &str) {
        match self {
            Sink::Stdout => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            }
            Sink::Conn(stream) => {
                if let Ok(mut s) = stream.lock() {
                    let _ = writeln!(s, "{line}");
                    let _ = s.flush();
                }
            }
        }
    }
}

/// One admitted request: the raw line, its reply sink, and when it was
/// accepted (for the queue deadline).
struct Incoming {
    line: String,
    sink: Sink,
    at: Instant,
}

/// Transport-shared counters (the worker owns everything else).
#[derive(Default)]
struct Shared {
    /// Requests shed at admission or by the queue/drain deadlines.
    shed: AtomicU64,
    /// Requests currently queued or being processed.
    in_flight: AtomicU64,
}

/// A full error-response object (also a `batch` `results` item).
fn err_json(id: &Json, kind: &str, message: &str) -> Json {
    let mut err = Object::new();
    err.set("kind", Json::from(kind));
    err.set("message", Json::from(message));
    let mut o = Object::new();
    o.set("id", id.clone());
    o.set("ok", Json::from(false));
    o.set("error", Json::from(err));
    Json::from(o)
}

/// A full success-response object (also a `batch` `results` item).
fn ok_json(id: &Json, payload: Object) -> Json {
    let mut o = Object::new();
    o.set("id", id.clone());
    o.set("ok", Json::from(true));
    for (k, v) in payload.into_entries() {
        o.set_owned(k, v);
    }
    Json::from(o)
}

fn error_response(id: &Json, kind: &str, message: &str) -> String {
    err_json(id, kind, message).to_string()
}

fn ok_response(id: &Json, payload: Object) -> String {
    ok_json(id, payload).to_string()
}

/// The `id` of an already-parsed request (protocol ids are the reply
/// correlator; `null` when absent).
fn req_id(req: &Json) -> Json {
    req.as_object()
        .and_then(|o| o.get("id"))
        .cloned()
        .unwrap_or(Json::Null)
}

/// Pulls the request id out of a raw line for shed responses written
/// off-worker. Falls back to `null` when the line is not even JSON.
fn peek_id(line: &str) -> Json {
    json::parse(line)
        .ok()
        .and_then(|j| j.as_object().and_then(|o| o.get("id")).cloned())
        .unwrap_or(Json::Null)
}

/// Store telemetry shared with the read workers, so pooled `stats`
/// replies report persistence state without touching the main thread.
struct StoreCounters {
    /// Successful snapshots this process wrote.
    snapshots: AtomicU64,
    /// Snapshot attempts that failed (logged, never fatal).
    snapshot_failures: AtomicU64,
    /// Records restored at boot (fixed after boot).
    recovered: u64,
    /// Why the boot-time store was discarded, if it was (fixed).
    discarded: Option<DiscardReason>,
}

/// The daemon-side persistence state: the store plus its telemetry.
/// Owned by the main thread — snapshots only ever run between requests
/// or on writer turns, where the cache is quiescent by construction.
struct StoreState {
    store: SummaryStore,
    counters: Arc<StoreCounters>,
    /// Total-served watermark of the last `--snapshot-every-n` trigger.
    served_at_snapshot: u64,
}

impl StoreState {
    /// Atomically snapshots the engine's cache, logging (not failing)
    /// on error. Returns what a `snapshot` response reports.
    fn snapshot(&mut self, engine: &ServeEngine) -> Result<usize, String> {
        let (cfp, sfp) = engine.fingerprints();
        match self.store.save(engine.cache(), cfp, sfp) {
            Ok(records) => {
                self.counters.snapshots.fetch_add(1, Ordering::SeqCst);
                Ok(records)
            }
            Err(e) => {
                self.counters
                    .snapshot_failures
                    .fetch_add(1, Ordering::SeqCst);
                let msg = format!("snapshot to {} failed: {e}", self.store.path().display());
                eprintln!("serve: {msg}");
                Err(msg)
            }
        }
    }

    /// Snapshots when `--snapshot-every-n` says it is due.
    /// `total_served` counts every frame the daemon finished — pooled
    /// reads included (via the pool's `completed` counter), so the
    /// cadence is checked on each main-loop tick rather than per
    /// request. A failed snapshot keeps the watermark, so the next tick
    /// retries.
    fn maybe_snapshot(&mut self, engine: &ServeEngine, total_served: u64, every_n: Option<u64>) {
        let due =
            every_n.is_some_and(|n| total_served.saturating_sub(self.served_at_snapshot) >= n);
        if due && self.snapshot(engine).is_ok() {
            self.served_at_snapshot = total_served;
        }
    }
}

fn outcome_payload(outcome: &RequestOutcome) -> Object {
    let mut o = Object::new();
    o.set("degraded", Json::from(outcome.degraded));
    o.set("cache_hits", Json::from(outcome.hits));
    o.set("cache_persisted_hits", Json::from(outcome.persisted_hits));
    o.set("cache_misses", Json::from(outcome.misses));
    o.set("cache_bypassed", Json::from(outcome.bypassed));
    o.set(
        "events",
        Json::Array(
            outcome
                .events
                .iter()
                .map(|e| Json::from(e.to_string()))
                .collect(),
        ),
    );
    o.set(
        "quarantined",
        Json::Array(
            outcome
                .quarantined
                .iter()
                .map(|q| Json::from(q.as_str()))
                .collect(),
        ),
    );
    o
}

/// Upper bound on requests one `batch` frame may carry.
const MAX_BATCH: usize = 1024;

/// Everything the read path needs besides the snapshot itself; shared
/// (one `Arc`) between the pool closures and the drain-time inline
/// reads.
struct ReadCtx {
    shared: Arc<Shared>,
    /// The pool's counters — `read_errors` feeds the `stats` payload's
    /// `errors` field alongside the engine's writer-side count.
    counters: Arc<PoolCounters>,
    store: Option<Arc<StoreCounters>>,
    started: Instant,
    queue_deadline: Duration,
}

/// Whether a single request object is a pure read: answerable from the
/// published snapshot, mutating nothing. `constants` stops being a read
/// the moment it carries a `config` override (the override path runs a
/// one-off analysis through the shared cache).
fn is_read_op(req: &Object) -> bool {
    match req.get("op").and_then(Json::as_str) {
        Some("health") | Some("stats") | Some("explain") => true,
        Some("constants") => req.get("config").is_none(),
        _ => false,
    }
}

/// Whether a whole parsed frame goes to the read pool: a single read
/// op, or a well-formed `batch` made only of read ops. Anything else —
/// writers, mixed or oversized batches, malformed shapes — takes the
/// serialized writer path, which answers (or rejects) it inline.
fn is_read_frame(req: &Json) -> bool {
    let Some(o) = req.as_object() else {
        return false;
    };
    match o.get("op").and_then(Json::as_str) {
        Some("batch") => match o.get("requests").and_then(Json::as_array) {
            Some(items) if items.len() <= MAX_BATCH => items
                .iter()
                .all(|it| it.as_object().is_some_and(is_read_op)),
            _ => false,
        },
        _ => is_read_op(o),
    }
}

/// Where a dequeued frame executes.
enum Route {
    /// Not even JSON: answer inline with the parse error.
    Malformed(String),
    /// Pure reads — concurrent, against the published snapshot.
    Read(Json),
    /// Everything else — serialized on the main thread.
    Writer(Json),
}

fn classify(line: &str) -> Route {
    match json::parse(line) {
        Err(e) => Route::Malformed(format!("malformed JSON: {e}")),
        Ok(req) if is_read_frame(&req) => Route::Read(req),
        Ok(req) => Route::Writer(req),
    }
}

/// Serves one read op from the snapshot. The payloads mirror what the
/// single-threaded daemon answered: `constants`/`explain` render through
/// the same engine helpers (byte-identical by construction), and the
/// telemetry ops read the counters published with the snapshot.
fn read_payload(
    snap: &Snapshot,
    ctx: &ReadCtx,
    draining: bool,
    req: &Object,
) -> Result<Object, ServeError> {
    let op = str_field(req, "op")?;
    match op {
        "health" => {
            let mut o = Object::new();
            o.set(
                "status",
                Json::from(if draining { "draining" } else { "ok" }),
            );
            o.set(
                "uptime_ms",
                Json::from(ctx.started.elapsed().as_millis() as u64),
            );
            o.set(
                "in_flight",
                Json::from(ctx.shared.in_flight.load(Ordering::SeqCst)),
            );
            o.set("shed", Json::from(ctx.shared.shed.load(Ordering::SeqCst)));
            o.set("cache_hits", Json::from(snap.cache.hits));
            o.set("cache_misses", Json::from(snap.cache.misses));
            o.set("cache_entries", Json::from(snap.cache_len));
            o.set("cache_recovered", Json::from(snap.cache.recovered));
            o.set(
                "cache_persisted_hits",
                Json::from(snap.cache.persisted_hits),
            );
            o.set("degraded_last", Json::from(snap.outcome.degraded));
            Ok(o)
        }
        "stats" => {
            let stats = snap.stats;
            let cache = snap.cache;
            let errors = stats.errors + ctx.counters.read_errors.load(Ordering::SeqCst);
            let t = &snap.analysis.timings;
            let mut o = Object::new();
            o.set("requests", Json::from(stats.requests));
            o.set("updates", Json::from(stats.updates));
            o.set("loads", Json::from(stats.loads));
            o.set("errors", Json::from(errors));
            o.set("degraded_requests", Json::from(stats.degraded_requests));
            o.set("panics_contained", Json::from(stats.panics_contained));
            o.set("shed", Json::from(ctx.shared.shed.load(Ordering::SeqCst)));
            o.set("cache_hits", Json::from(cache.hits));
            o.set("cache_misses", Json::from(cache.misses));
            o.set("cache_evictions", Json::from(cache.evictions));
            o.set("cache_bypasses", Json::from(cache.bypasses));
            o.set("cache_entries", Json::from(snap.cache_len));
            o.set("cache_recovered", Json::from(cache.recovered));
            o.set("cache_persisted_hits", Json::from(cache.persisted_hits));
            if let Some(rate) = cache.hit_rate() {
                o.set("cache_hit_rate", Json::Float(rate));
            }
            if let Some(sc) = ctx.store.as_ref() {
                o.set(
                    "store_snapshots",
                    Json::from(sc.snapshots.load(Ordering::SeqCst)),
                );
                o.set(
                    "store_snapshot_failures",
                    Json::from(sc.snapshot_failures.load(Ordering::SeqCst)),
                );
                o.set("store_recovered", Json::from(sc.recovered));
                o.set(
                    "store_discarded",
                    match &sc.discarded {
                        None => Json::Null,
                        Some(reason) => Json::from(reason.label()),
                    },
                );
            }
            let mut timings = Object::new();
            timings.set("modref_us", Json::from(t.modref.wall.as_micros() as u64));
            timings.set("retjump_us", Json::from(t.retjump.wall.as_micros() as u64));
            timings.set("jump_us", Json::from(t.jump.wall.as_micros() as u64));
            timings.set("solve_us", Json::from(t.solve.wall.as_micros() as u64));
            o.set("last_timings", Json::from(timings));
            Ok(o)
        }
        "constants" => {
            let proc = match req.get("proc") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| ServeError::BadRequest("`proc` must be a string".into()))?,
                ),
            };
            let report = snap.constants(proc)?;
            let mut o = outcome_payload(&snap.outcome);
            let report = report.to_json();
            if let Some(fields) = report.as_object() {
                for (k, v) in fields.iter() {
                    o.set(k, v.clone());
                }
            }
            Ok(o)
        }
        "explain" => {
            let proc = str_field(req, "proc")?;
            let slot = match req.get("slot") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| ServeError::BadRequest("`slot` must be a string".into()))?,
                ),
            };
            let depth = match req.get("depth") {
                None => 3,
                Some(v) => v.as_i64().filter(|&d| d >= 0).ok_or_else(|| {
                    ServeError::BadRequest("`depth` must be a non-negative integer".into())
                })? as usize,
            };
            let text = snap.explain(proc, slot, depth)?;
            let mut o = Object::new();
            o.set("text", Json::from(text));
            Ok(o)
        }
        other => Err(ServeError::BadRequest(format!(
            "unknown op `{other}` on the read path"
        ))),
    }
}

/// One read request (a frame or a `batch` item) to a full response
/// object. Structured errors bump the pool's `read_errors`.
fn read_item(snap: &Snapshot, ctx: &ReadCtx, draining: bool, item: &Json) -> Json {
    let (id, result) = match item.as_object() {
        None => (
            Json::Null,
            Err(ServeError::BadRequest(
                "request must be a JSON object".into(),
            )),
        ),
        Some(o) => {
            let id = o.get("id").cloned().unwrap_or(Json::Null);
            (id, read_payload(snap, ctx, draining, o))
        }
    };
    match result {
        Ok(payload) => ok_json(&id, payload),
        Err(e) => {
            ctx.counters.read_errors.fetch_add(1, Ordering::SeqCst);
            err_json(&id, e.kind(), &e.to_string())
        }
    }
}

/// Serves one read frame — a single op, or a read-only `batch` answered
/// item by item against one snapshot (so every item in the batch sees
/// the same epoch).
fn serve_read_frame(snap: &Snapshot, ctx: &ReadCtx, draining: bool, req: &Json) -> String {
    let Some(o) = req.as_object() else {
        return error_response(&Json::Null, "bad_request", "request must be a JSON object");
    };
    if o.get("op").and_then(Json::as_str) == Some("batch") {
        let id = req_id(req);
        let results: Vec<Json> = o
            .get("requests")
            .and_then(Json::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|it| read_item(snap, ctx, draining, it))
                    .collect()
            })
            .unwrap_or_default();
        let mut payload = Object::new();
        payload.set("results", Json::Array(results));
        ok_response(&id, payload)
    } else {
        read_item(snap, ctx, draining, req).to_string()
    }
}

/// The daemon. Blocks until stdin closes, SIGTERM/SIGINT arrives, or a
/// `shutdown` request is served; returns the number of requests shed so
/// the caller can report it.
pub fn serve(src: &str, config: &Config, opts: &ServeOpts) -> Result<(), String> {
    let ServeOpts {
        socket,
        max_inflight,
        queue_ms,
        drain_ms,
        request_deadline_ms,
        serve_workers,
        ..
    } = opts.clone();
    let (mut engine, mut store) = boot_engine(src, config, opts)?;
    install_signal_handlers();

    let shared = Arc::new(Shared::default());
    let mut pool = ReadPool::new(serve_workers, engine.snapshot());
    let ctx = Arc::new(ReadCtx {
        shared: Arc::clone(&shared),
        counters: pool.counters(),
        store: store.as_ref().map(|st| Arc::clone(&st.counters)),
        started: Instant::now(),
        queue_deadline: Duration::from_millis(queue_ms),
    });
    let (tx, rx) = mpsc::sync_channel::<Incoming>(max_inflight);
    let stdin_closed = Arc::new(AtomicBool::new(false));

    {
        let tx = tx.clone();
        let shared = Arc::clone(&shared);
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                admit(&tx, &shared, line, Sink::Stdout);
            }
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }

    let mut socket_path = None;
    if let Some(path) = socket.as_deref() {
        let listener = bind_socket(path)?;
        socket_path = Some(path.to_string());
        let tx = tx.clone();
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let tx = tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let Ok(write_half) = conn.try_clone() else {
                        return;
                    };
                    let sink = Sink::Conn(Arc::new(Mutex::new(write_half)));
                    for line in BufReader::new(conn).lines() {
                        let Ok(line) = line else { break };
                        if line.trim().is_empty() {
                            continue;
                        }
                        admit(&tx, &shared, line, sink.clone());
                    }
                });
            }
        });
    }
    drop(tx);

    let mut shutdown = false;
    // Writer/inline frames finished on the main thread; pooled frames
    // are counted by the pool's `completed`. The sum drives the
    // `--snapshot-every-n` cadence.
    let mut inline_served: u64 = 0;

    // Serve until a shutdown signal, then fall through to the drain.
    // Stdin EOF ends a stdin-only daemon; with a socket configured it
    // just retires the stdin transport (daemons under a supervisor run
    // with stdin on /dev/null), and the socket keeps serving.
    let stdin_eof_stops = socket_path.is_none();
    while !shutdown {
        if TERM.load(Ordering::SeqCst) || (stdin_eof_stops && stdin_closed.load(Ordering::SeqCst)) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(inc) => {
                if inc.at.elapsed() > ctx.queue_deadline {
                    shared.shed.fetch_add(1, Ordering::SeqCst);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    inc.sink.send_line(&error_response(
                        &peek_id(&inc.line),
                        "overloaded",
                        "request exceeded the queue deadline before processing",
                    ));
                    inline_served += 1;
                } else {
                    match classify(&inc.line) {
                        Route::Malformed(msg) => {
                            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                            inc.sink
                                .send_line(&error_response(&Json::Null, "bad_request", &msg));
                            inline_served += 1;
                        }
                        Route::Read(req) => {
                            // Concurrent: the queue-deadline check happens
                            // when the job actually executes.
                            let ctx = Arc::clone(&ctx);
                            let sink = inc.sink.clone();
                            let at = inc.at;
                            pool.submit(Box::new(move |snap| {
                                let response = if at.elapsed() > ctx.queue_deadline {
                                    ctx.shared.shed.fetch_add(1, Ordering::SeqCst);
                                    error_response(
                                        &req_id(&req),
                                        "overloaded",
                                        "request exceeded the queue deadline before processing",
                                    )
                                } else {
                                    serve_read_frame(snap, &ctx, false, &req)
                                };
                                ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                                sink.send_line(&response);
                            }));
                        }
                        Route::Writer(req) => {
                            // Exclusive epoch: every in-flight read finishes
                            // (and its reply flushes) before the engine
                            // mutates; the next snapshot publishes before
                            // any later read runs.
                            pool.quiesce();
                            handle_writer(
                                &mut engine,
                                &ctx,
                                &inc.sink,
                                &req,
                                request_deadline_ms,
                                &mut shutdown,
                                false,
                                &mut store,
                            );
                            pool.publish(engine.snapshot());
                            inline_served += 1;
                        }
                    }
                }
                if let Some(st) = store.as_mut() {
                    let total = inline_served + ctx.counters.completed.load(Ordering::SeqCst);
                    st.maybe_snapshot(&engine, total, opts.snapshot_every_n);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Pooled reads complete asynchronously: check the
                // snapshot cadence on idle ticks too.
                if let Some(st) = store.as_mut() {
                    let total = inline_served + ctx.counters.completed.load(Ordering::SeqCst);
                    st.maybe_snapshot(&engine, total, opts.snapshot_every_n);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Entering the drain: let every pooled read flush its reply, then
    // retire the workers. Drain-time reads are served inline against a
    // fresh snapshot — same rendering path, zero idle threads.
    pool.quiesce();
    pool.shutdown();

    // Graceful drain: serve whatever is already queued, under a deadline;
    // shed the rest explicitly. New connections may still enqueue during
    // the drain — they get `shutting_down` like everything else past the
    // deadline, or service if they make it in time.
    let drain_until = Instant::now() + Duration::from_millis(drain_ms);
    loop {
        let now = Instant::now();
        if now >= drain_until {
            // Past the deadline: shed synchronously, do not analyze.
            while let Ok(inc) = rx.try_recv() {
                shared.shed.fetch_add(1, Ordering::SeqCst);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                inc.sink.send_line(&error_response(
                    &peek_id(&inc.line),
                    "shutting_down",
                    "daemon is shutting down",
                ));
            }
            break;
        }
        match rx.recv_timeout(drain_until - now) {
            Ok(inc) => {
                let mut ignored = false;
                handle(
                    &mut engine,
                    &ctx,
                    inc,
                    request_deadline_ms,
                    &mut ignored,
                    true,
                    &mut store,
                );
                inline_served += 1;
                if let Some(st) = store.as_mut() {
                    let total = inline_served + ctx.counters.completed.load(Ordering::SeqCst);
                    st.maybe_snapshot(&engine, total, opts.snapshot_every_n);
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Snapshot-on-drain: persist whatever the session learned. A failure
    // here is logged and counted like any other snapshot failure — the
    // previous store file, if any, is still intact and verifiable.
    if let Some(st) = store.as_mut() {
        let _ = st.snapshot(&engine);
    }

    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
    let shed = shared.shed.load(Ordering::SeqCst);
    let stats = engine.stats();
    let cache = engine.cache_stats();
    let store_note = match &store {
        None => String::new(),
        Some(st) => format!(
            "; store {} snapshot(s), {} failed, {} recovered",
            st.counters.snapshots.load(Ordering::SeqCst),
            st.counters.snapshot_failures.load(Ordering::SeqCst),
            st.counters.recovered
        ),
    };
    eprintln!(
        "serve: {} request(s), {} degraded, {} panic(s) contained, {} shed; \
         cache {}/{} hit/miss ({} persisted){store_note}",
        stats.requests,
        stats.degraded_requests,
        stats.panics_contained,
        shed,
        cache.hits,
        cache.misses,
        cache.persisted_hits,
    );
    Ok(())
}

/// Builds the engine, restoring the summary cache from `--store` when
/// one is configured. Store problems of any kind are a logged cold
/// start, never a boot failure.
fn boot_engine(
    src: &str,
    config: &Config,
    opts: &ServeOpts,
) -> Result<(ServeEngine, Option<StoreState>), String> {
    let Some(path) = opts.store.as_deref() else {
        let engine =
            ServeEngine::new(src, config).map_err(|e| format!("error: starting daemon: {e}"))?;
        return Ok((engine, None));
    };
    // The spelling was validated at argument-parse time.
    let injector = opts.inject_io.as_deref().and_then(IoInjector::parse);
    let mut summary_store = SummaryStore::with_injector(path, injector);
    let (engine, status) = ServeEngine::new_with_store(src, config, &mut summary_store)
        .map_err(|e| format!("error: starting daemon: {e}"))?;
    let mut recovered = 0;
    let mut discarded = None;
    match status {
        LoadStatus::Fresh => eprintln!("serve: store {path}: no prior store, starting cold"),
        LoadStatus::Restored(n) => {
            recovered = n as u64;
            eprintln!("serve: store {path}: restored {n} summaries");
        }
        LoadStatus::Discarded(reason) => {
            eprintln!(
                "serve: store {path}: discarded ({}): {reason}; starting cold",
                reason.label()
            );
            discarded = Some(reason);
        }
    }
    let state = StoreState {
        store: summary_store,
        counters: Arc::new(StoreCounters {
            snapshots: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            recovered,
            discarded,
        }),
        served_at_snapshot: 0,
    };
    Ok((engine, Some(state)))
}

/// Binds the daemon's Unix socket, reclaiming a stale socket file left
/// by a crashed daemon: on `AddrInUse`, probe with a connect — if
/// something accepts, a live daemon owns the path and binding fails; if
/// nothing does, the file is an orphan and is unlinked and rebound.
fn bind_socket(path: &str) -> Result<UnixListener, String> {
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(format!(
                    "error: binding {path}: another daemon is already listening"
                ));
            }
            std::fs::remove_file(path)
                .map_err(|e| format!("error: removing stale socket {path}: {e}"))?;
            UnixListener::bind(path).map_err(|e| format!("error: binding {path}: {e}"))
        }
        Err(e) => Err(format!("error: binding {path}: {e}")),
    }
}

/// Admission control: try to enqueue, shed with an explicit response on
/// overflow. Runs on transport threads.
fn admit(tx: &SyncSender<Incoming>, shared: &Shared, line: String, sink: Sink) {
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    let inc = Incoming {
        line,
        sink,
        at: Instant::now(),
    };
    match tx.try_send(inc) {
        Ok(()) => {}
        Err(TrySendError::Full(inc)) => {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.shed.fetch_add(1, Ordering::SeqCst);
            inc.sink.send_line(&error_response(
                &peek_id(&inc.line),
                "overloaded",
                "admission queue is full; retry later",
            ));
        }
        Err(TrySendError::Disconnected(inc)) => {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.shed.fetch_add(1, Ordering::SeqCst);
            inc.sink.send_line(&error_response(
                &peek_id(&inc.line),
                "shutting_down",
                "daemon is shutting down",
            ));
        }
    }
}

/// Serves one admitted request inline on the main thread — the drain
/// path, where the pool is already retired. Reads render against a
/// fresh snapshot through the same builders the pool uses.
fn handle(
    engine: &mut ServeEngine,
    ctx: &ReadCtx,
    inc: Incoming,
    request_deadline_ms: Option<u64>,
    shutdown: &mut bool,
    draining: bool,
    store: &mut Option<StoreState>,
) {
    if inc.at.elapsed() > ctx.queue_deadline {
        ctx.shared.shed.fetch_add(1, Ordering::SeqCst);
        ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        inc.sink.send_line(&error_response(
            &peek_id(&inc.line),
            "overloaded",
            "request exceeded the queue deadline before processing",
        ));
        return;
    }
    match classify(&inc.line) {
        Route::Malformed(msg) => {
            ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            inc.sink
                .send_line(&error_response(&Json::Null, "bad_request", &msg));
        }
        Route::Read(req) => {
            let snap = engine.snapshot();
            let response = serve_read_frame(&snap, ctx, draining, &req);
            ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            inc.sink.send_line(&response);
        }
        Route::Writer(req) => handle_writer(
            engine,
            ctx,
            &inc.sink,
            &req,
            request_deadline_ms,
            shutdown,
            draining,
            store,
        ),
    }
}

/// Serves one writer frame on the main thread. The caller has already
/// quiesced the pool (live path) or retired it (drain path), so the
/// engine mutates under an exclusive epoch; the caller republishes the
/// snapshot afterwards.
#[allow(clippy::too_many_arguments)]
fn handle_writer(
    engine: &mut ServeEngine,
    ctx: &ReadCtx,
    sink: &Sink,
    req: &Json,
    request_deadline_ms: Option<u64>,
    shutdown: &mut bool,
    draining: bool,
    store: &mut Option<StoreState>,
) {
    let id = req_id(req);
    let is_batch = req
        .as_object()
        .and_then(|o| o.get("op"))
        .and_then(Json::as_str)
        == Some("batch");
    let result = if is_batch {
        match req.as_object() {
            None => Err(ServeError::BadRequest(
                "request must be a JSON object".into(),
            )),
            Some(o) => batch_writer(
                engine,
                ctx,
                o,
                request_deadline_ms,
                shutdown,
                draining,
                store,
            ),
        }
    } else {
        dispatch(engine, req, request_deadline_ms, shutdown, store)
    };
    let response = match result {
        Ok(payload) => ok_response(&id, payload),
        Err(e) => error_response(&id, e.kind(), &e.to_string()),
    };
    ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    sink.send_line(&response);
}

/// A `batch` frame that reached the writer path: it carries at least
/// one writer item (or a malformed one), so the whole frame executes
/// serialized, item by item, in order. Read items still render through
/// the snapshot builders (one fresh snapshot each, since a preceding
/// writer item may have mutated the engine). An in-batch `shutdown`
/// sheds every later item explicitly — the protocol's partial-shed
/// outcome.
#[allow(clippy::too_many_arguments)]
fn batch_writer(
    engine: &mut ServeEngine,
    ctx: &ReadCtx,
    req: &Object,
    request_deadline_ms: Option<u64>,
    shutdown: &mut bool,
    draining: bool,
    store: &mut Option<StoreState>,
) -> Result<Object, ServeError> {
    let items = req
        .get("requests")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::BadRequest("batch needs a `requests` array".into()))?;
    if items.len() > MAX_BATCH {
        return Err(ServeError::BadRequest(format!(
            "batch carries {} requests (max {MAX_BATCH})",
            items.len()
        )));
    }
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        let id = req_id(item);
        if *shutdown {
            results.push(err_json(
                &id,
                "shutting_down",
                "daemon is shutting down; batch item shed",
            ));
            continue;
        }
        let is_read = item.as_object().is_some_and(is_read_op);
        if is_read {
            let snap = engine.snapshot();
            results.push(read_item(&snap, ctx, draining, item));
        } else {
            results.push(
                match dispatch(engine, item, request_deadline_ms, shutdown, store) {
                    Ok(payload) => ok_json(&id, payload),
                    Err(e) => err_json(&id, e.kind(), &e.to_string()),
                },
            );
        }
    }
    let mut payload = Object::new();
    payload.set("results", Json::Array(results));
    Ok(payload)
}

/// Builds the effective per-request configuration: explicit `config`
/// overrides win; otherwise the daemon's default request deadline (if
/// any) is stamped fresh so the countdown starts now, not at boot.
fn request_config(
    engine: &ServeEngine,
    req: &Object,
    request_deadline_ms: Option<u64>,
) -> Result<Option<Config>, ServeError> {
    if let Some(value) = req.get("config") {
        let overrides = value.as_object().ok_or_else(|| {
            ServeError::BadRequest("`config` must be an object of overrides".into())
        })?;
        return config_from_overrides(*engine.config(), overrides).map(Some);
    }
    match request_deadline_ms {
        None => Ok(None),
        Some(ms) => Ok(Some(
            engine
                .config()
                .rebuild()
                .deadline_ms(ms)
                .build()
                .map_err(ServeError::Invalid)?,
        )),
    }
}

fn str_field<'a>(req: &'a Object, key: &str) -> Result<&'a str, ServeError> {
    req.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("request needs a string `{key}` field")))
}

/// Serves one writer op on the engine. Pure reads never reach this
/// function: single read frames and read-only batches go to the pool,
/// drain-time reads go through [`serve_read_frame`], and read items
/// inside a writer batch are routed by [`batch_writer`]. What remains
/// is everything that can mutate (or needs a one-off analysis).
fn dispatch(
    engine: &mut ServeEngine,
    req: &Json,
    request_deadline_ms: Option<u64>,
    shutdown: &mut bool,
    store: &mut Option<StoreState>,
) -> Result<Object, ServeError> {
    let req = req
        .as_object()
        .ok_or_else(|| ServeError::BadRequest("request must be a JSON object".into()))?;
    let op = str_field(req, "op")?;
    match op {
        "analyze" => {
            let config = request_config(engine, req, request_deadline_ms)?;
            let outcome = engine.analyze(config)?;
            Ok(outcome_payload(&outcome))
        }
        "constants" => {
            let config = request_config(engine, req, request_deadline_ms)?;
            let proc = match req.get("proc") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| ServeError::BadRequest("`proc` must be a string".into()))?,
                ),
            };
            let (report, outcome) = engine.constants(proc, config)?;
            let mut o = outcome_payload(&outcome);
            let report = report.to_json();
            if let Some(fields) = report.as_object() {
                for (k, v) in fields.iter() {
                    o.set(k, v.clone());
                }
            }
            Ok(o)
        }
        "update" => {
            let proc = str_field(req, "proc")?.to_string();
            let body = str_field(req, "body")?.to_string();
            let outcome = engine.update(&proc, &body)?;
            Ok(outcome_payload(&outcome))
        }
        "load" => {
            let source = str_field(req, "source")?.to_string();
            let outcome = engine.load(&source)?;
            Ok(outcome_payload(&outcome))
        }
        "snapshot" => {
            let Some(st) = store.as_mut() else {
                return Err(ServeError::BadRequest(
                    "no store configured (start the daemon with --store <path>)".into(),
                ));
            };
            let mut o = Object::new();
            match st.snapshot(engine) {
                Ok(records) => {
                    o.set("snapshotted", Json::from(true));
                    o.set("records", Json::from(records));
                }
                Err(msg) => {
                    // A failed snapshot is still a served request: the
                    // previous store file is intact, so report and go on.
                    o.set("snapshotted", Json::from(false));
                    o.set("message", Json::from(msg));
                }
            }
            Ok(o)
        }
        "shutdown" => {
            *shutdown = true;
            let mut o = Object::new();
            o.set("status", Json::from("draining"));
            Ok(o)
        }
        // A top-level batch is intercepted before dispatch; one arriving
        // here is an item inside another batch.
        "batch" => Err(ServeError::BadRequest("batch requests cannot nest".into())),
        other => Err(ServeError::BadRequest(format!("unknown op `{other}`"))),
    }
}

/// Backoff delays are capped here so a long retry ladder degrades into
/// polling, not into unbounded sleeps.
const RETRY_CAP_MS: u64 = 5_000;

/// The deterministic backoff schedule for `--retries`: attempt `i`
/// sleeps `min(cap, base << i)` plus a jitter of up to half that,
/// drawn from the in-tree [`Rng`] seeded with `seed`. Pure, so the
/// exact schedule is unit-testable and reproducible.
fn backoff_schedule(retries: u32, base_ms: u64, cap_ms: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed ^ 0xC0FF_EE00_B0FF_u64);
    (0..retries)
        .map(|i| {
            let exp = base_ms.saturating_mul(1u64.checked_shl(i).unwrap_or(u64::MAX));
            let delay = exp.min(cap_ms);
            delay + rng.below(delay / 2 + 1)
        })
        .collect()
}

/// One lockstep client connection: a write half plus a buffered reader
/// over its clone.
struct Client {
    write: UnixStream,
    read: BufReader<UnixStream>,
}

impl Client {
    fn open(socket: &str) -> std::io::Result<Client> {
        let write = UnixStream::connect(socket)?;
        let read = BufReader::new(write.try_clone()?);
        Ok(Client { write, read })
    }

    /// Opens a connection, sleeping through `schedule` on refusal. The
    /// final error is the one reported.
    fn open_with_backoff(socket: &str, schedule: &[u64]) -> Result<Client, String> {
        let mut last = None;
        for (i, delay) in schedule
            .iter()
            .map(Some)
            .chain(std::iter::once(None))
            .enumerate()
        {
            match Client::open(socket) {
                Ok(client) => {
                    if i > 0 {
                        eprintln!(
                            "connect: {socket}: connected after {i} retr{}",
                            if i == 1 { "y" } else { "ies" }
                        );
                    }
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
            let Some(delay) = delay else { break };
            std::thread::sleep(Duration::from_millis(*delay));
        }
        Err(format!(
            "error: connecting {socket}: {}",
            last.map(|e| e.to_string()).unwrap_or_default()
        ))
    }

    /// Sends one request line, returns the one response line, or `None`
    /// on a dead connection (EOF / write failure).
    fn exchange(&mut self, line: &str) -> Option<String> {
        writeln!(self.write, "{line}").ok()?;
        self.write.flush().ok()?;
        let mut response = String::new();
        match self.read.read_line(&mut response) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(response.trim_end_matches('\n').to_string()),
        }
    }
}

/// Whether a response line is an explicit shed the client may retry
/// (`overloaded` admission rejections and `shutting_down` drains).
fn is_retryable_shed(response: &str) -> bool {
    let Ok(parsed) = json::parse(response) else {
        return false;
    };
    let kind = parsed
        .as_object()
        .and_then(|o| o.get("error"))
        .and_then(Json::as_object)
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str);
    matches!(kind, Some("overloaded") | Some("shutting_down"))
}

/// Client mode (`ipcc serve --connect <socket>`): forward stdin lines to
/// a running daemon, print every response line to stdout. Exits when
/// stdin closes and all responses have been received.
///
/// With `retries = 0` requests are pipelined: stdin is streamed to the
/// daemon while a reader thread prints responses as they arrive. With
/// `retries > 0` the client runs in lockstep (one request, one
/// response) so it can retry refused connections, explicit
/// `overloaded`/`shutting_down` sheds, and mid-session EOFs with the
/// capped, jittered exponential backoff of [`backoff_schedule`].
pub fn connect(socket: &str, retries: u32, retry_ms: u64) -> Result<(), String> {
    if retries == 0 {
        return connect_pipelined(socket);
    }
    let schedule = backoff_schedule(retries, retry_ms, RETRY_CAP_MS, hash_seed(socket));
    let mut client = Client::open_with_backoff(socket, &schedule)?;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut response = client.exchange(&line);
        for delay in &schedule {
            match &response {
                // A shed is a complete response from a live daemon:
                // back off, then resend on the same connection.
                Some(r) if is_retryable_shed(r) => {
                    std::thread::sleep(Duration::from_millis(*delay));
                    response = client.exchange(&line);
                }
                // A dead connection (daemon crashed or restarted
                // mid-session): back off, reconnect, resend.
                None => {
                    std::thread::sleep(Duration::from_millis(*delay));
                    if let Ok(next) = Client::open(socket) {
                        client = next;
                        response = client.exchange(&line);
                    }
                }
                Some(_) => break,
            }
        }
        match response {
            Some(r) => println!("{r}"),
            None => {
                return Err(format!(
                    "error: {socket}: connection lost; retries exhausted"
                ))
            }
        }
    }
    Ok(())
}

/// A stable per-socket-path jitter seed (FNV-1a over the path bytes).
fn hash_seed(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The original pipelined client (`--retries 0`, the default).
fn connect_pipelined(socket: &str) -> Result<(), String> {
    let stream =
        UnixStream::connect(socket).map_err(|e| format!("error: connecting {socket}: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("error: cloning socket: {e}"))?;
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(read_half).lines() {
            let Ok(line) = line else { break };
            println!("{line}");
        }
    });
    let mut write_half = stream;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        writeln!(write_half, "{line}").map_err(|e| format!("error: writing request: {e}"))?;
    }
    write_half
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("error: closing socket: {e}"))?;
    let _ = reader.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_monotone_in_base() {
        let a = backoff_schedule(5, 50, 5_000, 7);
        let b = backoff_schedule(5, 50, 5_000, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5);
        // Attempt i's delay lies in [min(cap, base * 2^i), 1.5x that].
        for (i, &delay) in a.iter().enumerate() {
            let exp = (50u64 << i).min(5_000);
            assert!(delay >= exp, "attempt {i}: {delay} < {exp}");
            assert!(delay <= exp + exp / 2, "attempt {i}: {delay} too jittered");
        }
        // The cap really does bound a long ladder.
        let long = backoff_schedule(20, 100, 1_000, 3);
        assert!(long.iter().all(|&d| d <= 1_500), "{long:?}");
        // Different seeds jitter differently (with overwhelming odds).
        let c = backoff_schedule(5, 50, 5_000, 8);
        assert_ne!(a, c);
        assert!(backoff_schedule(0, 50, 5_000, 7).is_empty());
    }

    #[test]
    fn shed_detection_only_matches_retryable_kinds() {
        assert!(is_retryable_shed(
            r#"{"id":1,"ok":false,"error":{"kind":"overloaded","message":"m"}}"#
        ));
        assert!(is_retryable_shed(
            r#"{"id":1,"ok":false,"error":{"kind":"shutting_down","message":"m"}}"#
        ));
        assert!(!is_retryable_shed(
            r#"{"id":1,"ok":false,"error":{"kind":"bad_request","message":"m"}}"#
        ));
        assert!(!is_retryable_shed(r#"{"id":1,"ok":true}"#));
        assert!(!is_retryable_shed("not json at all"));
    }

    fn scratch_socket(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ipcc-serve-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn bind_socket_reclaims_a_stale_socket_file() {
        let path = scratch_socket("stale.sock");
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        // A socket file with no listener behind it — what a kill -9'd
        // daemon leaves. Bind and drop so only the file remains.
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists(), "dropping the listener keeps the file");
        let reclaimed = bind_socket(&path_s).expect("stale socket must be reclaimed");
        drop(reclaimed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bind_socket_refuses_a_live_daemon() {
        let path = scratch_socket("live.sock");
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let live = UnixListener::bind(&path).expect("first bind");
        // Keep the listener alive: the second daemon must refuse, not
        // steal the socket.
        let err = bind_socket(&path_s).expect_err("live socket must not be stolen");
        assert!(err.contains("already listening"), "{err}");
        drop(live);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bind_socket_reports_unbindable_paths() {
        let err = bind_socket("/nonexistent-dir-ipcc/x.sock").expect_err("bad dir");
        assert!(err.contains("error: binding"), "{err}");
    }
}
