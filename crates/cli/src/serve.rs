//! `ipcc serve` — the transport layer of the incremental analysis
//! daemon.
//!
//! The engine ([`ipcp::serve::ServeEngine`]) owns all analysis state and
//! runs on the main thread. Transports — a stdin reader and, with
//! `--socket`, a Unix-socket acceptor — parse nothing: they push raw
//! request lines through a *bounded* channel (the admission control) and
//! carry a reply sink back to their origin. Everything a request can do
//! wrong becomes a structured JSON error response; no serve-path code
//! calls `process::exit`.
//!
//! Robustness envelope, outermost first:
//!
//! * **Admission.** The channel holds at most `--max-inflight` requests;
//!   a full channel sheds immediately with an `overloaded` response, and
//!   a request older than `--queue-ms` when dequeued is shed rather than
//!   served stale.
//! * **Deadlines.** `--request-deadline-ms` (or a per-request
//!   `config.deadline_ms` override) bounds each analysis; stages that
//!   time out answer ⊥ and the response carries `degraded: true` —
//!   constants are never invented under pressure.
//! * **Quarantine.** Panics inside analysis units degrade per-procedure;
//!   a request-level panic (quarantine disabled by override) is caught at
//!   the request boundary, answered as `"kind": "panic"`, and provably
//!   leaves the warm state and summary cache untouched.
//! * **Drain.** SIGTERM/SIGINT or a `shutdown` request stop admission and
//!   drain queued requests under `--drain-ms`; whatever cannot drain in
//!   time is shed with `shutting_down`.
//!
//! Protocol reference: `docs/SERVE.md`.

use ipcp::serve::json;
use ipcp::serve::{config_from_overrides, Json, Object, RequestOutcome, ServeEngine, ServeError};
use ipcp::Config;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Set by the C signal handler; polled by the worker loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    TERM.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        // POSIX signal(2) via the C ABI — no crates, no masks to manage;
        // the handler is a single atomic store.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
}

/// Where a request's response goes.
#[derive(Clone)]
enum Sink {
    Stdout,
    Conn(Arc<Mutex<UnixStream>>),
}

impl Sink {
    /// Best-effort line write: a transport that died mid-request must
    /// not take the daemon with it.
    fn send_line(&self, line: &str) {
        match self {
            Sink::Stdout => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            }
            Sink::Conn(stream) => {
                if let Ok(mut s) = stream.lock() {
                    let _ = writeln!(s, "{line}");
                    let _ = s.flush();
                }
            }
        }
    }
}

/// One admitted request: the raw line, its reply sink, and when it was
/// accepted (for the queue deadline).
struct Incoming {
    line: String,
    sink: Sink,
    at: Instant,
}

/// Transport-shared counters (the worker owns everything else).
#[derive(Default)]
struct Shared {
    /// Requests shed at admission or by the queue/drain deadlines.
    shed: AtomicU64,
    /// Requests currently queued or being processed.
    in_flight: AtomicU64,
}

fn error_response(id: &Json, kind: &str, message: &str) -> String {
    let mut err = Object::new();
    err.set("kind", Json::from(kind));
    err.set("message", Json::from(message));
    let mut o = Object::new();
    o.set("id", id.clone());
    o.set("ok", Json::from(false));
    o.set("error", Json::from(err));
    Json::from(o).to_string()
}

fn ok_response(id: &Json, payload: Object) -> String {
    let mut o = Object::new();
    o.set("id", id.clone());
    o.set("ok", Json::from(true));
    for (k, v) in payload.iter() {
        o.set(k, v.clone());
    }
    Json::from(o).to_string()
}

/// Pulls the request id out of a raw line for shed responses written
/// off-worker. Falls back to `null` when the line is not even JSON.
fn peek_id(line: &str) -> Json {
    json::parse(line)
        .ok()
        .and_then(|j| j.as_object().and_then(|o| o.get("id")).cloned())
        .unwrap_or(Json::Null)
}

fn outcome_payload(outcome: &RequestOutcome) -> Object {
    let mut o = Object::new();
    o.set("degraded", Json::from(outcome.degraded));
    o.set("cache_hits", Json::from(outcome.hits));
    o.set("cache_misses", Json::from(outcome.misses));
    o.set("cache_bypassed", Json::from(outcome.bypassed));
    o.set(
        "events",
        Json::Array(
            outcome
                .events
                .iter()
                .map(|e| Json::from(e.to_string()))
                .collect(),
        ),
    );
    o.set(
        "quarantined",
        Json::Array(
            outcome
                .quarantined
                .iter()
                .map(|q| Json::from(q.as_str()))
                .collect(),
        ),
    );
    o
}

/// The daemon. Blocks until stdin closes, SIGTERM/SIGINT arrives, or a
/// `shutdown` request is served; returns the number of requests shed so
/// the caller can report it.
#[allow(clippy::too_many_arguments)]
pub fn serve(
    src: &str,
    config: &Config,
    socket: Option<&str>,
    max_inflight: usize,
    queue_ms: u64,
    drain_ms: u64,
    request_deadline_ms: Option<u64>,
) -> Result<(), String> {
    let mut engine =
        ServeEngine::new(src, config).map_err(|e| format!("error: starting daemon: {e}"))?;
    install_signal_handlers();

    let shared = Arc::new(Shared::default());
    let (tx, rx) = mpsc::sync_channel::<Incoming>(max_inflight);
    let stdin_closed = Arc::new(AtomicBool::new(false));

    {
        let tx = tx.clone();
        let shared = Arc::clone(&shared);
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                admit(&tx, &shared, line, Sink::Stdout);
            }
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }

    let mut socket_path = None;
    if let Some(path) = socket {
        // A stale socket file from a previous daemon would break bind.
        let _ = std::fs::remove_file(path);
        let listener =
            UnixListener::bind(path).map_err(|e| format!("error: binding {path}: {e}"))?;
        socket_path = Some(path.to_string());
        let tx = tx.clone();
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let tx = tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let Ok(write_half) = conn.try_clone() else {
                        return;
                    };
                    let sink = Sink::Conn(Arc::new(Mutex::new(write_half)));
                    for line in BufReader::new(conn).lines() {
                        let Ok(line) = line else { break };
                        if line.trim().is_empty() {
                            continue;
                        }
                        admit(&tx, &shared, line, sink.clone());
                    }
                });
            }
        });
    }
    drop(tx);

    let started = Instant::now();
    let queue_deadline = Duration::from_millis(queue_ms);
    let mut shutdown = false;

    // Serve until a shutdown signal, then fall through to the drain.
    // Stdin EOF ends a stdin-only daemon; with a socket configured it
    // just retires the stdin transport (daemons under a supervisor run
    // with stdin on /dev/null), and the socket keeps serving.
    let stdin_eof_stops = socket_path.is_none();
    while !shutdown {
        if TERM.load(Ordering::SeqCst) || (stdin_eof_stops && stdin_closed.load(Ordering::SeqCst)) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(inc) => {
                handle(
                    &mut engine,
                    &shared,
                    inc,
                    queue_deadline,
                    request_deadline_ms,
                    started,
                    &mut shutdown,
                    false,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Graceful drain: serve whatever is already queued, under a deadline;
    // shed the rest explicitly. New connections may still enqueue during
    // the drain — they get `shutting_down` like everything else past the
    // deadline, or service if they make it in time.
    let drain_until = Instant::now() + Duration::from_millis(drain_ms);
    loop {
        let now = Instant::now();
        if now >= drain_until {
            // Past the deadline: shed synchronously, do not analyze.
            while let Ok(inc) = rx.try_recv() {
                shared.shed.fetch_add(1, Ordering::SeqCst);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                inc.sink.send_line(&error_response(
                    &peek_id(&inc.line),
                    "shutting_down",
                    "daemon is shutting down",
                ));
            }
            break;
        }
        match rx.recv_timeout(drain_until - now) {
            Ok(inc) => {
                let mut ignored = false;
                handle(
                    &mut engine,
                    &shared,
                    inc,
                    queue_deadline,
                    request_deadline_ms,
                    started,
                    &mut ignored,
                    true,
                );
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
    let shed = shared.shed.load(Ordering::SeqCst);
    let stats = engine.stats();
    eprintln!(
        "serve: {} request(s), {} degraded, {} panic(s) contained, {} shed; \
         cache {}/{} hit/miss",
        stats.requests,
        stats.degraded_requests,
        stats.panics_contained,
        shed,
        engine.cache_stats().hits,
        engine.cache_stats().misses,
    );
    Ok(())
}

/// Admission control: try to enqueue, shed with an explicit response on
/// overflow. Runs on transport threads.
fn admit(tx: &SyncSender<Incoming>, shared: &Shared, line: String, sink: Sink) {
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    let inc = Incoming {
        line,
        sink,
        at: Instant::now(),
    };
    match tx.try_send(inc) {
        Ok(()) => {}
        Err(TrySendError::Full(inc)) => {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.shed.fetch_add(1, Ordering::SeqCst);
            inc.sink.send_line(&error_response(
                &peek_id(&inc.line),
                "overloaded",
                "admission queue is full; retry later",
            ));
        }
        Err(TrySendError::Disconnected(inc)) => {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.shed.fetch_add(1, Ordering::SeqCst);
            inc.sink.send_line(&error_response(
                &peek_id(&inc.line),
                "shutting_down",
                "daemon is shutting down",
            ));
        }
    }
}

/// Serves one admitted request on the worker thread.
#[allow(clippy::too_many_arguments)]
fn handle(
    engine: &mut ServeEngine,
    shared: &Shared,
    inc: Incoming,
    queue_deadline: Duration,
    request_deadline_ms: Option<u64>,
    started: Instant,
    shutdown: &mut bool,
    draining: bool,
) {
    let response = if inc.at.elapsed() > queue_deadline {
        shared.shed.fetch_add(1, Ordering::SeqCst);
        error_response(
            &peek_id(&inc.line),
            "overloaded",
            "request exceeded the queue deadline before processing",
        )
    } else {
        match json::parse(&inc.line) {
            Err(e) => error_response(&Json::Null, "bad_request", &format!("malformed JSON: {e}")),
            Ok(req) => {
                let id = req
                    .as_object()
                    .and_then(|o| o.get("id"))
                    .cloned()
                    .unwrap_or(Json::Null);
                match dispatch(
                    engine,
                    shared,
                    &req,
                    request_deadline_ms,
                    started,
                    shutdown,
                    draining,
                ) {
                    Ok(payload) => ok_response(&id, payload),
                    Err(e) => error_response(&id, e.kind(), &e.to_string()),
                }
            }
        }
    };
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    inc.sink.send_line(&response);
}

/// Builds the effective per-request configuration: explicit `config`
/// overrides win; otherwise the daemon's default request deadline (if
/// any) is stamped fresh so the countdown starts now, not at boot.
fn request_config(
    engine: &ServeEngine,
    req: &Object,
    request_deadline_ms: Option<u64>,
) -> Result<Option<Config>, ServeError> {
    if let Some(value) = req.get("config") {
        let overrides = value.as_object().ok_or_else(|| {
            ServeError::BadRequest("`config` must be an object of overrides".into())
        })?;
        return config_from_overrides(*engine.config(), overrides).map(Some);
    }
    match request_deadline_ms {
        None => Ok(None),
        Some(ms) => Ok(Some(
            engine
                .config()
                .rebuild()
                .deadline_ms(ms)
                .build()
                .map_err(ServeError::Invalid)?,
        )),
    }
}

fn str_field<'a>(req: &'a Object, key: &str) -> Result<&'a str, ServeError> {
    req.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("request needs a string `{key}` field")))
}

fn dispatch(
    engine: &mut ServeEngine,
    shared: &Shared,
    req: &Json,
    request_deadline_ms: Option<u64>,
    started: Instant,
    shutdown: &mut bool,
    draining: bool,
) -> Result<Object, ServeError> {
    let req = req
        .as_object()
        .ok_or_else(|| ServeError::BadRequest("request must be a JSON object".into()))?;
    let op = str_field(req, "op")?;
    match op {
        "health" => {
            let cache = engine.cache_stats();
            let mut o = Object::new();
            o.set(
                "status",
                Json::from(if draining { "draining" } else { "ok" }),
            );
            o.set(
                "uptime_ms",
                Json::from(started.elapsed().as_millis() as u64),
            );
            o.set(
                "in_flight",
                Json::from(shared.in_flight.load(Ordering::SeqCst)),
            );
            o.set("shed", Json::from(shared.shed.load(Ordering::SeqCst)));
            o.set("cache_hits", Json::from(cache.hits));
            o.set("cache_misses", Json::from(cache.misses));
            o.set("cache_entries", Json::from(engine.cache_len()));
            o.set("degraded_last", Json::from(engine.last_outcome().degraded));
            Ok(o)
        }
        "stats" => {
            let stats = engine.stats();
            let cache = engine.cache_stats();
            let t = &engine.analysis().timings;
            let mut o = Object::new();
            o.set("requests", Json::from(stats.requests));
            o.set("updates", Json::from(stats.updates));
            o.set("loads", Json::from(stats.loads));
            o.set("errors", Json::from(stats.errors));
            o.set("degraded_requests", Json::from(stats.degraded_requests));
            o.set("panics_contained", Json::from(stats.panics_contained));
            o.set("shed", Json::from(shared.shed.load(Ordering::SeqCst)));
            o.set("cache_hits", Json::from(cache.hits));
            o.set("cache_misses", Json::from(cache.misses));
            o.set("cache_evictions", Json::from(cache.evictions));
            o.set("cache_bypasses", Json::from(cache.bypasses));
            o.set("cache_entries", Json::from(engine.cache_len()));
            if let Some(rate) = cache.hit_rate() {
                o.set("cache_hit_rate", Json::Float(rate));
            }
            let mut timings = Object::new();
            timings.set("modref_us", Json::from(t.modref.wall.as_micros() as u64));
            timings.set("retjump_us", Json::from(t.retjump.wall.as_micros() as u64));
            timings.set("jump_us", Json::from(t.jump.wall.as_micros() as u64));
            timings.set("solve_us", Json::from(t.solve.wall.as_micros() as u64));
            o.set("last_timings", Json::from(timings));
            Ok(o)
        }
        "analyze" => {
            let config = request_config(engine, req, request_deadline_ms)?;
            let outcome = engine.analyze(config)?;
            Ok(outcome_payload(&outcome))
        }
        "constants" => {
            let config = request_config(engine, req, request_deadline_ms)?;
            let proc = match req.get("proc") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| ServeError::BadRequest("`proc` must be a string".into()))?,
                ),
            };
            let (report, outcome) = engine.constants(proc, config)?;
            let mut o = outcome_payload(&outcome);
            let report = report.to_json();
            if let Some(fields) = report.as_object() {
                for (k, v) in fields.iter() {
                    o.set(k, v.clone());
                }
            }
            Ok(o)
        }
        "explain" => {
            let proc = str_field(req, "proc")?;
            let slot = match req.get("slot") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| ServeError::BadRequest("`slot` must be a string".into()))?,
                ),
            };
            let depth = match req.get("depth") {
                None => 3,
                Some(v) => v.as_i64().filter(|&d| d >= 0).ok_or_else(|| {
                    ServeError::BadRequest("`depth` must be a non-negative integer".into())
                })? as usize,
            };
            let text = engine.explain(proc, slot, depth)?;
            let mut o = Object::new();
            o.set("text", Json::from(text));
            Ok(o)
        }
        "update" => {
            let proc = str_field(req, "proc")?.to_string();
            let body = str_field(req, "body")?.to_string();
            let outcome = engine.update(&proc, &body)?;
            Ok(outcome_payload(&outcome))
        }
        "load" => {
            let source = str_field(req, "source")?.to_string();
            let outcome = engine.load(&source)?;
            Ok(outcome_payload(&outcome))
        }
        "shutdown" => {
            *shutdown = true;
            let mut o = Object::new();
            o.set("status", Json::from("draining"));
            Ok(o)
        }
        other => Err(ServeError::BadRequest(format!("unknown op `{other}`"))),
    }
}

/// Client mode (`ipcc serve --connect <socket>`): forward stdin lines to
/// a running daemon, print every response line to stdout. Exits when
/// stdin closes and all responses have been received.
pub fn connect(socket: &str) -> Result<(), String> {
    let stream =
        UnixStream::connect(socket).map_err(|e| format!("error: connecting {socket}: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("error: cloning socket: {e}"))?;
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(read_half).lines() {
            let Ok(line) = line else { break };
            println!("{line}");
        }
    });
    let mut write_half = stream;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        writeln!(write_half, "{line}").map_err(|e| format!("error: writing request: {e}"))?;
    }
    write_half
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("error: closing socket: {e}"))?;
    let _ = reader.join();
    Ok(())
}
